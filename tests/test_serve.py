"""Resilience matrix for the ``repro serve`` front end.

The server's claims -- strict request validation, torn-tail-tolerant
journal recovery, crash retry with deterministic backoff, a graceful
SIGTERM drain that interrupts rather than loses in-flight work, and a
restart that resumes whatever the previous server never finished -- are
each exercised here.  Fast paths run in-process with a stubbed
``job_command``; the end-to-end paths drive a real ``repro serve``
subprocess over its Unix socket, including a SIGKILLed server whose
successor must complete the orphaned job from its journal.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.serve import (
    REQUEST_FIELDS,
    SERVE_SCHEMA,
    ReproServer,
    serve_request,
    validate_request,
)
from tests.test_fault_tolerance import SMALL_MATRIX

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------

class TestValidateRequest:
    def test_accepts_a_full_request(self):
        assert validate_request({
            "matrix": ["mesh:3x3, routing=xy"], "cross_check": True,
            "jobs": 2, "timeout": 5.0, "deadline": 30}) is None

    def test_accepts_a_minimal_request(self):
        assert validate_request({"matrix": ["ring:4"]}) is None

    @pytest.mark.parametrize("request_payload, fragment", [
        ("not an object", "must be an object"),
        ({}, "non-empty list"),
        ({"matrix": []}, "non-empty list"),
        ({"matrix": "ring:4"}, "non-empty list"),
        ({"matrix": ["ring:4", "  "]}, "non-empty list"),
        ({"matrix": ["ring:4"], "martix": ["x"]}, "martix"),
        ({"matrix": ["ring:4"], "jobs": "two"}, "jobs"),
        ({"matrix": ["ring:4"], "cross_check": 1}, "cross_check"),
        ({"matrix": ["ring:4"], "deadline": "soon"}, "deadline"),
    ])
    def test_rejects_with_a_reason(self, request_payload, fragment):
        reason = validate_request(request_payload)
        assert reason is not None and fragment in reason

    def test_field_vocabulary_is_pinned(self):
        assert REQUEST_FIELDS == {"matrix", "cross_check", "jobs",
                                  "timeout", "deadline"}


# ---------------------------------------------------------------------------
# Journal recovery (in-process)
# ---------------------------------------------------------------------------

def make_server(tmp_path, **kwargs):
    return ReproServer(store_dir=str(tmp_path / "store"),
                       socket_path=str(tmp_path / "serve.sock"),
                       work_dir=str(tmp_path / "work"), **kwargs)


class TestJournalRecovery:
    def test_restart_requeues_only_unfinished_jobs(self, tmp_path):
        first = make_server(tmp_path)
        done_job = first.submit({"matrix": ["ring:4"]})
        pending = first.submit({"matrix": ["mesh:3x3, routing=xy"]})
        done_job.attempts = 1
        first._finish(done_job, "done")

        second = make_server(tmp_path)
        requeued = second.recover()
        assert requeued == [pending.id]
        assert second.jobs[done_job.id].status == "done"
        assert second.jobs[done_job.id].attempts == 1
        assert second.jobs[pending.id].status == "queued"
        # Ids continue after the recovered ones -- never reused.
        assert second.submit({"matrix": ["ring:4"]}).id == "job-000003"

    def test_recovery_tolerates_a_torn_journal_tail(self, tmp_path):
        server = make_server(tmp_path)
        job = server.submit({"matrix": ["ring:4"]})
        with open(server.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "job": "job-0000')  # crash cut
        second = make_server(tmp_path)
        assert second.recover() == [job.id]

    def test_journal_records_carry_the_schema(self, tmp_path):
        server = make_server(tmp_path)
        server.submit({"matrix": ["ring:4"]})
        with open(server.journal_path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert records and all(r["schema"] == SERVE_SCHEMA for r in records)


# ---------------------------------------------------------------------------
# Crash retry and drain (in-process, stubbed child command)
# ---------------------------------------------------------------------------

class StubServer(ReproServer):
    """A server whose child crashes ``crashes`` times, then reports."""

    def __init__(self, *args, crashes=0, child_sleep=0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.crashes = crashes
        self.child_sleep = child_sleep

    def job_command(self, job):
        marker = os.path.join(job.dir, "crashes-left")
        script = (
            "import json, os, sys, time\n"
            "marker, report = sys.argv[1], sys.argv[2]\n"
            f"time.sleep({self.child_sleep!r})\n"
            "left = int(open(marker).read()) if os.path.exists(marker) "
            f"else {self.crashes}\n"
            "if left > 0:\n"
            "    open(marker, 'w').write(str(left - 1))\n"
            "    sys.exit(70)\n"
            "json.dump({'schema': 4, 'stub': True}, open(report, 'w'))\n"
        )
        return [sys.executable, "-c", script, marker, job.report_path]


def run_in_thread(server):
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert wait_until(lambda: os.path.exists(server.socket_path), 10.0)
    return thread


class TestCrashRetry:
    def test_crashed_child_is_retried_until_it_reports(self, tmp_path):
        server = StubServer(str(tmp_path / "store"),
                            str(tmp_path / "serve.sock"),
                            str(tmp_path / "work"),
                            crashes=2, max_retries=2, retry_backoff=0.01,
                            poll_interval=0.01)
        thread = run_in_thread(server)
        job = server.submit({"matrix": ["ring:4"]})
        assert server.wait_for(job.id, timeout=30.0) == "done"
        assert job.attempts == 3
        assert server.result(job.id) == {"schema": 4, "stub": True}
        server.request_stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_retries_are_bounded_and_the_failure_is_structured(
            self, tmp_path):
        server = StubServer(str(tmp_path / "store"),
                            str(tmp_path / "serve.sock"),
                            str(tmp_path / "work"),
                            crashes=99, max_retries=1, retry_backoff=0.01,
                            poll_interval=0.01)
        thread = run_in_thread(server)
        job = server.submit({"matrix": ["ring:4"]})
        assert server.wait_for(job.id, timeout=30.0) == "failed"
        assert job.attempts == 2  # first try + max_retries
        assert "no parseable report" in job.error
        with pytest.raises(RuntimeError):
            server.result(job.id)
        server.request_stop()
        thread.join(timeout=10.0)

    def test_drain_interrupts_a_long_job_and_keeps_its_state(self, tmp_path):
        server = StubServer(str(tmp_path / "store"),
                            str(tmp_path / "serve.sock"),
                            str(tmp_path / "work"),
                            child_sleep=60.0, drain_grace=0.2,
                            poll_interval=0.01)
        thread = run_in_thread(server)
        job = server.submit({"matrix": ["ring:4"]})
        assert wait_until(lambda: job.status == "running", 10.0)
        server.request_stop()
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert job.status == "interrupted"
        assert "checkpoint kept" in job.error
        with open(server.journal_path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle if line.strip()]
        assert events[-1]["event"] == "done"
        assert events[-1]["status"] == "interrupted"

    def test_draining_server_rejects_new_submissions(self, tmp_path):
        server = make_server(tmp_path)
        server.request_stop()
        with pytest.raises(RuntimeError):
            server.submit({"matrix": ["ring:4"]})


# ---------------------------------------------------------------------------
# Socket protocol (in-process server, stubbed child)
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_full_protocol_round_trip(self, tmp_path):
        server = StubServer(str(tmp_path / "store"),
                            str(tmp_path / "serve.sock"),
                            str(tmp_path / "work"),
                            retry_backoff=0.01, poll_interval=0.01)
        thread = run_in_thread(server)
        sock = server.socket_path
        try:
            assert serve_request(sock, {"op": "ping"}) \
                == {"ok": True, "pong": "repro-serve", "schema": SERVE_SCHEMA}

            bad = serve_request(sock, {"op": "submit",
                                       "request": {"matrix": []}})
            assert not bad["ok"] and "non-empty list" in bad["error"]

            reply = serve_request(sock, {"op": "submit",
                                         "request": {"matrix": ["ring:4"]}})
            assert reply["ok"]
            job_id = reply["job"]

            waited = serve_request(sock, {"op": "wait", "job": job_id,
                                          "timeout": 30.0})
            assert waited == {"ok": True, "status": "done"}

            result = serve_request(sock, {"op": "result", "job": job_id})
            assert result["ok"] and result["report"]["schema"] == 4

            status = serve_request(sock, {"op": "status"})
            assert status["ok"]
            assert status["jobs"][job_id]["status"] == "done"
            assert status["queue_depth"] == 0
            assert set(status["store"]) >= {"records", "quarantined",
                                            "damaged", "hits", "misses"}

            unknown = serve_request(sock, {"op": "frobnicate"})
            assert not unknown["ok"] and "unknown op" in unknown["error"]

            missing = serve_request(sock, {"op": "result", "job": "job-xxx"})
            assert not missing["ok"]

            down = serve_request(sock, {"op": "shutdown"})
            assert down == {"ok": True, "draining": True}
        finally:
            server.request_stop()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert not os.path.exists(sock)  # socket cleaned up on drain


# ---------------------------------------------------------------------------
# End-to-end subprocess: real jobs, real signals
# ---------------------------------------------------------------------------

def spawn_server(tmp_path, name="serve"):
    socket_path = str(tmp_path / f"{name}.sock")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--store", str(tmp_path / "store"),
         "--socket", socket_path,
         "--work-dir", str(tmp_path / "work"),
         "--drain-grace", "10"],
        cwd=REPO_ROOT, env=dict(os.environ, PYTHONPATH="src"),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

    def up():
        if not os.path.exists(socket_path):
            return False
        try:
            return serve_request(socket_path, {"op": "ping"})["ok"]
        except (OSError, ValueError):
            return False

    assert wait_until(up, 30.0), "server socket never came up"
    return process, socket_path


class TestServeEndToEnd:
    def test_sigterm_drains_gracefully_after_real_work(self, tmp_path):
        process, sock = spawn_server(tmp_path)
        try:
            reply = serve_request(sock, {
                "op": "submit",
                "request": {"matrix": [SMALL_MATRIX], "timeout": 60}})
            assert reply["ok"]
            waited = serve_request(sock, {"op": "wait", "job": reply["job"],
                                          "timeout": 120.0}, timeout=130.0)
            assert waited == {"ok": True, "status": "done"}
            result = serve_request(sock, {"op": "result",
                                          "job": reply["job"]})
            assert result["report"]["schema"] == 4
            assert result["report"]["summary"]["scenarios"] == 3
            assert result["report"]["store"]["mode"] == "rw"
            status = serve_request(sock, {"op": "status"})
            assert status["store"]["records"] == 2
        finally:
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        assert process.returncode == 0
        assert "drained, exiting" in output

    def test_sigkilled_server_resumes_the_orphan_from_its_journal(
            self, tmp_path):
        process, sock = spawn_server(tmp_path)
        reply = serve_request(sock, {
            "op": "submit",
            "request": {"matrix": [SMALL_MATRIX], "timeout": 60}})
        assert reply["ok"]
        job_id = reply["job"]
        # Kill the whole server process group mid-job: no drain, no
        # journal 'done' record -- the textbook crashed coordinator.
        process.kill()
        process.wait(timeout=30)

        successor, sock = spawn_server(tmp_path, name="serve2")
        try:
            waited = serve_request(sock, {"op": "wait", "job": job_id,
                                          "timeout": 120.0}, timeout=130.0)
            assert waited == {"ok": True, "status": "done"}
            result = serve_request(sock, {"op": "result", "job": job_id})
            assert result["report"]["summary"]["scenarios"] == 3
        finally:
            successor.send_signal(signal.SIGTERM)
            output, _ = successor.communicate(timeout=60)
        assert successor.returncode == 0
        assert "drained, exiting" in output
