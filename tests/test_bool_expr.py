"""Tests for the boolean expression AST."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checking.bool_expr import (
    And,
    Const,
    FALSE,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    all_assignments,
    conjoin,
    disjoin,
    is_satisfiable_brute_force,
    is_tautology_brute_force,
)


@st.composite
def expressions(draw, max_depth=4):
    variables = ["a", "b", "c", "d"]
    if max_depth == 0:
        return draw(st.sampled_from([Var(v) for v in variables]
                                    + [TRUE, FALSE]))
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return draw(st.sampled_from([Var(v) for v in variables]))
    if kind == 1:
        return Not(draw(expressions(max_depth=max_depth - 1)))
    if kind == 2:
        return And(draw(expressions(max_depth=max_depth - 1)),
                   draw(expressions(max_depth=max_depth - 1)))
    if kind == 3:
        return Or(draw(expressions(max_depth=max_depth - 1)),
                  draw(expressions(max_depth=max_depth - 1)))
    if kind == 4:
        return Implies(draw(expressions(max_depth=max_depth - 1)),
                       draw(expressions(max_depth=max_depth - 1)))
    if kind == 5:
        return Iff(draw(expressions(max_depth=max_depth - 1)),
                   draw(expressions(max_depth=max_depth - 1)))
    return draw(st.sampled_from([TRUE, FALSE]))


class TestEvaluation:
    def test_constants(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_variable_lookup(self):
        assert Var("x").evaluate({"x": True})
        assert not Var("x").evaluate({"x": False})

    def test_not(self):
        assert Not(Var("x")).evaluate({"x": False})

    def test_and_or(self):
        env = {"a": True, "b": False}
        assert not And(Var("a"), Var("b")).evaluate(env)
        assert Or(Var("a"), Var("b")).evaluate(env)

    def test_implies(self):
        assert Implies(Var("a"), Var("b")).evaluate({"a": False, "b": False})
        assert not Implies(Var("a"), Var("b")).evaluate({"a": True,
                                                         "b": False})

    def test_iff(self):
        assert Iff(Var("a"), Var("b")).evaluate({"a": True, "b": True})
        assert not Iff(Var("a"), Var("b")).evaluate({"a": True, "b": False})

    def test_operator_sugar(self):
        expr = (Var("a") & Var("b")) | ~Var("c")
        assert expr.evaluate({"a": True, "b": True, "c": True})
        assert expr.evaluate({"a": False, "b": False, "c": False})
        assert not expr.evaluate({"a": True, "b": False, "c": True})

    def test_nary_flattening(self):
        expr = And(Var("a"), And(Var("b"), Var("c")))
        assert len(expr.operands) == 3

    def test_empty_nary_rejected(self):
        with pytest.raises(ValueError):
            And()


class TestVariables:
    def test_variable_collection(self):
        expr = Implies(And(Var("a"), Var("b")), Or(Var("b"), Var("c")))
        assert expr.variables() == frozenset({"a", "b", "c"})

    def test_constants_have_no_variables(self):
        assert TRUE.variables() == frozenset()

    @given(expressions())
    @settings(max_examples=60, deadline=None)
    def test_evaluation_only_needs_reported_variables(self, expr):
        assignment = {name: True for name in expr.variables()}
        expr.evaluate(assignment)  # must not raise KeyError


class TestHelpers:
    def test_conjoin_disjoin_empty(self):
        assert conjoin([]) is TRUE
        assert disjoin([]) is FALSE

    def test_conjoin_single(self):
        v = Var("x")
        assert conjoin([v]) is v

    def test_conjoin_many(self):
        expr = conjoin([Var("a"), Var("b"), Var("c")])
        assert not expr.evaluate({"a": True, "b": False, "c": True})

    def test_all_assignments_count(self):
        assert len(list(all_assignments(["a", "b", "c"]))) == 8

    def test_tautology_check(self):
        assert is_tautology_brute_force(Or(Var("a"), Not(Var("a"))))
        assert not is_tautology_brute_force(Var("a"))

    def test_satisfiability_check(self):
        assert is_satisfiable_brute_force(And(Var("a"), Not(Var("b"))))
        assert not is_satisfiable_brute_force(And(Var("a"), Not(Var("a"))))

    @given(expressions())
    @settings(max_examples=40, deadline=None)
    def test_tautology_implies_satisfiable(self, expr):
        if is_tautology_brute_force(expr):
            assert is_satisfiable_brute_force(expr)

    def test_str_representations(self):
        assert "a" in str(Var("a"))
        assert "->" in str(Implies(Var("a"), Var("b")))
        assert "<->" in str(Iff(Var("a"), Var("b")))
        assert "true" in str(TRUE)
