"""Tests for the GeNoC interpreter and the termination measures."""

import pytest

from repro.core import (
    GeNoCEngine,
    GeNoCError,
    IdentityInjection,
    flit_hop_measure,
    pending_travel_measure,
    route_length_measure,
)
from repro.core.measure import is_non_increasing, is_strictly_decreasing
from repro.hermes import build_hermes_instance
from repro.routing.xy import XYRouting
from repro.switching.wormhole import WormholeSwitching


@pytest.fixture
def instance():
    return build_hermes_instance(3, 3, buffer_capacity=2)


class TestEngineRuns:
    def test_empty_workload_terminates_immediately(self, instance):
        result = instance.run([])
        assert result.evacuated
        assert result.steps == 0
        assert result.final.arrived == []

    def test_single_message(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        result = instance.run([travel])
        assert result.evacuated
        assert not result.deadlocked
        assert result.arrived_ids == [travel.travel_id]
        assert result.final.state.is_empty()

    def test_history_is_recorded(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        result = instance.run([travel])
        assert len(result.history) == result.steps
        assert result.history[-1].pending == 0
        assert result.history[-1].arrived == 1
        assert all(record.step == index + 1
                   for index, record in enumerate(result.history))

    def test_measures_are_recorded_per_step(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        result = instance.run([travel])
        assert len(result.measures) == result.steps + 1
        assert is_strictly_decreasing(result.measures)
        assert result.measures[-1] == 0

    def test_on_step_callback(self, instance):
        travel = instance.make_travel((0, 0), (1, 1), num_flits=2)
        seen = []
        config = instance.initial_configuration([travel])
        instance.engine().run(config, on_step=lambda s, c: seen.append(s))
        assert seen == list(range(1, len(seen) + 1))
        assert seen  # at least one step happened

    def test_check_invariants_mode(self, instance):
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=3),
                   instance.make_travel((2, 0), (0, 2), num_flits=3)]
        result = instance.run(travels, check_invariants=True)
        assert result.evacuated

    def test_max_steps_bound_raises(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        with pytest.raises(GeNoCError):
            instance.run([travel], max_steps=2)

    def test_run_to_completion_returns_final_configuration(self, instance):
        travel = instance.make_travel((0, 0), (1, 0), num_flits=1)
        config = instance.initial_configuration([travel])
        final = instance.engine().run_to_completion(config)
        assert final.is_finished()
        assert len(final.arrived) == 1

    def test_describe(self, instance):
        description = instance.engine().describe()
        assert description["injection"] == "Iid"
        assert description["routing"] == "Rxy"
        assert description["switching"] == "Swh"

    def test_elapsed_time_recorded(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        result = instance.run([travel])
        assert result.elapsed_seconds > 0

    def test_result_str(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        result = instance.run([travel])
        assert "evacuated" in str(result)


class TestEngineComposition:
    def test_engine_can_be_built_from_parts(self):
        from repro.network.mesh import Mesh2D

        mesh = Mesh2D(2, 2)
        engine = GeNoCEngine(injection=IdentityInjection(),
                             routing=XYRouting(mesh),
                             switching=WormholeSwitching())
        instance = build_hermes_instance(2, 2)
        travel = instance.make_travel((0, 0), (1, 1), num_flits=2)
        config = instance.initial_configuration([travel])
        result = engine.run(config)
        assert result.evacuated

    def test_custom_measure_is_used(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=2)
        config = instance.initial_configuration([travel])
        engine = GeNoCEngine(injection=instance.injection,
                             routing=instance.routing,
                             switching=instance.switching,
                             measure=route_length_measure)
        result = engine.run(config)
        assert result.evacuated
        assert is_non_increasing(result.measures)


class TestMeasures:
    def test_flit_hop_measure_of_unstarted_configuration(self, instance):
        travels = [instance.make_travel((0, 0), (1, 0), num_flits=2)]
        config = instance.routing.route_configuration(
            instance.initial_configuration(travels))
        # Route has 4 ports; each of the 2 flits needs 4 moves + 1 injection.
        assert flit_hop_measure(config) == 2 * 5

    def test_route_length_measure_matches_paper_definition(self, instance):
        travels = [instance.make_travel((0, 0), (1, 0), num_flits=2),
                   instance.make_travel((0, 0), (2, 2), num_flits=1)]
        config = instance.routing.route_configuration(
            instance.initial_configuration(travels))
        expected = sum(t.route_length for t in config.travels)
        assert route_length_measure(config) == expected

    def test_pending_travel_measure_is_not_a_valid_c5_measure(self, instance):
        # It stays constant while messages advance without arriving, which is
        # exactly why it fails obligation (C-5) (see test_obligations).
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=2)]
        config = instance.routing.route_configuration(
            instance.initial_configuration(travels))
        before = pending_travel_measure(config)
        after = pending_travel_measure(instance.switching.step(config))
        assert before == after == 1

    def test_monotonicity_helpers(self):
        assert is_strictly_decreasing([5, 4, 2, 0])
        assert not is_strictly_decreasing([5, 5, 4])
        assert is_non_increasing([5, 5, 4])
        assert not is_non_increasing([4, 5])
        assert is_strictly_decreasing([])
        assert is_strictly_decreasing([7])
