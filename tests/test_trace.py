"""The trace lab: recording, validation, determinism, analysis, CLI.

The contracts pinned here are the ones ISSUE 7 names: a ``None`` trace
changes nothing (verdicts byte-identical on the pinned acceptance matrix),
a real trace is deterministic modulo timing fields, the stream validates
against the schema, and ``repro trace summary`` reconciles the event-stream
deltas with the solver's own end-of-run aggregate counters.
"""

import io
import itertools
import json
import time

import pytest

from repro.checking.sat import IncrementalSatSolver
from repro.core.cache import reset_instance_cache
from repro.core.portfolio import run_portfolio, scenarios_from_specs
from repro.core.spec import expand_matrix
from repro.core.trace import (
    TRACE_SCHEMA,
    TraceWriter,
    load_trace,
    scrub_timing,
    validate_trace,
)
from repro.core import trace_analysis

#: The pinned 24-scenario acceptance matrix (same as the engine-acceptance
#: fixture in test_clause_management.py).
ACCEPTANCE_MATRIX = (
    "mesh:3x3, routing=[xy,yx,west-first,north-last,negative-first,"
    "adaptive,zigzag], switching=wormhole; "
    "mesh:3x3, routing=xy, switching=vct; "
    "mesh:4x4, routing=[xy,yx], switching=wormhole; "
    "ring:4, routing=chain; ring:4, routing=clockwise, buffers=1; "
    "vc-mesh:3x3, vcs=1..4; vc-torus:4x4, vcs=1..4; vc-ring:4, vcs=1..4"
)

#: A small conflict-heavy matrix for the determinism / reconciliation
#: tests (adaptive + zigzag are deadlock-prone -> real search work).
SMALL_MATRIX = ("mesh:3x3, routing=[xy,adaptive,zigzag]; "
                "ring:4, routing=clockwise, buffers=1")


def _counter_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


def _traced_portfolio(matrix, label="test", **kwargs):
    """Run ``matrix`` serially with an in-memory deterministic trace."""
    sink = io.StringIO()
    trace = TraceWriter(sink, clock=_counter_clock(), label=label)
    report = run_portfolio(scenarios_from_specs(expand_matrix(matrix)),
                           trace=trace, **kwargs)
    trace.close()
    return report, load_trace(sink.getvalue().splitlines())


# ---------------------------------------------------------------------------
# TraceWriter / validate_trace units
# ---------------------------------------------------------------------------

class TestTraceWriter:

    def test_header_and_monotonic_eids(self):
        sink = io.StringIO()
        with TraceWriter(sink, clock=_counter_clock(), label="unit") as tr:
            assert tr.last_eid == 0  # the trace_begin header
            assert tr.emit("restart", conflicts=1, interval=1, limit=32) == 1
            assert tr.emit("arena_gc", reclaimed=0, live=0) == 2
        events = load_trace(sink.getvalue().splitlines())
        assert [event["eid"] for event in events] == [0, 1, 2]
        assert events[0]["ev"] == "trace_begin"
        assert events[0]["schema"] == TRACE_SCHEMA
        assert events[0]["label"] == "unit"

    def test_path_sink_owned_and_closed(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path, clock=_counter_clock()) as tr:
            tr.emit("arena_gc", reclaimed=5, live=7)
        events = load_trace(path)
        assert len(events) == 2
        assert events[1]["reclaimed"] == 5

    def test_emit_after_close_raises(self):
        tr = TraceWriter(io.StringIO(), clock=_counter_clock())
        tr.close()
        with pytest.raises(ValueError):
            tr.emit("arena_gc", reclaimed=0, live=0)

    def test_buffering_flushes_on_limit(self):
        sink = io.StringIO()
        tr = TraceWriter(sink, clock=_counter_clock(), buffer_limit=4)
        assert sink.getvalue() == ""  # header still buffered
        for _ in range(4):
            tr.emit("arena_gc", reclaimed=0, live=0)
        assert len(sink.getvalue().splitlines()) >= 4
        tr.close()
        assert len(load_trace(sink.getvalue().splitlines())) == 5

    def test_timestamps_come_from_injected_clock(self):
        sink = io.StringIO()
        tr = TraceWriter(sink, clock=_counter_clock())
        tr.emit("arena_gc", reclaimed=0, live=0)
        tr.close()
        events = load_trace(sink.getvalue().splitlines())
        # epoch read at construction, header at 1.0, event at 2.0
        assert [event["t"] for event in events] == [1.0, 2.0]


class TestValidateTrace:

    def _valid(self):
        return [
            {"eid": 0, "ev": "trace_begin", "t": 0.0,
             "schema": TRACE_SCHEMA, "label": ""},
            {"eid": 1, "ev": "solve_begin", "t": 0.1, "solve": 1,
             "assumptions": 0, "prefix_reuse": 0},
            {"eid": 2, "ev": "solve_end", "t": 0.2, "sat": True,
             "delta": {}},
        ]

    def test_valid_stream(self):
        assert validate_trace(self._valid()) == []

    def test_eid_gap_detected(self):
        events = self._valid()
        events[2]["eid"] = 5
        assert any("expected eid 2" in error
                   for error in validate_trace(events))

    def test_unknown_event_type(self):
        events = self._valid() + [{"eid": 3, "ev": "mystery", "t": 0.3}]
        assert any("unknown event type" in error
                   for error in validate_trace(events))

    def test_missing_required_field(self):
        events = self._valid()
        del events[1]["prefix_reuse"]
        assert any("missing fields" in error
                   for error in validate_trace(events))

    def test_missing_header(self):
        assert any("trace_begin" in error
                   for error in validate_trace(self._valid()[1:]))

    def test_wrong_schema(self):
        events = self._valid()
        events[0]["schema"] = TRACE_SCHEMA + 1
        assert any("schema" in error for error in validate_trace(events))

    def test_unbalanced_solve_span(self):
        events = self._valid()[:2]
        assert any("unclosed solve" in error
                   for error in validate_trace(events))

    def test_scrub_timing_strips_nondeterministic_fields(self):
        event = {"eid": 1, "ev": "scenario_end", "t": 0.5,
                 "wall_time_s": 0.2, "cache": {"hits": 1}, "edges": 3}
        scrubbed = scrub_timing(event)
        assert scrubbed == {"eid": 1, "ev": "scenario_end", "edges": 3}


# ---------------------------------------------------------------------------
# Solver-level stream
# ---------------------------------------------------------------------------

class TestSolverTrace:

    def test_trivially_unsat_stats_keys_match_main_path(self):
        # The satellite fix: the early-return path must report the exact
        # key set of the main search path (incl. zero-filled lbd buckets).
        normal = IncrementalSatSolver()
        normal.add_clauses([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        normal_result = normal.solve()
        trivial = IncrementalSatSolver()
        trivial.add_clauses([[1], [-1]])
        trivial_result = trivial.solve()
        assert not trivial_result.satisfiable
        assert set(trivial_result.stats) == set(normal_result.stats)
        assert trivial_result.stats["lbd_1"] == 0

    def test_solve_spans_and_deltas(self):
        sink = io.StringIO()
        trace = TraceWriter(sink, clock=_counter_clock())
        solver = IncrementalSatSolver(trace=trace)
        solver.add_clauses([[1, 2], [-1, 2]])
        assert solver.solve([-2]).satisfiable is False
        assert solver.solve([2]).satisfiable is True
        trace.close()
        events = load_trace(sink.getvalue().splitlines())
        assert validate_trace(events) == []
        begins = [event for event in events if event["ev"] == "solve_begin"]
        ends = [event for event in events if event["ev"] == "solve_end"]
        assert len(begins) == 2 and len(ends) == 2
        assert [end["sat"] for end in ends] == [False, True]
        # Every solve_end delta accounts for exactly one solve.
        assert all(end["delta"]["solves"] == 1 for end in ends)

    def test_trivially_unsat_emits_balanced_span(self):
        sink = io.StringIO()
        trace = TraceWriter(sink, clock=_counter_clock())
        solver = IncrementalSatSolver(trace=trace)
        solver.add_clauses([[1], [-1]])
        result = solver.solve()
        trace.close()
        assert not result.satisfiable
        events = load_trace(sink.getvalue().splitlines())
        assert validate_trace(events) == []
        ends = [event for event in events if event["ev"] == "solve_end"]
        assert len(ends) == 1 and ends[0]["sat"] is False

    def test_untraced_solver_holds_no_trace_state(self):
        solver = IncrementalSatSolver()
        assert solver.trace is None


# ---------------------------------------------------------------------------
# Determinism and byte-identity (the tentpole contracts)
# ---------------------------------------------------------------------------

class TestTraceDeterminism:

    def test_identical_streams_modulo_timing(self):
        _, first = _traced_portfolio(SMALL_MATRIX, label="det")
        _, second = _traced_portfolio(SMALL_MATRIX, label="det")
        assert ([scrub_timing(event) for event in first]
                == [scrub_timing(event) for event in second])

    def test_cache_counters_agree_on_cold_cache(self):
        # On a cold construction cache even the cache counters (the
        # ENVIRONMENT_FIELDS scrub_timing strips) agree -- only the
        # wall-clock TIMING_FIELDS remain legitimately different.
        def strip_wall(event):
            return {key: value for key, value in event.items()
                    if key not in ("t", "wall_time_s")}

        reset_instance_cache()
        _, first = _traced_portfolio(SMALL_MATRIX, label="det")
        reset_instance_cache()
        _, second = _traced_portfolio(SMALL_MATRIX, label="det")
        assert ([strip_wall(event) for event in first]
                == [strip_wall(event) for event in second])

    def test_stream_validates(self):
        _, events = _traced_portfolio(SMALL_MATRIX)
        assert validate_trace(events) == []

    def test_traced_vs_untraced_verdicts_byte_identical(self):
        # The acceptance-criterion pin, on the pinned 24-scenario matrix.
        scenarios = scenarios_from_specs(expand_matrix(ACCEPTANCE_MATRIX))
        untraced = run_portfolio(scenarios)
        traced, events = _traced_portfolio(ACCEPTANCE_MATRIX)
        assert len(traced.verdicts) == 24
        assert (json.dumps(traced.comparable_dict(), sort_keys=True)
                == json.dumps(untraced.comparable_dict(), sort_keys=True))
        assert validate_trace(events) == []

    def test_trace_with_parallel_jobs_rejected(self):
        scenarios = scenarios_from_specs(expand_matrix(SMALL_MATRIX))
        with pytest.raises(ValueError, match="serial"):
            run_portfolio(scenarios, jobs=4,
                          trace=TraceWriter(io.StringIO(),
                                            clock=_counter_clock()))

    def test_no_trace_overhead_bound(self):
        # The None path must not pay for tracing: an untraced run of a
        # solver-heavy workload may not be slower than the traced run of
        # the same workload (which does strictly more work) beyond noise.
        def run_once(trace):
            reset_instance_cache()
            scenarios = scenarios_from_specs(expand_matrix(SMALL_MATRIX))
            started = time.perf_counter()
            run_portfolio(scenarios, trace=trace)
            return time.perf_counter() - started

        untraced = min(run_once(None) for _ in range(3))
        traced = min(
            run_once(TraceWriter(io.StringIO(), clock=_counter_clock()))
            for _ in range(3))
        assert untraced <= traced * 2.0, (
            f"untraced run ({untraced:.3f}s) should not cost more than "
            f"2x the traced run ({traced:.3f}s)")


# ---------------------------------------------------------------------------
# Solver-technique events (ISSUE 9: ema restarts, vivify, inprocess)
# ---------------------------------------------------------------------------

class TestSolverTechniqueEvents:
    """The PR-9 technique events must validate against the schema,
    reconcile with the solver's aggregate counters, and surface through
    the restart analysis -- with all knobs forced on so every event
    family actually fires."""

    ALL_KNOBS = "restart_policy=ema,chrono=2,vivify=1,inprocess=1"

    @pytest.fixture(scope="class")
    def knobs_on(self):
        import os

        saved = os.environ.get("REPRO_SOLVER_OPTS")
        os.environ["REPRO_SOLVER_OPTS"] = self.ALL_KNOBS
        try:
            yield _traced_portfolio(SMALL_MATRIX, label="knobs-on")
        finally:
            if saved is None:
                os.environ.pop("REPRO_SOLVER_OPTS", None)
            else:
                os.environ["REPRO_SOLVER_OPTS"] = saved

    def test_technique_events_validate_and_reconcile(self, knobs_on):
        # The portfolio workload triggers inprocessing (bulk clause
        # arrival between solves); vivification needs a reduce-db, which
        # these sessions never reach -- the direct-solver test below
        # covers the vivify stream.
        report, events = knobs_on
        kinds = {event["ev"] for event in events}
        assert "inprocess" in kinds
        assert validate_trace(events) == []
        summary = trace_analysis.analyze_summary(events)
        assert summary["reconciled"] is True

    def test_ema_restart_events_carry_policy_fields(self, knobs_on):
        _, events = knobs_on
        restarts = [event for event in events if event["ev"] == "restart"]
        assert restarts, "knobs-on workload must restart at least once"
        for event in restarts:
            assert event["policy"] == "ema"
            assert isinstance(event["fast"], float)
            assert isinstance(event["slow"], float)
            assert event["interval"] >= event["limit"]

    def test_restart_analysis_surfaces_policy(self, knobs_on):
        _, events = knobs_on
        restarts = trace_analysis.analyze_restarts(events)
        assert restarts["policies"] == ["ema"]
        for row in restarts["rows"]:
            assert row["policy"] == "ema"
            assert row["fast"] is not None and row["slow"] is not None
        table = trace_analysis.format_restarts(restarts)
        assert "policy" in table and "fast" in table and "slow" in table

    def test_legacy_restart_events_default_to_luby(self):
        # Pre-PR-9 traces carry no policy field; the analysis must not
        # crash and must attribute them to the luby default.
        events = [
            {"eid": 0, "ev": "trace_begin", "t": 0.0, "schema": TRACE_SCHEMA},
            {"eid": 1, "ev": "restart", "t": 1.0,
             "conflicts": 40, "interval": 40, "limit": 32},
        ]
        restarts = trace_analysis.analyze_restarts(events)
        assert restarts["policies"] == ["luby"]
        row = restarts["rows"][0]
        assert row["policy"] == "luby"
        assert row["fast"] is None and row["slow"] is None
        table = trace_analysis.format_restarts(restarts)
        assert "policy" in table

    def test_direct_solver_event_stream_matches_stats(self):
        # A deterministic all-knobs-on incremental workload (seed pinned
        # to exercise every technique): the per-event counts must sum to
        # the solver's own aggregate counters.
        import random

        rng = random.Random(2)
        sink = io.StringIO()
        trace = TraceWriter(sink, clock=_counter_clock(), label="direct")
        solver = IncrementalSatSolver(trace=trace, restart_policy="ema",
                                      chrono=2, vivify=True, inprocess=True)
        num_vars = 60
        for _ in range(num_vars):
            solver.new_var()

        def add_random_batch(count):
            for _ in range(count):
                chosen = rng.sample(range(1, num_vars + 1), 3)
                solver.add_clause([var if rng.random() < 0.5 else -var
                                   for var in chosen])

        add_random_batch(int(num_vars * 4.26))  # phase-transition density
        solver.solve()
        add_random_batch(80)  # second batch arms the inprocess trigger
        solver.solve()
        trace.close()
        events = load_trace(sink.getvalue().splitlines())
        assert validate_trace(events) == []

        vivify = [event for event in events if event["ev"] == "vivify"]
        inprocess = [event for event in events if event["ev"] == "inprocess"]
        ema = [event for event in events if event["ev"] == "restart"]
        assert vivify and inprocess and ema
        assert all(event["policy"] == "ema" for event in ema)
        stats = solver.stats
        assert stats["vivified_clauses"] \
            == sum(event["shortened"] for event in vivify)
        assert stats["vivified_literals"] \
            == sum(event["removed"] for event in vivify)
        assert stats["inprocessings"] == len(inprocess)
        assert stats["subsumed"] \
            == sum(event["subsumed"] for event in inprocess)
        assert stats["strengthened"] \
            == sum(event["strengthened"] for event in inprocess)
        assert stats["eliminated_vars"] \
            == sum(event["eliminated"] for event in inprocess)
        assert stats["chrono_backtracks"] > 0


# ---------------------------------------------------------------------------
# Offline analysis
# ---------------------------------------------------------------------------

class TestTraceAnalysis:

    @pytest.fixture(scope="class")
    def run(self):
        return _traced_portfolio(SMALL_MATRIX, label="analysis")

    def test_summary_reconciles_with_solver_stats(self, run):
        report, events = run
        summary = trace_analysis.analyze_summary(events)
        assert summary["reconciled"] is True
        assert all(group["reconciled"] for group in summary["groups"])
        # Event-stream deltas sum to the report's own aggregate counters.
        for group in summary["groups"]:
            assert group["stats"] == report.session_stats[group["group"]]
            assert group["scenario_delta_sum"] == group["stats"]
        totals = summary["totals"]
        for key in ("solves", "conflicts", "propagations", "decisions"):
            assert totals[key] == sum(
                stats[key] for stats in report.session_stats.values())

    def test_summary_detects_mismatch(self, run):
        _, events = run
        tampered = [dict(event) for event in events]
        for event in tampered:
            if event["ev"] == "session_summary":
                event["stats"] = dict(event["stats"])
                event["stats"]["conflicts"] += 1
                break
        summary = trace_analysis.analyze_summary(tampered)
        assert summary["reconciled"] is False
        assert any("conflicts" in group["mismatched_keys"]
                   for group in summary["groups"])

    def test_summary_scenario_shares_sum_to_one(self, run):
        _, events = run
        summary = trace_analysis.analyze_summary(events)
        shares = [scenario["share"] for scenario in summary["scenarios"]]
        assert shares == sorted(shares, reverse=True)
        assert abs(sum(shares) - 1.0) < 1e-9

    def test_restarts_cadence(self, run):
        _, events = run
        restarts = trace_analysis.analyze_restarts(events)
        expected = sum(1 for event in events if event["ev"] == "restart")
        assert restarts["restarts"] == expected
        for row in restarts["rows"]:
            assert row["interval"] >= row["limit"]

    def test_hot_ranks_by_work(self, run):
        _, events = run
        hot = trace_analysis.analyze_hot(events, top=2)
        assert len(hot["rows"]) == 2
        assert hot["total_scenarios"] == 4
        works = [row["work"] for row in hot["rows"]]
        assert works == sorted(works, reverse=True)

    def test_lbd_windows_sum_to_histogram(self, run):
        _, events = run
        lbd = trace_analysis.analyze_lbd(events, buckets=4)
        samples = [event for event in events
                   if event["ev"] == "solver_phase"]
        assert lbd["samples"] == len(samples)
        for row in lbd["rows"]:
            assert row["learned"] == sum(row["buckets"].values())

    def test_formatters_render(self, run):
        _, events = run
        assert "reconciliation: OK" in trace_analysis.format_summary(
            trace_analysis.analyze_summary(events))
        trace_analysis.format_lbd(trace_analysis.analyze_lbd(events))
        trace_analysis.format_restarts(
            trace_analysis.analyze_restarts(events))
        assert "scenarios by solver work" in trace_analysis.format_hot(
            trace_analysis.analyze_hot(events))

    def test_analyses_are_json_serialisable(self, run):
        _, events = run
        for analysis in (trace_analysis.analyze_summary(events),
                         trace_analysis.analyze_lbd(events),
                         trace_analysis.analyze_restarts(events),
                         trace_analysis.analyze_hot(events)):
            json.loads(json.dumps(analysis))


# ---------------------------------------------------------------------------
# CLI round-trips
# ---------------------------------------------------------------------------

class TestTraceCli:

    def test_batch_trace_then_summary_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "run.jsonl")
        assert main(["batch", "--matrix", SMALL_MATRIX,
                     "--trace", path]) == 0
        events = load_trace(path)
        assert validate_trace(events) == []
        capsys.readouterr()
        assert main(["trace", "summary", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reconciled"] is True
        assert payload["events"] == len(events)

    def test_batch_trace_requires_serial(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="jobs 1"):
            main(["batch", "--matrix", SMALL_MATRIX, "--jobs", "2",
                  "--trace", str(tmp_path / "x.jsonl")])

    def test_trace_rejects_invalid_file(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"eid": 0, "ev": "mystery", "t": 0.0}\n')
        with pytest.raises(SystemExit, match="schema"):
            main(["trace", "summary", str(bad)])

    def test_trace_subcommands_render_tables(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "run.jsonl")
        main(["batch", "--matrix", SMALL_MATRIX, "--trace", path])
        capsys.readouterr()
        for args in (["trace", "lbd", path, "--buckets", "4"],
                     ["trace", "restarts", path],
                     ["trace", "hot", path, "--top", "3"]):
            assert main(args) == 0
        assert capsys.readouterr().out
