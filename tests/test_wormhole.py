"""Tests for the wormhole switching policy (the paper's ``Swh``)."""

import pytest

from repro.core.configuration import NOT_INJECTED
from repro.core.deadlock import is_deadlock
from repro.core.measure import flit_hop_measure, route_length_measure
from repro.hermes import build_hermes_instance
from repro.network.port import Direction, Port, PortName
from repro.switching.wormhole import WormholeSwitching


@pytest.fixture
def instance():
    return build_hermes_instance(3, 3, buffer_capacity=2)


def routed_config(instance, travels, capacity=None):
    config = instance.initial_configuration(travels, capacity=capacity)
    return instance.routing.route_configuration(config)


class TestSingleMessage:
    def test_header_is_injected_on_first_step(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        config = routed_config(instance, [travel], capacity=1)
        switching = WormholeSwitching()
        after = switching.step(config)
        record = after.progress[travel.travel_id]
        assert record.positions[0] == 0
        # With 1-flit buffers the second flit cannot enter yet.
        assert record.positions[1] == NOT_INJECTED

    def test_two_flits_enter_together_with_deeper_buffers(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        config = routed_config(instance, [travel], capacity=2)
        switching = WormholeSwitching()
        after = switching.step(config)
        record = after.progress[travel.travel_id]
        # The injection port has two buffers, so header and first body flit
        # both enter on the first step; the third flit has to wait.
        assert record.positions[0] == 0
        assert record.positions[1] == 0
        assert record.positions[2] == NOT_INJECTED

    def test_worm_advances_pipelined(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        config = routed_config(instance, [travel], capacity=1)
        switching = WormholeSwitching()
        for _ in range(4):
            config = switching.step(config)
        record = config.progress[travel.travel_id]
        # After 4 steps the header is at route index 3 and the followers
        # trail right behind it, one port apart (1-flit buffers).
        assert record.positions[0] == 3
        assert record.positions[1] == 2
        assert record.positions[2] == 1

    def test_message_arrives_and_moves_to_A(self, instance):
        travel = instance.make_travel((0, 0), (1, 0), num_flits=2)
        config = routed_config(instance, [travel])
        switching = WormholeSwitching()
        steps = 0
        while config.travels and steps < 50:
            config = switching.step(config)
            steps += 1
        assert [t.travel_id for t in config.arrived] == [travel.travel_id]
        assert config.state.is_empty()

    def test_single_flit_message_to_same_node(self, instance):
        travel = instance.make_travel((1, 1), (1, 1), num_flits=1)
        config = routed_config(instance, [travel])
        switching = WormholeSwitching()
        steps = 0
        while config.travels and steps < 10:
            config = switching.step(config)
            steps += 1
        assert len(config.arrived) == 1

    def test_measure_decreases_every_step(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=4)
        config = routed_config(instance, [travel])
        switching = WormholeSwitching()
        previous = flit_hop_measure(config)
        while config.travels:
            config = switching.step(config)
            current = flit_hop_measure(config)
            assert current < previous
            previous = current

    def test_paper_measure_never_increases(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=4)
        config = routed_config(instance, [travel])
        switching = WormholeSwitching()
        previous = route_length_measure(config)
        while config.travels:
            config = switching.step(config)
            current = route_length_measure(config)
            assert current <= previous
            previous = current


class TestOwnershipAndBlocking:
    def test_port_owned_by_one_packet_only(self, instance):
        # Two messages that share the column 1 southbound path.
        t1 = instance.make_travel((0, 0), (1, 2), num_flits=4)
        t2 = instance.make_travel((1, 0), (1, 2), num_flits=4)
        config = routed_config(instance, [t1, t2], capacity=1)
        switching = WormholeSwitching()
        for _ in range(20):
            if not config.travels:
                break
            config = switching.step(config)
            for port, state in config.state.items():
                owners = {flit.travel_id for flit in state.buffer}
                assert len(owners) <= 1

    def test_blocked_message_waits(self, instance):
        # A long message occupies the path; the second cannot enter the
        # shared port until the first drains.
        t1 = instance.make_travel((0, 0), (2, 0), num_flits=6)
        t2 = instance.make_travel((0, 1), (2, 0), num_flits=2)
        config = routed_config(instance, [t1, t2], capacity=1)
        switching = WormholeSwitching()
        steps = 0
        while config.travels and steps < 100:
            config = switching.step(config)
            config.check_consistency()
            steps += 1
        assert not config.travels
        assert len(config.arrived) == 2

    def test_no_deadlock_with_xy_routing(self, instance):
        travels = [instance.make_travel((x, y),
                                        (2 - x, 2 - y), num_flits=3)
                   for x in range(3) for y in range(3) if (x, y) != (1, 1)]
        config = routed_config(instance, travels, capacity=1)
        switching = WormholeSwitching()
        steps = 0
        while config.travels and steps < 500:
            assert not is_deadlock(config, switching)
            config = switching.step(config)
            steps += 1
        assert not config.travels

    def test_can_progress_false_only_when_stuck(self, instance):
        travel = instance.make_travel((0, 0), (2, 2), num_flits=2)
        config = routed_config(instance, [travel])
        switching = WormholeSwitching()
        while config.travels:
            assert switching.can_progress(config)
            config = switching.step(config)
        assert not switching.can_progress(config)


class TestSingleTravelStepper:
    def test_advance_travel_moves_only_that_travel(self, instance):
        t1 = instance.make_travel((0, 0), (2, 0), num_flits=2)
        t2 = instance.make_travel((0, 2), (2, 2), num_flits=2)
        config = routed_config(instance, [t1, t2])
        switching = WormholeSwitching()
        after = switching.advance_travel(config, t1.travel_id)
        assert after is not None
        assert after.progress[t1.travel_id].positions[0] == 0
        assert after.progress[t2.travel_id].positions[0] == NOT_INJECTED
        # The original configuration is untouched.
        assert config.progress[t1.travel_id].positions[0] == NOT_INJECTED

    def test_advance_travel_returns_none_when_blocked(self, instance):
        t1 = instance.make_travel((0, 0), (2, 0), num_flits=2)
        config = routed_config(instance, [t1], capacity=1)
        switching = WormholeSwitching()
        # Fill the first route port with a foreign flit so injection blocks.
        from repro.network.flit import Flit, FlitKind

        first_port = config.progress[t1.travel_id].route[0]
        config.state.accept_flit(first_port, Flit(999, 0, FlitKind.HEADER))
        assert switching.advance_travel(config, t1.travel_id) is None

    def test_movable_travels(self, instance):
        t1 = instance.make_travel((0, 0), (2, 0), num_flits=2)
        t2 = instance.make_travel((2, 2), (0, 2), num_flits=2)
        config = routed_config(instance, [t1, t2])
        switching = WormholeSwitching()
        assert set(switching.movable_travels(config)) == {t1.travel_id,
                                                          t2.travel_id}

    def test_advance_unknown_travel_returns_none(self, instance):
        t1 = instance.make_travel((0, 0), (2, 0), num_flits=2)
        config = routed_config(instance, [t1])
        switching = WormholeSwitching()
        assert switching.advance_travel(config, 424242) is None
