"""Tests for the command-line interface and the DOT export."""

import pytest

from repro.checking.graphs import find_cycle_dfs
from repro.cli import build_parser, main
from repro.core.dependency import routing_dependency_graph
from repro.hermes import build_exy_graph
from repro.network.mesh import Mesh2D
from repro.reporting.dot import dependency_graph_to_dot, write_dot
from repro.routing.ring import ClockwiseRingRouting
from repro.network.ring import Ring


class TestDotExport:
    def test_dot_contains_all_ports_and_edges(self):
        graph = build_exy_graph(Mesh2D(2, 2))
        dot = dependency_graph_to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == graph.edge_count
        # One cluster per node.
        assert dot.count("subgraph cluster_") == 4

    def test_dot_highlights_cycle_edges(self):
        routing = ClockwiseRingRouting(Ring(4))
        graph = routing_dependency_graph(routing)
        cycle = find_cycle_dfs(graph).cycle
        dot = dependency_graph_to_dot(graph, highlight_cycle=cycle)
        assert dot.count("color=red") == len(cycle)

    def test_dot_without_flow_colours(self):
        graph = build_exy_graph(Mesh2D(2, 2))
        dot = dependency_graph_to_dot(graph, colour_by_flow=False)
        assert "fillcolor=white" in dot

    def test_write_dot(self, tmp_path):
        graph = build_exy_graph(Mesh2D(2, 2))
        path = tmp_path / "fig3.dot"
        write_dot(graph, str(path), title="fig3")
        text = path.read_text()
        assert 'digraph "fig3"' in text


class TestCLI:
    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_command(self, capsys):
        code = main(["verify", "--width", "2", "--height", "2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "VERDICT: verified" in output

    def test_simulate_command(self, capsys):
        code = main(["simulate", "--width", "3", "--height", "3",
                     "--messages", "6", "--flits", "2", "--seed", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "evacuated" in output
        assert "CorrThm: holds" in output

    def test_table1_command(self, capsys):
        code = main(["table1", "--width", "2", "--height", "2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Verification effort" in output
        assert "Overall" in output

    def test_depgraph_command_with_dot_export(self, capsys, tmp_path):
        dot_path = tmp_path / "graph.dot"
        code = main(["depgraph", "--width", "2", "--height", "2",
                     "--dot", str(dot_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "acyclic: True" in output
        assert dot_path.exists()

    def test_deadlock_command_on_ring(self, capsys):
        code = main(["deadlock", "--design", "clockwise-ring", "--size", "4"])
        output = capsys.readouterr().out
        assert code == 0
        assert "VIOLATED" in output
        assert "deadlock" in output

    def test_deadlock_command_on_zigzag(self, capsys):
        code = main(["deadlock", "--design", "zigzag-mesh", "--size", "3"])
        output = capsys.readouterr().out
        assert code == 0
        assert "constructed configuration is a deadlock: True" in output
