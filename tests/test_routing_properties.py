"""Property-based tests of the routing functions (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.routing.base import occurring_pairs
from repro.routing.turn_model import (
    NegativeFirstRouting,
    NorthLastRouting,
    WestFirstRouting,
)
from repro.routing.xy import XYRouting
from repro.routing.yx import YXRouting

mesh_sizes = st.tuples(st.integers(1, 4), st.integers(1, 4))
coords = st.tuples(st.integers(0, 3), st.integers(0, 3))


def clamp(coord, mesh):
    return (min(coord[0], mesh.width - 1), min(coord[1], mesh.height - 1))


@st.composite
def mesh_and_pair(draw):
    width, height = draw(mesh_sizes)
    mesh = Mesh2D(width, height)
    source = clamp(draw(coords), mesh)
    target = clamp(draw(coords), mesh)
    return mesh, source, target


class TestDimensionOrderProperties:
    @given(mesh_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_xy_routes_terminate_at_destination(self, data):
        mesh, source, target = data
        routing = XYRouting(mesh)
        route = routing.compute_route(mesh.node_at(*source).local_in,
                                      mesh.node_at(*target).local_out)
        assert route[-1] == mesh.node_at(*target).local_out
        assert route[0] == mesh.node_at(*source).local_in

    @given(mesh_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_xy_routes_are_minimal(self, data):
        mesh, source, target = data
        routing = XYRouting(mesh)
        route = routing.compute_route(mesh.node_at(*source).local_in,
                                      mesh.node_at(*target).local_out)
        node_hops = sum(1 for a, b in zip(route, route[1:])
                        if a.node != b.node)
        assert node_hops == mesh.manhattan_distance(source, target)

    @given(mesh_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_xy_and_yx_routes_have_equal_length(self, data):
        mesh, source, target = data
        xy_route = XYRouting(mesh).compute_route(
            mesh.node_at(*source).local_in, mesh.node_at(*target).local_out)
        yx_route = YXRouting(mesh).compute_route(
            mesh.node_at(*source).local_in, mesh.node_at(*target).local_out)
        assert len(xy_route) == len(yx_route)

    @given(mesh_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_routes_never_repeat_a_port(self, data):
        mesh, source, target = data
        routing = XYRouting(mesh)
        route = routing.compute_route(mesh.node_at(*source).local_in,
                                      mesh.node_at(*target).local_out)
        assert len(route) == len(set(route))

    @given(mesh_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_every_route_hop_is_allowed_by_next_hops(self, data):
        mesh, source, target = data
        routing = XYRouting(mesh)
        destination = mesh.node_at(*target).local_out
        route = routing.compute_route(mesh.node_at(*source).local_in,
                                      destination)
        for current, following in zip(route, route[1:]):
            assert following in routing.next_hops(current, destination)

    @given(st.integers(2, 4), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_closed_form_reachability_equals_occurring_pairs_xy(self, w, h):
        mesh = Mesh2D(w, h)
        routing = XYRouting(mesh)
        pairs = occurring_pairs(routing)
        for port in mesh.ports:
            for destination in routing.destinations():
                occurs = (port, destination) in pairs
                closed_form = routing.reachable(port, destination)
                assert occurs == closed_form, (str(port), str(destination))

    @given(st.integers(2, 3), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_closed_form_reachability_equals_occurring_pairs_yx(self, w, h):
        mesh = Mesh2D(w, h)
        routing = YXRouting(mesh)
        pairs = occurring_pairs(routing)
        for port in mesh.ports:
            for destination in routing.destinations():
                assert ((port, destination) in pairs) == \
                    routing.reachable(port, destination)


class TestTurnModelProperties:
    @given(mesh_and_pair(),
           st.sampled_from([WestFirstRouting, NorthLastRouting,
                            NegativeFirstRouting]))
    @settings(max_examples=60, deadline=None)
    def test_turn_model_routes_terminate(self, data, routing_cls):
        mesh, source, target = data
        routing = routing_cls(mesh)
        route = routing.compute_route(mesh.node_at(*source).local_in,
                                      mesh.node_at(*target).local_out)
        assert route[-1] == mesh.node_at(*target).local_out

    @given(mesh_and_pair(),
           st.sampled_from([WestFirstRouting, NorthLastRouting,
                            NegativeFirstRouting]))
    @settings(max_examples=40, deadline=None)
    def test_turn_model_every_adaptive_branch_stays_minimal(self, data,
                                                            routing_cls):
        mesh, source, target = data
        routing = routing_cls(mesh)
        destination = mesh.node_at(*target).local_out
        # Breadth-first over every adaptive branch: each next hop must not
        # increase the manhattan distance of the node to the destination.
        frontier = [mesh.node_at(*source).local_in]
        seen = set()
        while frontier:
            port = frontier.pop()
            if port in seen or port == destination:
                continue
            seen.add(port)
            for successor in routing.next_hops(port, destination):
                before = mesh.manhattan_distance(port.node, destination.node)
                after = mesh.manhattan_distance(successor.node,
                                                destination.node)
                assert after <= before
                frontier.append(successor)
