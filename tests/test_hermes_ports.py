"""Tests for the HERMES port algebra: next_outs, find_dest, Exy_dep."""

import pytest

from repro.hermes.dependency import ExyDependencySpec, build_exy_graph
from repro.hermes.ports import find_dest, next_outs, witness_destination
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName


def port(x, y, name, direction=Direction.IN):
    return Port(x, y, name, direction)


class TestNextOuts:
    """The paper's next_outs definition (Section V.6)."""

    def test_local_in_can_turn_anywhere(self):
        outs = next_outs(port(1, 1, PortName.LOCAL))
        names = {p.name for p in outs}
        assert names == {PortName.LOCAL, PortName.WEST, PortName.EAST,
                         PortName.NORTH, PortName.SOUTH}
        assert all(p.direction is Direction.OUT for p in outs)

    def test_west_in_cannot_turn_back_west(self):
        names = {p.name for p in next_outs(port(1, 1, PortName.WEST))}
        assert names == {PortName.LOCAL, PortName.EAST, PortName.NORTH,
                         PortName.SOUTH}

    def test_east_in_cannot_turn_back_east(self):
        names = {p.name for p in next_outs(port(1, 1, PortName.EAST))}
        assert names == {PortName.LOCAL, PortName.WEST, PortName.NORTH,
                         PortName.SOUTH}

    def test_north_in_continues_south_or_delivers(self):
        names = {p.name for p in next_outs(port(1, 1, PortName.NORTH))}
        assert names == {PortName.LOCAL, PortName.SOUTH}

    def test_south_in_continues_north_or_delivers(self):
        names = {p.name for p in next_outs(port(1, 1, PortName.SOUTH))}
        assert names == {PortName.LOCAL, PortName.NORTH}

    def test_requires_an_in_port(self):
        with pytest.raises(ValueError):
            next_outs(port(1, 1, PortName.EAST, Direction.OUT))

    def test_mesh_boundary_filtering(self):
        mesh = Mesh2D(2, 2)
        # Node (0, 0) has no West or North ports.
        outs = next_outs(port(0, 0, PortName.LOCAL), mesh)
        names = {p.name for p in outs}
        assert PortName.WEST not in names
        assert PortName.NORTH not in names
        assert PortName.EAST in names and PortName.SOUTH in names

    def test_all_results_stay_on_the_same_node(self):
        for name in (PortName.LOCAL, PortName.EAST, PortName.WEST,
                     PortName.NORTH, PortName.SOUTH):
            for result in next_outs(port(2, 3, name)):
                assert result.node == (2, 3)


class TestFindDest:
    """The paper's find_dest definition (Section VI-A)."""

    def test_in_port_maps_to_local_out_of_same_node(self):
        assert find_dest(port(1, 2, PortName.WEST)) == \
            Port(1, 2, PortName.LOCAL, Direction.OUT)

    def test_out_port_maps_to_local_out_of_neighbour(self):
        assert find_dest(port(1, 2, PortName.EAST, Direction.OUT)) == \
            Port(2, 2, PortName.LOCAL, Direction.OUT)
        assert find_dest(port(1, 2, PortName.NORTH, Direction.OUT)) == \
            Port(1, 1, PortName.LOCAL, Direction.OUT)

    def test_local_out_is_its_own_destination(self):
        local_out = port(1, 2, PortName.LOCAL, Direction.OUT)
        assert find_dest(local_out) == local_out

    def test_mesh_boundary_check(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            find_dest(Port(1, 1, PortName.EAST, Direction.OUT), mesh)

    def test_witness_destination_uses_the_edge_target(self):
        mesh = Mesh2D(3, 3)
        source = port(1, 1, PortName.WEST)
        target = Port(1, 1, PortName.EAST, Direction.OUT)
        assert witness_destination(source, target, mesh) == \
            Port(2, 1, PortName.LOCAL, Direction.OUT)


class TestExyDependencySpec:
    @pytest.fixture
    def mesh(self):
        return Mesh2D(3, 3)

    def test_in_port_edges_follow_next_outs(self, mesh):
        spec = ExyDependencySpec(mesh)
        west_in = port(1, 1, PortName.WEST)
        assert spec.edges_from(west_in) == next_outs(west_in, mesh)

    def test_out_port_edges_follow_next_in(self, mesh):
        spec = ExyDependencySpec(mesh)
        east_out = Port(1, 1, PortName.EAST, Direction.OUT)
        assert spec.edges_from(east_out) == \
            {Port(2, 1, PortName.WEST, Direction.IN)}

    def test_local_out_ports_are_sinks(self, mesh):
        spec = ExyDependencySpec(mesh)
        assert spec.edges_from(Port(1, 1, PortName.LOCAL,
                                    Direction.OUT)) == set()

    def test_graph_has_no_boundary_violations(self, mesh):
        graph = build_exy_graph(mesh)
        for source, target in graph.edges():
            assert mesh.has_port(source)
            assert mesh.has_port(target)

    def test_2x2_graph_matches_fig3_size(self):
        graph = build_exy_graph(Mesh2D(2, 2))
        assert graph.vertex_count == 24
        # Every in-port has out-degree >= 1 (at least the local delivery) and
        # every cardinal out-port exactly 1.
        for vertex in graph.vertices:
            if vertex.is_input:
                assert graph.out_degree(vertex) >= 1
            elif vertex.is_local:
                assert graph.out_degree(vertex) == 0
            else:
                assert graph.out_degree(vertex) == 1

    def test_edge_count_grows_with_mesh(self):
        small = build_exy_graph(Mesh2D(2, 2)).edge_count
        large = build_exy_graph(Mesh2D(4, 4)).edge_count
        assert large > 2 * small
