"""Tests for the topology machinery: mesh, torus, ring, explicit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.mesh import Mesh2D
from repro.network.node import Node
from repro.network.port import Direction, Port, PortName
from repro.network.ring import Ring
from repro.network.topology import ExplicitTopology
from repro.network.torus import Torus2D


class TestMesh2D:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 3)
        with pytest.raises(ValueError):
            Mesh2D(3, -1)

    def test_node_count(self):
        assert Mesh2D(3, 4).node_count == 12

    def test_2x2_port_count_matches_paper_figure(self):
        # Fig. 3 of the paper: each node of a 2x2 mesh has 2 cardinal ports
        # (to its two neighbours) plus the local port, in and out => 6 ports
        # per node, 24 in total.
        mesh = Mesh2D(2, 2)
        assert mesh.port_count == 24
        assert mesh.port_count == mesh.expected_port_count()

    @pytest.mark.parametrize("width,height", [(1, 1), (2, 2), (3, 3), (2, 5),
                                              (4, 3), (5, 5)])
    def test_port_count_closed_form(self, width, height):
        mesh = Mesh2D(width, height)
        assert mesh.port_count == mesh.expected_port_count()

    def test_corner_node_has_two_neighbours(self):
        mesh = Mesh2D(3, 3)
        corner = mesh.node_at(0, 0)
        assert corner.degree == 2
        assert PortName.WEST not in corner.present_names
        assert PortName.NORTH not in corner.present_names

    def test_interior_node_has_four_neighbours(self):
        mesh = Mesh2D(3, 3)
        assert mesh.node_at(1, 1).degree == 4

    def test_edge_node_has_three_neighbours(self):
        mesh = Mesh2D(3, 3)
        assert mesh.node_at(1, 0).degree == 3

    def test_links_are_symmetric(self):
        mesh = Mesh2D(3, 2)
        mesh.validate()  # raises when reverse links are missing

    def test_link_target_east(self):
        mesh = Mesh2D(2, 2)
        out_port = Port(0, 0, PortName.EAST, Direction.OUT)
        assert mesh.link_target(out_port) == Port(1, 0, PortName.WEST,
                                                  Direction.IN)

    def test_local_out_is_sink(self):
        mesh = Mesh2D(2, 2)
        assert mesh.link_target(Port(0, 0, PortName.LOCAL,
                                     Direction.OUT)) is None

    def test_local_port_lists(self):
        mesh = Mesh2D(3, 3)
        assert len(mesh.local_in_ports()) == 9
        assert len(mesh.local_out_ports()) == 9
        assert all(p.is_local and p.is_input for p in mesh.local_in_ports())

    def test_neighbours(self):
        mesh = Mesh2D(3, 3)
        neighbours = mesh.neighbours(mesh.node_at(1, 1))
        assert {node.coordinates for node in neighbours} == \
            {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_manhattan_distance(self):
        assert Mesh2D(5, 5).manhattan_distance((0, 0), (3, 4)) == 7

    def test_corner_and_edge_predicates(self):
        mesh = Mesh2D(3, 3)
        assert mesh.is_corner(0, 0)
        assert not mesh.is_corner(1, 0)
        assert mesh.is_edge(1, 0)
        assert not mesh.is_edge(1, 1)

    def test_describe(self):
        info = Mesh2D(2, 3).describe()
        assert info["nodes"] == 6
        assert info["injection_ports"] == 6

    def test_ascii_art_mentions_all_nodes(self):
        art = Mesh2D(2, 2).ascii_art()
        for coords in ["(0,0)", "(1,0)", "(0,1)", "(1,1)"]:
            assert coords in art

    def test_has_port(self):
        mesh = Mesh2D(2, 2)
        assert mesh.has_port(Port(0, 0, PortName.EAST, Direction.OUT))
        assert not mesh.has_port(Port(0, 0, PortName.WEST, Direction.OUT))
        assert not mesh.has_port(Port(5, 5, PortName.LOCAL, Direction.IN))

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_every_connected_out_port_has_existing_target(self, w, h):
        mesh = Mesh2D(w, h)
        for out_port, in_port in mesh.links.items():
            assert mesh.has_port(out_port)
            assert mesh.has_port(in_port)
            assert in_port.is_input and out_port.is_output


class TestTorus2D:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            Torus2D(1, 4)

    def test_every_node_has_all_ports(self):
        torus = Torus2D(3, 3)
        assert all(node.degree == 4 for node in torus.nodes)
        assert torus.port_count == 9 * 10

    def test_wraparound_links(self):
        torus = Torus2D(3, 3)
        east_edge = Port(2, 1, PortName.EAST, Direction.OUT)
        assert torus.link_target(east_edge) == Port(0, 1, PortName.WEST,
                                                    Direction.IN)

    def test_torus_distance_uses_wraparound(self):
        torus = Torus2D(4, 4)
        assert torus.torus_distance((0, 0), (3, 3)) == 2
        assert torus.torus_distance((0, 0), (2, 2)) == 4

    def test_validate(self):
        Torus2D(3, 4).validate()


class TestRing:
    def test_size_validated(self):
        with pytest.raises(ValueError):
            Ring(1)

    def test_ring_structure(self):
        ring = Ring(4)
        assert ring.node_count == 4
        # Each node: E, W, L in and out = 6 ports.
        assert ring.port_count == 24

    def test_wrap_link(self):
        ring = Ring(4)
        assert ring.link_target(Port(3, 0, PortName.EAST, Direction.OUT)) == \
            Port(0, 0, PortName.WEST, Direction.IN)

    def test_unidirectional_ring_has_no_westward_links(self):
        ring = Ring(4, bidirectional=False)
        assert ring.link_target(Port(2, 0, PortName.WEST,
                                     Direction.OUT)) is None

    def test_distances(self):
        ring = Ring(6)
        assert ring.clockwise_distance(1, 4) == 3
        assert ring.clockwise_distance(4, 1) == 3
        assert ring.shortest_distance(0, 5) == 1

    def test_validate(self):
        Ring(5).validate()


class TestExplicitTopology:
    def _two_node_chain(self):
        node_a = Node(0, 0, present_names=(PortName.EAST, PortName.LOCAL))
        node_b = Node(1, 0, present_names=(PortName.WEST, PortName.LOCAL))
        connections = {
            Port(0, 0, PortName.EAST, Direction.OUT):
                Port(1, 0, PortName.WEST, Direction.IN),
            Port(1, 0, PortName.WEST, Direction.OUT):
                Port(0, 0, PortName.EAST, Direction.IN),
        }
        return ExplicitTopology([node_a, node_b], connections)

    def test_explicit_topology_builds(self):
        topology = self._two_node_chain()
        assert topology.node_count == 2
        assert topology.port_count == 8
        topology.validate()

    def test_connection_to_missing_port_rejected(self):
        node_a = Node(0, 0, present_names=(PortName.EAST, PortName.LOCAL))
        connections = {
            Port(0, 0, PortName.EAST, Direction.OUT):
                Port(9, 9, PortName.WEST, Direction.IN),
        }
        with pytest.raises(ValueError):
            ExplicitTopology([node_a], connections)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            ExplicitTopology([Node(0, 0), Node(0, 0)], {})
