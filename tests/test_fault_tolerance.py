"""Fault-tolerance matrix for the portfolio engine.

Every failure mode the engine claims to survive is injected
deterministically here (:mod:`repro.core.faultplan`) and the recovered
run is held to the engine's core invariant: the comparable verdict
projection is identical to a fault-free run.  The matrix covers worker
kills (pool rebuild + retry), repeated kills (serial degradation),
planned errors and timeouts (structured verdicts), hung workers (parent
watch-loop reaping), run deadlines, cooperative solver interruption
mid-search, checkpoint/resume -- including resume after a SIGKILLed
sweep on the 24-scenario acceptance matrix -- and the ``repro batch``
SIGINT epilogue.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.checking.sat import IncrementalSatSolver, SolverTimeout
from repro.core.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointJournal,
    engine_fingerprint,
    make_run_key,
    scenario_fingerprint,
)
from repro.core.faultplan import (
    DEFAULT_HANG_SECONDS,
    FAULT_PLAN_ENV,
    FaultDirective,
    FaultPlan,
    execute_directive,
    resolve_fault_plan,
)
from repro.core.portfolio import (
    PortfolioReport,
    ScenarioVerdict,
    merge_shard_reports,
    run_portfolio,
    scenarios_from_specs,
)
from repro.core.spec import expand_matrix

# Two session groups, three scenarios: small enough that every test in
# the matrix re-solves it in well under a second, structured enough
# (multi-scenario group + single-scenario group) to exercise group-level
# recovery, journaling and replay.
SMALL_MATRIX = "mesh:3x3, routing=[xy,yx]; ring:4, routing=clockwise"

# The PR-4 acceptance matrix (24 scenarios, 6 session groups) -- the
# SIGKILL/resume test runs the real workload, not a toy.
ACCEPTANCE_MATRIX = (
    "mesh:3x3, routing=[xy,yx,west-first,north-last,negative-first,"
    "adaptive,zigzag], switching=wormhole; "
    "mesh:3x3, routing=xy, switching=vct; "
    "mesh:4x4, routing=[xy,yx], switching=wormhole; "
    "ring:4, routing=chain; ring:4, routing=clockwise, buffers=1; "
    "vc-mesh:3x3, vcs=1..4; vc-torus:4x4, vcs=1..4; vc-ring:4, vcs=1..4"
)


def small_scenarios():
    return scenarios_from_specs(expand_matrix(SMALL_MATRIX))


# ---------------------------------------------------------------------------
# Fault-plan parsing and execution
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_round_trips(self):
        text = "mesh-3x3=kill; ring-4=hang:2.5@*; vc-ring-4=raise@3"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.to_text()) == plan

    def test_directive_attempt_windows(self):
        plan = FaultPlan.parse("a=kill@2; b=timeout@*; c=raise")
        assert plan.directive_for("a", 1).action == "kill"
        assert plan.directive_for("a", 2).action == "kill"
        assert plan.directive_for("a", 3) is None
        assert plan.directive_for("b", 99).action == "timeout"
        assert plan.directive_for("c", 1).action == "raise"
        assert plan.directive_for("c", 2) is None
        assert plan.directive_for("unlisted", 1) is None

    def test_hang_param_and_defaults(self):
        plan = FaultPlan.parse("a=hang:0.25")
        directive = plan.directive_for("a", 1)
        assert directive.param == 0.25
        assert FaultPlan.parse("a=hang").directive_for("a", 1).param == 0.0
        assert DEFAULT_HANG_SECONDS > 0

    @pytest.mark.parametrize("bad", [
        "mesh-3x3",               # no '='
        "mesh-3x3=explode",       # unknown action
        "=kill",                  # empty group
        "a=kill@0",               # attempts < 1
        "a=kill@x",               # non-integer attempts
        "a=hang:fast",            # non-numeric param
        "a=kill; a=raise",        # duplicate group
    ])
    def test_parse_is_strict(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "g=timeout")
        assert FaultPlan.from_env() == FaultPlan.parse("g=timeout")

    def test_resolve_variants(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert resolve_fault_plan(None) is None
        plan = FaultPlan.parse("g=kill")
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan("g=kill") == plan
        monkeypatch.setenv(FAULT_PLAN_ENV, "g=raise")
        assert resolve_fault_plan(None) == FaultPlan.parse("g=raise")

    def test_execute_raise_and_timeout_fire_anywhere(self):
        with pytest.raises(RuntimeError):
            execute_directive(("raise", 0.0), in_worker=False)
        with pytest.raises(SolverTimeout):
            execute_directive(("timeout", 0.0), in_worker=True)

    def test_execute_kill_and_hang_are_parent_noops(self):
        # A kill/hang directive must never take down (or wedge) the
        # orchestrating process -- that is what makes kill@* prove the
        # serial degradation path.
        execute_directive(("kill", 0.0), in_worker=False)
        execute_directive(("hang", 30.0), in_worker=False)
        execute_directive(None, in_worker=True)


# ---------------------------------------------------------------------------
# Cooperative solver interruption
# ---------------------------------------------------------------------------

def _hard_random_3sat(solver):
    import random

    rng = random.Random(7)
    for _ in range(480):
        variables = rng.sample(range(1, 121), 3)
        clause = [var if rng.random() < 0.5 else -var
                  for var in variables]
        while solver.num_vars < 120:
            solver.new_var()
        solver.add_clause(clause)


class TestSolverInterrupt:
    def test_interrupt_fires_mid_search_on_conflict_heavy_instance(self):
        solver = IncrementalSatSolver()
        _hard_random_3sat(solver)
        calls = {"n": 0}

        def budget():
            calls["n"] += 1
            return "test budget" if calls["n"] >= 2 else None

        solver.set_interrupt(budget)
        with pytest.raises(SolverTimeout) as excinfo:
            solver.solve()
        assert excinfo.value.reason == "test budget"
        assert calls["n"] >= 2  # polled during the search, not just at start

    def test_solver_stays_usable_after_interrupt(self):
        solver = IncrementalSatSolver()
        _hard_random_3sat(solver)
        solver.set_interrupt(lambda: "immediately")
        with pytest.raises(SolverTimeout):
            solver.solve()
        solver.set_interrupt(None)
        result = solver.solve()  # incremental state survived the abort
        assert result.satisfiable in (True, False)

    def test_interrupt_checked_at_solve_start(self):
        solver = IncrementalSatSolver()
        solver.add_clause([1])
        solver.set_interrupt(lambda: "at start")
        with pytest.raises(SolverTimeout):
            solver.solve()


# ---------------------------------------------------------------------------
# Injected engine faults through run_portfolio
# ---------------------------------------------------------------------------

class TestInjectedFaults:
    @pytest.fixture(scope="class")
    def clean(self):
        return run_portfolio(small_scenarios()).comparable_dict()

    def test_raise_yields_error_verdicts_and_the_run_continues(self):
        report = run_portfolio(small_scenarios(), _fault_plan="mesh-3x3=raise")
        by_status = report.status_counts()
        assert by_status["error"] == 2
        assert by_status["ok"] == 1
        for verdict in report.verdicts:
            if verdict.status == "error":
                assert verdict.deadlock_free is None
                assert "planned worker failure" in verdict.error
        assert report.failure_count == 2
        again = run_portfolio(small_scenarios(), _fault_plan="mesh-3x3=raise")
        assert report.comparable_dict() == again.comparable_dict()

    def test_planned_timeout_yields_timeout_verdicts(self):
        report = run_portfolio(small_scenarios(), _fault_plan="ring-4=timeout")
        statuses = {v.scenario: v.status for v in report.verdicts}
        assert statuses["ring-4/clockwise"] == "timeout"
        assert statuses["mesh-3x3/Rxy/Swh"] == "ok"
        payload = report.to_json_dict()
        assert payload["summary"]["timeouts"] == 1
        assert payload["summary"]["errors"] == 0

    def test_killed_worker_is_retried_to_an_identical_report(self, clean):
        report = run_portfolio(small_scenarios(), jobs=2,
                               _fault_plan="mesh-3x3=kill@1")
        assert report.recovery["crash_retries"] >= 1
        assert not report.recovery["degraded_serial"]
        assert report.comparable_dict() == clean

    def test_persistent_kills_degrade_to_serial_identically(self, clean):
        report = run_portfolio(small_scenarios(), jobs=2, max_retries=1,
                               retry_backoff=0.01,
                               _fault_plan="mesh-3x3=kill@*")
        assert report.recovery["degraded_serial"]
        assert report.recovery["crash_retries"] >= 2
        assert report.comparable_dict() == clean

    def test_hung_worker_is_reaped_by_the_watch_loop(self):
        started = time.monotonic()
        report = run_portfolio(small_scenarios(), jobs=2, group_timeout=0.4,
                               _fault_plan="ring-4=hang:60@*")
        elapsed = time.monotonic() - started
        assert elapsed < 30, "the hung worker wedged the run"
        statuses = {v.scenario: v.status for v in report.verdicts}
        assert statuses["ring-4/clockwise"] == "timeout"
        assert statuses["mesh-3x3/Rxy/Swh"] == "ok"
        assert statuses["mesh-3x3/Ryx/Swh"] == "ok"

    def test_run_deadline_zero_times_out_everything(self):
        report = run_portfolio(small_scenarios(), run_deadline=0)
        assert all(v.status == "timeout" for v in report.verdicts)
        assert all("run deadline exceeded" in v.error
                   for v in report.verdicts)
        assert len(report.verdicts) == 3  # every scenario got a verdict

    def test_failure_verdicts_keep_scenario_identity_and_order(self):
        report = run_portfolio(small_scenarios(), _fault_plan="ring-4=raise")
        assert [v.index for v in report.verdicts] == [0, 1, 2]
        failed = [v for v in report.verdicts if v.status == "error"]
        assert [v.scenario for v in failed] == ["ring-4/clockwise"]

    def test_fault_plan_env_reaches_the_engine(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "mesh-3x3=raise")
        report = run_portfolio(small_scenarios())
        assert report.status_counts()["error"] == 2


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------

class TestCheckpointJournal:
    RUN_KEY = make_run_key(2010, True, False, None)

    def _record(self, journal, group="g", fingerprint="f",
                specs=((0, "h0"),)):
        journal.record_group(
            fingerprint, "repro-portfolio-report", self.RUN_KEY, group,
            list(specs), [(0, {"scenario": "s", "deadlock_free": True})],
            {"solves": 1}, {"hits": 0, "misses": 1})

    def test_record_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            self._record(journal)
        records = CheckpointJournal(path).load_records()
        assert len(records) == 1
        assert records[0]["schema"] == CHECKPOINT_SCHEMA
        assert records[0]["group"] == "g"
        assert records[0]["verdicts"][0]["index"] == 0

    def test_torn_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            self._record(journal)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "kind": "repro-port')  # torn write
        records = CheckpointJournal(path).load_records()
        assert len(records) == 1

    def test_replayable_requires_exact_match(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            self._record(journal)
        journal = CheckpointJournal(path)
        specs = {"g": [(0, "h0")]}
        good = journal.replayable_groups(
            "f", "repro-portfolio-report", self.RUN_KEY, specs)
        assert set(good) == {"g"}
        assert not journal.replayable_groups(        # engine changed
            "other", "repro-portfolio-report", self.RUN_KEY, specs)
        assert not journal.replayable_groups(        # run parameters changed
            "f", "repro-portfolio-report",
            make_run_key(11, True, False, None), specs)
        assert not journal.replayable_groups(        # scenario edited
            "f", "repro-portfolio-report", self.RUN_KEY, {"g": [(0, "hX")]})
        assert not journal.replayable_groups(        # group no longer present
            "f", "repro-portfolio-report", self.RUN_KEY, {"h": [(0, "h0")]})

    def test_later_records_win(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            self._record(journal)
            journal.record_group(
                "f", "repro-portfolio-report", self.RUN_KEY, "g",
                [(0, "h0")],
                [(0, {"scenario": "s2", "deadlock_free": False})],
                {"solves": 2}, {"hits": 1, "misses": 0})
        replay = CheckpointJournal(path).replayable_groups(
            "f", "repro-portfolio-report", self.RUN_KEY, {"g": [(0, "h0")]})
        assert replay["g"]["verdicts"][0]["scenario"] == "s2"

    def test_missing_file_loads_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "absent.jsonl"))
        assert journal.load_records() == []

    def test_scenario_fingerprint_distinguishes_specs(self):
        specs = expand_matrix(SMALL_MATRIX)
        hashes = {scenario_fingerprint(spec) for spec in specs}
        assert len(hashes) == len(specs)
        assert scenario_fingerprint(specs[0]) == scenario_fingerprint(
            expand_matrix(SMALL_MATRIX)[0])

    def test_engine_fingerprint_shape(self):
        fingerprint = engine_fingerprint()
        assert fingerprint.startswith("repro-")
        assert len(fingerprint.rsplit("-", 1)[1]) == 16


# ---------------------------------------------------------------------------
# Checkpoint/resume through run_portfolio
# ---------------------------------------------------------------------------

class TestCheckpointResume:
    def test_resume_replays_without_resolving(self, tmp_path, monkeypatch):
        path = str(tmp_path / "journal.jsonl")
        first = run_portfolio(small_scenarios(), checkpoint=path)

        import repro.core.portfolio as portfolio_module
        calls = {"n": 0}
        original = portfolio_module._run_group

        def counting(payload, trace=None):
            calls["n"] += 1
            return original(payload, trace=trace)

        monkeypatch.setattr(portfolio_module, "_run_group", counting)
        resumed = run_portfolio(small_scenarios(), checkpoint=path,
                                resume=True)
        assert calls["n"] == 0, "resume re-solved journaled groups"
        assert resumed.recovery["replayed_groups"] == ["mesh-3x3", "ring-4"]
        assert resumed.comparable_dict() == first.comparable_dict()

    def test_partial_journal_resolves_only_the_missing_group(
            self, tmp_path, monkeypatch):
        path = str(tmp_path / "journal.jsonl")
        run_portfolio(small_scenarios(), checkpoint=path)
        records = CheckpointJournal(path).load_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                if record["group"] != "ring-4":
                    handle.write(json.dumps(record, sort_keys=True) + "\n")

        import repro.core.portfolio as portfolio_module
        solved = []
        original = portfolio_module._run_group

        def recording(payload, trace=None):
            solved.append(payload[0])
            return original(payload, trace=trace)

        monkeypatch.setattr(portfolio_module, "_run_group", recording)
        resumed = run_portfolio(small_scenarios(), checkpoint=path,
                                resume=True)
        assert solved == ["ring-4"]
        assert resumed.recovery["replayed_groups"] == ["mesh-3x3"]

    def test_failed_groups_are_not_journaled(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run_portfolio(small_scenarios(), checkpoint=path,
                      _fault_plan="ring-4=timeout")
        groups = {record["group"]
                  for record in CheckpointJournal(path).load_records()}
        assert groups == {"mesh-3x3"}  # the timed-out group must re-solve

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            run_portfolio(small_scenarios(), resume=True)

    def test_resume_after_sigkill_is_byte_identical(self, tmp_path):
        """SIGKILL a sweep of the 24-scenario acceptance matrix mid-run;
        resuming from its journal must reproduce the clean run's
        comparable projection byte for byte."""
        path = str(tmp_path / "journal.jsonl")
        env = dict(os.environ,
                   PYTHONPATH="src",
                   REPRO_FAULT_PLAN="vc-ring-4=hang:120@*")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch",
             "--matrix", ACCEPTANCE_MATRIX, "--jobs", "2",
             "--checkpoint", path],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if (os.path.exists(path)
                        and len(CheckpointJournal(path).load_records()) >= 2):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no journal records appeared before SIGKILL")
        finally:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        journaled = {record["group"]
                     for record in CheckpointJournal(path).load_records()}
        assert journaled, "the killed sweep left no replayable groups"

        scenarios = scenarios_from_specs(expand_matrix(ACCEPTANCE_MATRIX))
        clean = run_portfolio(scenarios)
        resumed = run_portfolio(scenarios, checkpoint=path, resume=True)
        assert set(resumed.recovery["replayed_groups"]) == journaled
        clean_bytes = json.dumps(clean.comparable_dict(), sort_keys=True)
        resumed_bytes = json.dumps(resumed.comparable_dict(), sort_keys=True)
        assert clean_bytes == resumed_bytes

    def test_stale_engine_fingerprint_forces_recompute(
            self, tmp_path, monkeypatch):
        path = str(tmp_path / "journal.jsonl")
        run_portfolio(small_scenarios(), checkpoint=path)
        records = CheckpointJournal(path).load_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                record["fingerprint"] = "repro-0.0.0-deadbeefdeadbeef"
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        resumed = run_portfolio(small_scenarios(), checkpoint=path,
                                resume=True)
        assert resumed.recovery["replayed_groups"] == []
        assert resumed.status_counts()["ok"] == 3


# ---------------------------------------------------------------------------
# Reporting and merging of failure verdicts
# ---------------------------------------------------------------------------

class TestFailureReporting:
    def test_merge_overlap_error_names_the_duplicate_indices(self):
        report = run_portfolio(small_scenarios())
        with pytest.raises(ValueError) as excinfo:
            merge_shard_reports([report, report])
        message = str(excinfo.value)
        assert "duplicate scenario indices" in message
        assert "0" in message and "2" in message

    def test_merge_unions_recovery(self):
        scenarios = small_scenarios()
        shards = [run_portfolio(scenarios, shard=(index, 2))
                  for index in range(2)]
        merged = merge_shard_reports(shards)
        assert merged.comparable_dict() \
            == run_portfolio(scenarios).comparable_dict()
        assert merged.recovery["crash_retries"] == 0

    def test_merge_pins_the_schema_4_status_and_recovery_blocks(self):
        """Merging shard reports must preserve the schema-4 failure
        surface exactly: per-scenario ``status``/``error`` fields from a
        faulted shard, and the merged ``recovery`` block's pinned key
        set.  Bump the report schema when changing either shape."""
        scenarios = small_scenarios()
        # The plan names ring-4, so whichever shard owns it produces the
        # timeout verdict; the other shard's plan never fires.
        shards = [run_portfolio(scenarios, shard=(index, 2),
                                _fault_plan="ring-4=timeout")
                  for index in range(2)]
        merged = merge_shard_reports(shards)
        payload = merged.to_json_dict()
        assert payload["schema"] == 4
        assert set(payload["recovery"]) == {
            "crash_retries", "degraded_serial",
            "group_attempts", "replayed_groups"}
        shard_entries = {entry["scenario"]: entry
                         for report in shards
                         for entry in report.to_json_dict()["scenarios"]}
        statuses = set()
        for entry in payload["scenarios"]:
            assert entry == shard_entries[entry["scenario"]]
            statuses.add(entry["status"])
        assert "timeout" in statuses  # the fault survived the merge

    def test_verdict_json_round_trip_preserves_failures(self):
        report = run_portfolio(small_scenarios(), _fault_plan="ring-4=raise")
        for verdict in report.verdicts:
            entry = verdict.to_json_dict()
            back = ScenarioVerdict.from_json_dict(entry,
                                                  index=verdict.index)
            assert back.to_json_dict() == entry
            assert back.status == verdict.status

    def test_formatted_table_marks_failures(self):
        report = run_portfolio(small_scenarios(),
                               _fault_plan="ring-4=timeout")
        table = report.formatted()
        assert "TIMEOUT" in table
        assert "DEADLOCK-PRONE" not in table  # undecided is not prone
        assert "timed out" in report.summary()

    def test_traced_fault_run_validates_and_records_group_events(
            self, tmp_path):
        from repro.core.trace import TraceWriter, load_trace, validate_trace

        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path, label="fault trace") as trace:
            run_portfolio(small_scenarios(), trace=trace,
                          _fault_plan="ring-4=timeout")
        events = load_trace(path)
        assert validate_trace(events) == []
        timeouts = [event for event in events
                    if event["ev"] == "group_timeout"]
        assert [event["group"] for event in timeouts] == ["ring-4"]
        assert "injected fault" in timeouts[0]["reason"]
        # The planned timeout fires at group start, before any ring
        # scenario span opens -- only the mesh scenarios reach
        # scenario_end, and they end cleanly.
        ends = {event["scenario"]: event.get("status", "ok")
                for event in events if event["ev"] == "scenario_end"}
        assert ends == {"mesh-3x3/Rxy/Swh": "ok", "mesh-3x3/Ryx/Swh": "ok"}

    def test_traced_checkpoint_run_records_journal_events(self, tmp_path):
        from repro.core.trace import TraceWriter, load_trace, validate_trace

        journal = str(tmp_path / "journal.jsonl")
        trace_path = str(tmp_path / "trace.jsonl")
        with TraceWriter(trace_path, label="checkpoint trace") as trace:
            run_portfolio(small_scenarios(), trace=trace, checkpoint=journal)
        with TraceWriter(trace_path + ".2", label="resume trace") as trace:
            run_portfolio(small_scenarios(), trace=trace, checkpoint=journal,
                          resume=True)
        recorded = [event for event in load_trace(trace_path)
                    if event["ev"] == "checkpoint"]
        assert {event["action"] for event in recorded} == {"record"}
        replays = [event for event in load_trace(trace_path + ".2")
                   if event["ev"] == "checkpoint"]
        assert {event["action"] for event in replays} == {"replay"}
        assert validate_trace(load_trace(trace_path)) == []


# ---------------------------------------------------------------------------
# CLI exit codes and the SIGINT epilogue
# ---------------------------------------------------------------------------

class TestBatchCli:
    REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    def _batch(self, *extra, env_extra=None, timeout=120):
        env = dict(os.environ, PYTHONPATH="src")
        env.pop(FAULT_PLAN_ENV, None)
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, "-m", "repro", "batch",
             "--matrix", SMALL_MATRIX] + list(extra),
            cwd=self.REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=timeout)

    def test_exit_zero_on_clean_run(self):
        result = self._batch()
        assert result.returncode == 0, result.stderr

    def test_exit_nonzero_on_planned_timeout(self, tmp_path):
        out = str(tmp_path / "report.json")
        result = self._batch(
            "--json", out,
            env_extra={FAULT_PLAN_ENV: "ring-4=timeout"})
        assert result.returncode == 1, result.stdout
        payload = json.load(open(out))
        assert payload["summary"]["timeouts"] == 1

    def test_resume_flag_requires_checkpoint(self):
        result = self._batch("--resume")
        assert result.returncode != 0
        assert "--checkpoint" in result.stderr

    def test_sigint_prints_partial_table_and_exits_130(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        env = dict(os.environ, PYTHONPATH="src")
        env[FAULT_PLAN_ENV] = "ring-4=hang:120@*"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch",
             "--matrix", SMALL_MATRIX, "--jobs", "2",
             "--checkpoint", journal],
            cwd=self.REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if (os.path.exists(journal)
                    and CheckpointJournal(journal).load_records()):
                break
            time.sleep(0.05)
        time.sleep(0.2)
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 130, out
        assert "partial results" in out
        assert "mesh-3x3" in out
        assert "--resume" in out
