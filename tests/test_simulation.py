"""Tests for workload generators, metrics, traces and the simulator."""

import pytest

from repro.hermes import build_hermes_instance
from repro.ringnoc import build_chain_ring_instance
from repro.simulation import (
    Simulator,
    all_to_all,
    bit_complement_traffic,
    compute_metrics,
    hotspot_traffic,
    neighbour_traffic,
    permutation_traffic,
    single_message,
    transpose_traffic,
    uniform_random_traffic,
)
from repro.simulation.workloads import standard_suite


@pytest.fixture(scope="module")
def instance():
    return build_hermes_instance(3, 3, buffer_capacity=2)


class TestWorkloadGenerators:
    def test_single_message(self, instance):
        spec = single_message(instance, (0, 0), (2, 2), num_flits=3)
        assert len(spec) == 1
        assert spec.travels[0].num_flits == 3
        assert "single" in spec.describe()

    def test_uniform_random_is_deterministic_per_seed(self, instance):
        a = uniform_random_traffic(instance, 10, seed=5)
        b = uniform_random_traffic(instance, 10, seed=5)
        assert [(t.source, t.destination) for t in a.travels] == \
            [(t.source, t.destination) for t in b.travels]
        c = uniform_random_traffic(instance, 10, seed=6)
        assert [(t.source, t.destination) for t in a.travels] != \
            [(t.source, t.destination) for t in c.travels]

    def test_uniform_random_never_sends_to_self(self, instance):
        spec = uniform_random_traffic(instance, 50, seed=1)
        assert all(t.source.node != t.destination.node for t in spec.travels)

    def test_transpose(self, instance):
        spec = transpose_traffic(instance)
        for travel in spec.travels:
            x, y = travel.source.node
            assert travel.destination.node == (y, x)
        # Diagonal nodes do not send.
        assert len(spec) == 9 - 3

    def test_bit_complement(self, instance):
        spec = bit_complement_traffic(instance)
        for travel in spec.travels:
            x, y = travel.source.node
            assert travel.destination.node == (2 - x, 2 - y)
        assert len(spec) == 8  # the centre node maps to itself

    def test_hotspot(self, instance):
        spec = hotspot_traffic(instance, (1, 1))
        assert len(spec) == 8
        assert all(t.destination.node == (1, 1) for t in spec.travels)

    def test_neighbour(self, instance):
        spec = neighbour_traffic(instance)
        assert len(spec) == 9
        for travel in spec.travels:
            x, y = travel.source.node
            assert travel.destination.node == ((x + 1) % 3, y)

    def test_permutation_is_a_permutation(self, instance):
        spec = permutation_traffic(instance, seed=3)
        sources = [t.source.node for t in spec.travels]
        targets = [t.destination.node for t in spec.travels]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)
        assert all(s != t for s, t in zip(sources, targets))

    def test_all_to_all_count(self, instance):
        spec = all_to_all(instance)
        assert len(spec) == 9 * 8

    def test_standard_suite_nonempty(self, instance):
        suite = standard_suite(instance)
        assert len(suite) >= 4
        assert all(len(spec) > 0 for spec in suite)

    def test_travel_ids_unique_within_workload(self, instance):
        spec = uniform_random_traffic(instance, 30, seed=0)
        ids = [t.travel_id for t in spec.travels]
        assert len(set(ids)) == len(ids)


class TestSimulator:
    def test_run_single_workload(self, instance):
        simulator = Simulator(instance)
        result = simulator.run(transpose_traffic(instance, num_flits=3))
        assert result.genoc_result.evacuated
        assert result.correctness_ok
        assert result.evacuation_ok
        assert result.metrics.messages == 6
        assert result.metrics.steps > 0

    def test_metrics_contents(self, instance):
        simulator = Simulator(instance)
        result = simulator.run(single_message(instance, (0, 0), (2, 2),
                                              num_flits=4))
        metrics = result.metrics
        assert metrics.flits == 4
        assert metrics.evacuated and not metrics.deadlocked
        assert metrics.total_route_length == 10
        assert metrics.average_route_length == 10
        assert metrics.peak_flits_in_network >= 1
        assert 0 < metrics.throughput <= 1
        assert metrics.elapsed_seconds > 0
        assert metrics.as_dict()["messages"] == 1

    def test_trace_recording(self, instance):
        simulator = Simulator(instance, record_trace=True)
        result = simulator.run(single_message(instance, (0, 0), (2, 0),
                                              num_flits=2))
        trace = result.trace
        assert trace is not None
        assert len(trace) == result.metrics.steps
        trajectory = trace.header_trajectory(
            result.workload.travels[0].travel_id)
        # The header position is monotone until ejection drops it from view.
        in_flight = [p for p in trajectory if p >= 0]
        assert in_flight == sorted(in_flight)
        assert trace.max_occupancy() >= 1
        assert trace.final_step().pending in (0, 1)

    def test_verification_can_be_disabled(self, instance):
        simulator = Simulator(instance, verify=False)
        result = simulator.run(single_message(instance, (0, 0), (1, 1)))
        assert result.correctness_ok is None
        assert result.evacuation_ok is None

    def test_run_suite_and_sweep(self, instance):
        simulator = Simulator(instance)
        suite = [transpose_traffic(instance, num_flits=2),
                 neighbour_traffic(instance, num_flits=2)]
        results = simulator.run_suite(suite)
        assert len(results) == 2
        table = simulator.sweep(suite)
        assert set(table) == {"transpose", "neighbour"}
        assert all(row["evacuated"] for row in table.values())

    def test_capacity_override(self, instance):
        simulator = Simulator(instance, capacity=1)
        result = simulator.run(bit_complement_traffic(instance, num_flits=3))
        assert result.genoc_result.evacuated

    def test_simulator_on_ring_instance(self):
        ring = build_chain_ring_instance(5)
        simulator = Simulator(ring)
        result = simulator.run(uniform_random_traffic(ring, 8, num_flits=2,
                                                      seed=4))
        assert result.genoc_result.evacuated
        assert result.correctness_ok

    def test_summary_text(self, instance):
        simulator = Simulator(instance)
        result = simulator.run(single_message(instance, (0, 0), (1, 1)))
        assert "evacuated" in result.summary()

    def test_compute_metrics_direct(self, instance):
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=2)]
        original = instance.initial_configuration(travels)
        genoc_result = instance.engine().run(original.copy())
        metrics = compute_metrics(original, genoc_result)
        assert metrics.messages == 1
        assert metrics.steps == genoc_result.steps


class TestWorkloadsOnNonMeshTopologies:
    def test_mesh_specific_generators_reject_rings(self):
        ring = build_chain_ring_instance(4)
        with pytest.raises(TypeError):
            bit_complement_traffic(ring)
        with pytest.raises(TypeError):
            neighbour_traffic(ring)

    def test_uniform_random_works_on_rings(self):
        ring = build_chain_ring_instance(4)
        spec = uniform_random_traffic(ring, 6, seed=0)
        assert len(spec) == 6
