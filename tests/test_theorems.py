"""Tests for the three global theorem checkers."""

import pytest

from repro.core.theorems import (
    check_correctness,
    check_deadlock_freedom,
    check_evacuation,
    check_no_reachable_deadlock,
    derive_evacuation,
)
from repro.hermes import build_hermes_instance
from repro.network.mesh import Mesh2D
from repro.ringnoc import build_chain_ring_instance, build_clockwise_ring_instance
from repro.routing.adaptive import ZigZagRouting


@pytest.fixture
def instance():
    return build_hermes_instance(3, 3, buffer_capacity=2)


def run(instance, travels):
    original = instance.initial_configuration(travels)
    result = instance.engine().run(original.copy())
    return original, result


class TestCorrectnessTheorem:
    def test_holds_on_normal_runs(self, instance):
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=3),
                   instance.make_travel((2, 0), (0, 2), num_flits=2)]
        original, result = run(instance, travels)
        theorem = check_correctness(instance, original, result)
        assert theorem.holds
        assert theorem.checks > 0

    def test_detects_foreign_arrival(self, instance):
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=1)]
        original, result = run(instance, travels)
        # Forge an arrival that was never sent.
        forged = instance.make_travel((2, 2), (0, 0), num_flits=1)
        forged = forged.with_route(instance.routing.compute_route(
            forged.source, forged.destination))
        result.final.arrived.append(forged)
        theorem = check_correctness(instance, original, result)
        assert not theorem.holds
        assert any("never sent" in text for text in theorem.counterexamples)

    def test_detects_wrong_destination(self, instance):
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=1)]
        original, result = run(instance, travels)
        from dataclasses import replace

        tampered = replace(result.final.arrived[0],
                           destination=instance.mesh.node_at(2, 2).local_out)
        result.final.arrived[0] = tampered
        theorem = check_correctness(instance, original, result)
        assert not theorem.holds

    def test_detects_invalid_route(self, instance):
        travels = [instance.make_travel((0, 0), (2, 0), num_flits=1)]
        original, result = run(instance, travels)
        from dataclasses import replace

        arrived = result.final.arrived[0]
        # Replace the route by one that teleports across the mesh.
        bad_route = (arrived.route[0], arrived.route[-1])
        result.final.arrived[0] = replace(arrived, route=bad_route)
        theorem = check_correctness(instance, original, result)
        assert not theorem.holds

    def test_detects_route_not_allowed_by_routing_function(self, instance):
        # A physically valid path that violates XY order (goes south first).
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=1)]
        original, result = run(instance, travels)
        from dataclasses import replace

        mesh = instance.mesh
        from repro.network.port import Direction, Port, PortName

        yx_path = (
            mesh.node_at(0, 0).local_in,
            Port(0, 0, PortName.SOUTH, Direction.OUT),
            Port(0, 1, PortName.NORTH, Direction.IN),
            Port(0, 1, PortName.EAST, Direction.OUT),
            Port(1, 1, PortName.WEST, Direction.IN),
            mesh.node_at(1, 1).local_out,
        )
        result.final.arrived[0] = replace(result.final.arrived[0],
                                          route=yx_path)
        theorem = check_correctness(instance, original, result)
        assert not theorem.holds
        assert any("not allowed" in text for text in theorem.counterexamples)


class TestDeadlockTheorem:
    def test_derived_from_obligations_for_hermes(self, instance):
        theorem = check_deadlock_freedom(instance)
        assert theorem.holds
        assert len(theorem.obligations) == 3
        assert all(ob.holds for ob in theorem.obligations)

    def test_derived_for_chain_ring(self):
        theorem = check_deadlock_freedom(build_chain_ring_instance(5))
        assert theorem.holds

    def test_requires_a_declared_dependency_graph(self):
        instance = build_clockwise_ring_instance(4)
        with pytest.raises(ValueError):
            check_deadlock_freedom(instance)

    def test_fails_when_routing_does_not_match_declared_graph(self):
        # Pair the HERMES Exy_dep with zig-zag routing: (C-1) must fail.
        instance = build_hermes_instance(3, 3)
        broken = build_hermes_instance(3, 3,
                                       routing=ZigZagRouting(Mesh2D(3, 3)))
        broken.dependency_spec = instance.dependency_spec
        broken.witness_destination = instance.witness_destination
        theorem = check_deadlock_freedom(broken)
        assert not theorem.holds

    def test_state_space_facet_for_small_hermes(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=2),
                   instance.make_travel((1, 1), (0, 0), num_flits=2)]
        theorem = check_no_reachable_deadlock(instance, travels, capacity=1)
        assert theorem.holds
        assert theorem.details["complete"]

    def test_state_space_facet_finds_ring_deadlock(self):
        instance = build_clockwise_ring_instance(4)
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=3)
                   for i in range(4)]
        theorem = check_no_reachable_deadlock(instance, travels, capacity=1)
        assert not theorem.holds


class TestEvacuationTheorem:
    def test_holds_on_normal_runs(self, instance):
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=3),
                   instance.make_travel((1, 2), (1, 0), num_flits=2)]
        original, result = run(instance, travels)
        theorem = check_evacuation(instance, original, result)
        assert theorem.holds
        assert theorem.details["sent"] == 2
        assert theorem.details["arrived"] == 2

    def test_fails_when_an_arrival_is_missing(self, instance):
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=2)]
        original, result = run(instance, travels)
        result.final.arrived.clear()
        theorem = check_evacuation(instance, original, result)
        assert not theorem.holds
        assert any("missing" in text for text in theorem.counterexamples)

    def test_fails_on_deadlocked_runs(self):
        instance = build_clockwise_ring_instance(4)
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=4)
                   for i in range(4)]
        original = instance.initial_configuration(travels, capacity=1)
        result = instance.engine().run(original.copy())
        assert result.deadlocked
        theorem = check_evacuation(instance, original, result)
        assert not theorem.holds

    def test_derived_facet(self, instance):
        workloads = [[instance.make_travel((0, 0), (2, 2), num_flits=2),
                      instance.make_travel((2, 2), (0, 0), num_flits=2)]]
        configurations = [instance.initial_configuration(w) for w in workloads]
        theorem = derive_evacuation(instance, configurations)
        assert theorem.holds
        assert len(theorem.obligations) == 2
