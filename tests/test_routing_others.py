"""Tests for the turn-model, adaptive and ring routing functions."""

import pytest

from repro.checking.graphs import find_cycle_dfs
from repro.core.dependency import routing_dependency_graph
from repro.core.errors import RoutingError
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.network.ring import Ring
from repro.routing.adaptive import FullyAdaptiveMinimalRouting, ZigZagRouting
from repro.routing.base import occurring_pairs
from repro.routing.ring import (
    ChainRingRouting,
    ClockwiseRingRouting,
    ShortestPathRingRouting,
)
from repro.routing.turn_model import (
    NegativeFirstRouting,
    NorthLastRouting,
    WestFirstRouting,
)


@pytest.fixture
def mesh():
    return Mesh2D(3, 3)


def local_in(x, y):
    return Port(x, y, PortName.LOCAL, Direction.IN)


def local_out(x, y):
    return Port(x, y, PortName.LOCAL, Direction.OUT)


class TestTurnModels:
    def test_west_first_forces_west_when_needed(self, mesh):
        routing = WestFirstRouting(mesh)
        hops = routing.next_hops(local_in(2, 0), local_out(0, 2))
        assert hops == [Port(2, 0, PortName.WEST, Direction.OUT)]

    def test_west_first_is_adaptive_otherwise(self, mesh):
        routing = WestFirstRouting(mesh)
        hops = routing.next_hops(local_in(0, 0), local_out(2, 2))
        assert set(hops) == {Port(0, 0, PortName.EAST, Direction.OUT),
                             Port(0, 0, PortName.SOUTH, Direction.OUT)}
        assert not routing.is_deterministic

    def test_north_last_postpones_north(self, mesh):
        routing = NorthLastRouting(mesh)
        hops = routing.next_hops(local_in(0, 2), local_out(2, 0))
        # North is minimal but not the only minimal direction -> excluded.
        assert hops == [Port(0, 2, PortName.EAST, Direction.OUT)]

    def test_north_last_allows_north_when_only_option(self, mesh):
        routing = NorthLastRouting(mesh)
        hops = routing.next_hops(local_in(1, 2), local_out(1, 0))
        assert hops == [Port(1, 2, PortName.NORTH, Direction.OUT)]

    def test_negative_first_prefers_negative_directions(self, mesh):
        routing = NegativeFirstRouting(mesh)
        hops = routing.next_hops(local_in(2, 2), local_out(0, 0))
        assert set(hops) == {Port(2, 2, PortName.WEST, Direction.OUT),
                             Port(2, 2, PortName.NORTH, Direction.OUT)}
        hops_positive = routing.next_hops(local_in(0, 0), local_out(2, 2))
        assert set(hops_positive) == {Port(0, 0, PortName.EAST, Direction.OUT),
                                      Port(0, 0, PortName.SOUTH, Direction.OUT)}

    @pytest.mark.parametrize("routing_cls", [WestFirstRouting,
                                             NorthLastRouting,
                                             NegativeFirstRouting])
    def test_turn_models_are_deadlock_free(self, mesh, routing_cls):
        routing = routing_cls(mesh)
        graph = routing_dependency_graph(routing)
        assert find_cycle_dfs(graph).acyclic

    @pytest.mark.parametrize("routing_cls", [WestFirstRouting,
                                             NorthLastRouting,
                                             NegativeFirstRouting])
    def test_turn_model_routes_terminate_and_are_minimal(self, mesh,
                                                         routing_cls):
        routing = routing_cls(mesh)
        for source in mesh.coordinates():
            for target in mesh.coordinates():
                route = routing.compute_route(local_in(*source),
                                              local_out(*target))
                hops = sum(1 for a, b in zip(route, route[1:])
                           if a.node != b.node)
                assert hops == mesh.manhattan_distance(source, target)

    def test_turn_model_reachability_uses_occurring_pairs(self, mesh):
        routing = WestFirstRouting(mesh)
        pairs = occurring_pairs(routing)
        # A North in-port with a destination strictly to the north can never
        # occur under west-first minimal routing.
        impossible = (Port(1, 1, PortName.NORTH, Direction.IN),
                      local_out(1, 0))
        assert impossible not in pairs
        assert not routing.reachable(*impossible)


class TestAdaptiveRouting:
    def test_all_minimal_directions_offered(self, mesh):
        routing = FullyAdaptiveMinimalRouting(mesh)
        hops = routing.next_hops(local_in(0, 0), local_out(2, 2))
        assert set(hops) == {Port(0, 0, PortName.EAST, Direction.OUT),
                             Port(0, 0, PortName.SOUTH, Direction.OUT)}

    def test_adaptive_routing_has_cyclic_dependency_graph(self, mesh):
        routing = FullyAdaptiveMinimalRouting(mesh)
        graph = routing_dependency_graph(routing)
        assert not find_cycle_dfs(graph).acyclic

    def test_adaptive_cycle_exists_even_on_2x2(self):
        routing = FullyAdaptiveMinimalRouting(Mesh2D(2, 2))
        graph = routing_dependency_graph(routing)
        assert not find_cycle_dfs(graph).acyclic

    def test_zigzag_is_deterministic(self, mesh):
        routing = ZigZagRouting(mesh)
        assert routing.is_deterministic
        for source in mesh.coordinates():
            for target in mesh.coordinates():
                route = routing.compute_route(local_in(*source),
                                              local_out(*target))
                assert route[-1] == local_out(*target)

    def test_zigzag_has_cycles_on_3x3_but_not_2x2(self):
        acyclic_small = find_cycle_dfs(routing_dependency_graph(
            ZigZagRouting(Mesh2D(2, 2)))).acyclic
        acyclic_large = find_cycle_dfs(routing_dependency_graph(
            ZigZagRouting(Mesh2D(3, 3)))).acyclic
        assert acyclic_small
        assert not acyclic_large

    def test_zigzag_routes_by_destination_parity(self, mesh):
        routing = ZigZagRouting(mesh)
        # Even destination column: x first.
        assert routing.next_hop(local_in(0, 0), local_out(2, 2)).name \
            is PortName.EAST
        # Odd destination column: y first.
        assert routing.next_hop(local_in(0, 0), local_out(1, 2)).name \
            is PortName.SOUTH


class TestRingRouting:
    def test_clockwise_always_goes_east(self):
        ring = Ring(4)
        routing = ClockwiseRingRouting(ring)
        hop = routing.next_hop(Port(3, 0, PortName.LOCAL, Direction.IN),
                               Port(1, 0, PortName.LOCAL, Direction.OUT))
        assert hop == Port(3, 0, PortName.EAST, Direction.OUT)

    def test_clockwise_route_wraps(self):
        ring = Ring(4)
        routing = ClockwiseRingRouting(ring)
        route = routing.compute_route(
            Port(3, 0, PortName.LOCAL, Direction.IN),
            Port(1, 0, PortName.LOCAL, Direction.OUT))
        visited_nodes = [port.x for port in route]
        assert visited_nodes[0] == 3
        assert 0 in visited_nodes  # crossed the wrap-around link
        assert visited_nodes[-1] == 1

    def test_clockwise_has_cyclic_dependency_graph(self):
        routing = ClockwiseRingRouting(Ring(4))
        assert not find_cycle_dfs(routing_dependency_graph(routing)).acyclic

    def test_shortest_path_picks_shorter_arc(self):
        ring = Ring(6)
        routing = ShortestPathRingRouting(ring)
        west = routing.next_hop(Port(0, 0, PortName.LOCAL, Direction.IN),
                                Port(5, 0, PortName.LOCAL, Direction.OUT))
        assert west.name is PortName.WEST
        east = routing.next_hop(Port(0, 0, PortName.LOCAL, Direction.IN),
                                Port(2, 0, PortName.LOCAL, Direction.OUT))
        assert east.name is PortName.EAST

    def test_shortest_path_still_has_cycles(self):
        routing = ShortestPathRingRouting(Ring(6))
        assert not find_cycle_dfs(routing_dependency_graph(routing)).acyclic

    def test_chain_routing_never_wraps(self):
        ring = Ring(5)
        routing = ChainRingRouting(ring)
        for source in range(5):
            for target in range(5):
                if source == target:
                    continue
                route = routing.compute_route(
                    Port(source, 0, PortName.LOCAL, Direction.IN),
                    Port(target, 0, PortName.LOCAL, Direction.OUT))
                nodes = [port.x for port in route]
                # Node indices move monotonically: no wrap-around.
                assert all(abs(a - b) <= 1 for a, b in zip(nodes, nodes[1:]))

    def test_chain_routing_is_deadlock_free(self):
        routing = ChainRingRouting(Ring(5))
        assert find_cycle_dfs(routing_dependency_graph(routing)).acyclic

    def test_chain_requires_bidirectional_ring(self):
        with pytest.raises(ValueError):
            ChainRingRouting(Ring(4, bidirectional=False))

    def test_ring_routing_rejects_bad_destination(self):
        routing = ClockwiseRingRouting(Ring(4))
        with pytest.raises(RoutingError):
            routing.next_hops(Port(0, 0, PortName.LOCAL, Direction.IN),
                              Port(0, 0, PortName.EAST, Direction.OUT))

    def test_ring_local_out_cannot_route(self):
        routing = ClockwiseRingRouting(Ring(4))
        with pytest.raises(RoutingError):
            routing.next_hops(Port(0, 0, PortName.LOCAL, Direction.OUT),
                              Port(1, 0, PortName.LOCAL, Direction.OUT))
