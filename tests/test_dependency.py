"""Tests for dependency graphs (generic core machinery)."""

import pytest

from repro.core.dependency import (
    ExplicitDependencySpec,
    check_acyclicity,
    graph_statistics,
    routing_dependency_graph,
)
from repro.core.errors import SpecificationError
from repro.hermes.dependency import ExyDependencySpec
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.routing.adaptive import FullyAdaptiveMinimalRouting
from repro.routing.xy import XYRouting


@pytest.fixture
def mesh():
    return Mesh2D(2, 2)


class TestRoutingInducedGraph:
    def test_vertices_cover_all_ports(self, mesh):
        graph = routing_dependency_graph(XYRouting(mesh))
        assert graph.vertex_count == mesh.port_count

    def test_local_out_ports_are_sinks(self, mesh):
        graph = routing_dependency_graph(XYRouting(mesh))
        for port in mesh.local_out_ports():
            assert graph.out_degree(port) == 0

    def test_every_edge_is_a_next_hop_for_some_destination(self, mesh):
        routing = XYRouting(mesh)
        graph = routing_dependency_graph(routing)
        for source, target in graph.edges():
            found = False
            for destination in routing.destinations():
                if source == destination:
                    continue
                if not routing.reachable(source, destination):
                    continue
                if target in routing.next_hops(source, destination):
                    found = True
                    break
            assert found

    def test_xy_induced_graph_is_acyclic(self, mesh):
        graph = routing_dependency_graph(XYRouting(mesh))
        assert check_acyclicity(graph).acyclic

    def test_adaptive_induced_graph_is_cyclic(self, mesh):
        graph = routing_dependency_graph(FullyAdaptiveMinimalRouting(mesh))
        report = check_acyclicity(graph)
        assert not report.acyclic
        assert report.cycle

    def test_explicit_destinations_parameter(self, mesh):
        routing = XYRouting(mesh)
        only = [mesh.node_at(0, 0).local_out]
        graph = routing_dependency_graph(routing, destinations=only)
        full = routing_dependency_graph(routing)
        assert graph.edge_count < full.edge_count


class TestDependencySpecs:
    def test_explicit_spec_roundtrip(self, mesh):
        a = Port(0, 0, PortName.LOCAL, Direction.IN)
        b = Port(0, 0, PortName.EAST, Direction.OUT)
        spec = ExplicitDependencySpec(mesh, {a: {b}})
        assert spec.has_edge(a, b)
        assert not spec.has_edge(b, a)
        assert (a, b) in spec.edges()
        assert spec.to_graph().has_edge(a, b)

    def test_explicit_spec_rejects_foreign_ports(self, mesh):
        a = Port(0, 0, PortName.LOCAL, Direction.IN)
        bogus = Port(7, 7, PortName.EAST, Direction.OUT)
        spec = ExplicitDependencySpec(mesh, {a: {bogus}})
        with pytest.raises(SpecificationError):
            spec.validate()

    def test_exy_spec_is_a_dependency_spec(self, mesh):
        spec = ExyDependencySpec(mesh)
        spec.validate()
        assert spec.topology is mesh

    def test_spec_ports_match_topology(self, mesh):
        spec = ExyDependencySpec(mesh)
        assert set(spec.ports()) == set(mesh.ports)


class TestAcyclicityReport:
    def test_methods_agree_on_acyclic_graph(self, mesh):
        graph = ExyDependencySpec(mesh).to_graph()
        report = check_acyclicity(graph, methods=("dfs", "scc", "toposort",
                                                  "networkx"))
        assert report.acyclic
        assert report.consistent
        assert report.cycle is None

    def test_methods_agree_on_cyclic_graph(self, mesh):
        graph = routing_dependency_graph(FullyAdaptiveMinimalRouting(mesh))
        report = check_acyclicity(graph, methods=("dfs", "scc", "toposort",
                                                  "networkx"))
        assert not report.acyclic
        assert report.consistent

    def test_sat_method(self, mesh):
        graph = ExyDependencySpec(mesh).to_graph()
        report = check_acyclicity(graph, methods=("dfs", "sat"))
        assert report.acyclic

    def test_unknown_method_rejected(self, mesh):
        graph = ExyDependencySpec(mesh).to_graph()
        with pytest.raises(ValueError):
            check_acyclicity(graph, methods=("magic",))

    def test_report_without_checks_raises(self, mesh):
        graph = ExyDependencySpec(mesh).to_graph()
        report = check_acyclicity(graph, methods=())
        with pytest.raises(ValueError):
            _ = report.acyclic


class TestGraphStatistics:
    def test_fig3_statistics_for_2x2(self, mesh):
        """The structure of the paper's Fig. 3 (2x2 mesh dependency graph)."""
        stats = graph_statistics(ExyDependencySpec(mesh).to_graph())
        # 4 nodes x (2 cardinal + 1 local) x 2 directions = 24 ports.
        assert stats["vertices"] == 24
        # 4 local in-ports are pure sources, 4 local out-ports pure sinks.
        assert stats["sources"] == 4
        assert stats["sinks"] == 4
        assert stats["edges"] > 0

    def test_statistics_scale_with_mesh_size(self):
        small = graph_statistics(ExyDependencySpec(Mesh2D(2, 2)).to_graph())
        large = graph_statistics(ExyDependencySpec(Mesh2D(4, 4)).to_graph())
        assert large["vertices"] > small["vertices"]
        assert large["edges"] > small["edges"]
