"""Tests for NoCInstance bundling and the Fig. 2 verification pipeline."""

import pytest

from repro.core.pipeline import discharge_obligations, verify_instance
from repro.hermes import build_hermes_instance
from repro.ringnoc import build_chain_ring_instance
from repro.routing.yx import YXRouting
from repro.network.mesh import Mesh2D
from repro.switching.store_and_forward import StoreAndForwardSwitching


@pytest.fixture
def instance():
    return build_hermes_instance(3, 3, buffer_capacity=2)


def small_workloads(instance):
    return [
        [instance.make_travel((0, 0), (2, 2), num_flits=3),
         instance.make_travel((2, 2), (0, 0), num_flits=3)],
        [instance.make_travel((0, 2), (2, 0), num_flits=2)],
    ]


class TestNoCInstance:
    def test_describe_includes_constituents(self, instance):
        description = instance.describe()
        assert description["routing"] == "Rxy"
        assert description["switching"] == "Swh"
        assert description["injection"] == "Iid"
        assert description["nodes"] == 9

    def test_make_travel_uses_local_ports(self, instance):
        travel = instance.make_travel((0, 0), (2, 1), num_flits=2)
        assert travel.source == instance.mesh.node_at(0, 0).local_in
        assert travel.destination == instance.mesh.node_at(2, 1).local_out

    def test_initial_configuration_capacity_override(self, instance):
        travel = instance.make_travel((0, 0), (1, 1))
        config = instance.initial_configuration([travel], capacity=5)
        some_port = instance.mesh.node_at(0, 0).local_in
        assert config.state[some_port].buffer.capacity == 5

    def test_default_capacity_applies(self, instance):
        config = instance.initial_configuration([])
        some_port = instance.mesh.node_at(0, 0).local_in
        assert config.state[some_port].buffer.capacity == 2

    def test_run_produces_result(self, instance):
        result = instance.run([instance.make_travel((0, 0), (2, 2))])
        assert result.evacuated

    def test_hermes_instance_properties(self, instance):
        assert instance.width == 3
        assert instance.height == 3
        assert instance.mesh.node_count == 9

    def test_build_with_alternative_constituents(self):
        alternative = build_hermes_instance(
            3, 3, buffer_capacity=4,
            routing=YXRouting(Mesh2D(3, 3)),
            switching=StoreAndForwardSwitching())
        # YX is not XY: no Exy_dep is attached.
        assert alternative.dependency_spec is None
        assert alternative.witness_destination is None
        result = alternative.run(
            [alternative.make_travel((0, 0), (2, 2), num_flits=3)])
        assert result.evacuated


class TestDischargeObligations:
    def test_all_five_obligations_reported(self, instance):
        results = discharge_obligations(instance, small_workloads(instance))
        assert set(results) == {"C-1", "C-2", "C-3", "C-4", "C-5"}
        assert all(result.holds for result in results.values())

    def test_without_dependency_spec_only_extensional_obligations(self):
        instance = build_hermes_instance(2, 2,
                                         routing=YXRouting(Mesh2D(2, 2)))
        results = discharge_obligations(
            instance, [[instance.make_travel((0, 0), (1, 1))]])
        assert set(results) == {"C-4", "C-5"}

    def test_no_workloads_is_vacuous_for_c4_c5(self, instance):
        results = discharge_obligations(instance, [])
        assert results["C-4"].holds and results["C-4"].checks == 0
        assert results["C-5"].holds and results["C-5"].checks == 0


class TestVerifyInstance:
    def test_full_pipeline_verifies_hermes(self, instance):
        report = verify_instance(instance, small_workloads(instance))
        assert report.verified
        assert report.all_obligations_hold
        assert report.all_theorems_hold
        assert set(report.theorems) == {"DeadThm", "CorrThm", "EvacThm"}
        assert len(report.runs) == 2
        assert all(run.evacuated for run in report.runs)

    def test_full_pipeline_verifies_chain_ring(self):
        instance = build_chain_ring_instance(4)
        workloads = [[instance.make_travel((0, 0), (3, 0), num_flits=2),
                      instance.make_travel((3, 0), (0, 0), num_flits=2)]]
        report = verify_instance(instance, workloads)
        assert report.verified

    def test_summary_mentions_verdict(self, instance):
        report = verify_instance(instance, small_workloads(instance))
        assert "VERDICT: verified" in report.summary()
        assert any("C-3" in line for line in report.summary_lines())

    def test_pipeline_without_workload_runs(self, instance):
        report = verify_instance(instance, small_workloads(instance),
                                 run_workloads=False)
        assert "CorrThm" not in report.theorems
        assert "DeadThm" in report.theorems
        assert report.runs == []

    def test_pipeline_flags_broken_instances(self):
        # Pair YX routing with the XY dependency graph: C-1 fails, and so
        # does the derived deadlock theorem.
        mesh = Mesh2D(3, 3)
        broken = build_hermes_instance(3, 3)
        broken.routing = YXRouting(mesh)
        report = verify_instance(
            broken, [[broken.make_travel((0, 0), (2, 2), num_flits=2)]])
        assert not report.obligations["C-1"].holds
        assert not report.theorems["DeadThm"].holds
        assert not report.verified
        assert "NOT verified" in report.summary()

    def test_elapsed_time_positive(self, instance):
        report = verify_instance(instance, small_workloads(instance))
        assert report.elapsed_seconds > 0
