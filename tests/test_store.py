"""Failure-mode matrix for the durable content-addressed verdict store.

The store's contract is that a warm sweep over already-proved scenario
groups does zero solver work while producing a ``comparable_dict()``
byte-identical report -- and that *no* corruption of the store directory
can ever crash a sweep or change a verdict.  Every clause of that
contract is exercised here: the content-address and checksum primitives,
cold-populate/warm-replay round trips (including the 24-scenario
acceptance matrix), torn records, checksum quarantine, stale-engine
eviction, schema/meta degradation, writer-lock contention, two real
writer processes racing on one store, a randomized corruption fuzz, the
trace lane for cached runs, and the shard-merge of store counters.
"""

import json
import os
import random
import subprocess
import sys
import time

import pytest

from repro.core.fingerprint import (
    engine_fingerprint,
    make_run_key,
    scenario_fingerprint,
)
from repro.core.portfolio import (
    merge_shard_reports,
    run_portfolio,
    scenarios_from_specs,
)
from repro.core.spec import expand_matrix
from repro.core.store import (
    STORE_COUNTERS,
    STORE_SCHEMA,
    VerdictStore,
    _StoreLock,
    group_record_key,
    record_checksum,
    scan_store,
)
from tests.test_fault_tolerance import ACCEPTANCE_MATRIX, SMALL_MATRIX


def small_scenarios():
    return scenarios_from_specs(expand_matrix(SMALL_MATRIX))


def object_paths(root):
    """All record files currently in the store, sorted for determinism."""
    paths = []
    for dirpath, _dirnames, filenames in os.walk(
            os.path.join(root, "objects")):
        for name in sorted(filenames):
            if name.endswith(".json") and not name.startswith(".tmp-"):
                paths.append(os.path.join(dirpath, name))
    return sorted(paths)


def comparable_bytes(report):
    return json.dumps(report.comparable_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Content addressing and checksums
# ---------------------------------------------------------------------------

class TestAddressing:
    RUN_KEY = {"seed": 2010, "analyse_failures": True,
               "cross_check": False, "shard": None}
    SPECS = [(0, "aa" * 32), (1, "bb" * 32)]

    def test_key_is_deterministic(self):
        first = group_record_key("k", self.RUN_KEY, "g", self.SPECS)
        second = group_record_key("k", dict(self.RUN_KEY), "g",
                                  list(self.SPECS))
        assert first == second
        assert len(first) == 64

    @pytest.mark.parametrize("mutate", [
        lambda a: a.__setitem__("kind", "other"),
        lambda a: a["run_key"].__setitem__("seed", 2011),
        lambda a: a.__setitem__("group", "other-group"),
        lambda a: a["specs"].reverse(),
        lambda a: a["specs"].pop(),
    ])
    def test_key_covers_every_component(self, mutate):
        args = {"kind": "k", "run_key": dict(self.RUN_KEY), "group": "g",
                "specs": [list(pair) for pair in self.SPECS]}
        base = group_record_key(args["kind"], args["run_key"],
                                args["group"], args["specs"])
        mutate(args)
        assert group_record_key(args["kind"], args["run_key"],
                                args["group"], args["specs"]) != base

    def test_checksum_excludes_itself_and_covers_the_rest(self):
        record = {"schema": STORE_SCHEMA, "group": "g", "verdicts": [1, 2]}
        digest = record_checksum(record)
        assert record_checksum(dict(record, checksum=digest)) == digest
        assert record_checksum(dict(record, group="h")) != digest

    def test_run_key_distinguishes_run_parameters(self):
        base = make_run_key(2010, True, False, None)
        assert make_run_key(2011, True, False, None) != base
        assert make_run_key(2010, True, True, None) != base
        assert make_run_key(2010, True, False, (0, 2)) != base
        assert json.dumps(base, sort_keys=True)  # JSON-serializable

    def test_scenario_fingerprint_tracks_spec_content(self):
        scenarios = small_scenarios()
        prints = {scenario_fingerprint(s) for s in scenarios}
        assert len(prints) == len(scenarios)
        assert engine_fingerprint()  # non-empty, importable from one place


class TestStoreLock:
    def test_contention_times_out_without_blocking_forever(self, tmp_path):
        path = str(tmp_path / "store.lock")
        holder = _StoreLock(path, timeout=1.0)
        assert holder.acquire()
        contender = _StoreLock(path, timeout=0.05)
        start = time.monotonic()
        assert not contender.acquire()
        assert time.monotonic() - start < 2.0
        holder.release()
        assert contender.acquire()
        contender.release()

    def test_record_counts_lock_timeouts(self, tmp_path):
        store = VerdictStore(str(tmp_path / "store"),
                             lock_timeout=0.05).open()
        holder = _StoreLock(os.path.join(store.root, "store.lock"),
                            timeout=1.0)
        assert holder.acquire()
        try:
            written = store.record(
                engine_fingerprint(), "k",
                make_run_key(2010, True, False, None), "g",
                [(0, "aa" * 32)], [(0, {"status": "ok"})], {}, {})
        finally:
            holder.release()
        assert not written
        assert store.counters["lock_timeouts"] == 1
        assert store.counters["writes"] == 0


# ---------------------------------------------------------------------------
# Cold-populate / warm-replay round trips
# ---------------------------------------------------------------------------

class TestWarmReplay:
    def test_warm_run_does_zero_solver_work(self, tmp_path):
        store = str(tmp_path / "store")
        cold = run_portfolio(small_scenarios(), store=store)
        assert cold.store_stats["mode"] == "rw"
        assert cold.store_stats["writes"] == 2
        assert cold.store_stats["misses"] == 2
        assert cold.store_stats["replayed_groups"] == []

        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["hits"] == 2
        assert warm.store_stats["misses"] == 0
        assert warm.store_stats["writes"] == 0
        assert sorted(warm.store_stats["replayed_groups"]) \
            == ["mesh-3x3", "ring-4"]
        # Zero solver work: no group was ever attempted by the pool.
        assert warm.recovery["group_attempts"] == {}
        assert comparable_bytes(warm) == comparable_bytes(cold)

    def test_acceptance_matrix_warm_rerun_is_byte_identical(self, tmp_path):
        scenarios = scenarios_from_specs(expand_matrix(ACCEPTANCE_MATRIX))
        store = str(tmp_path / "store")
        cold = run_portfolio(scenarios, store=store)
        warm = run_portfolio(scenarios, store=store)
        assert warm.recovery["group_attempts"] == {}
        assert warm.store_stats["hits"] == 6
        assert warm.store_stats["misses"] == 0
        assert len(warm.store_stats["replayed_groups"]) == 6
        assert comparable_bytes(warm) == comparable_bytes(cold)
        assert warm.status_counts()["ok"] == 24

    def test_run_parameter_changes_miss(self, tmp_path):
        store = str(tmp_path / "store")
        run_portfolio(small_scenarios(), store=store)
        crossed = run_portfolio(small_scenarios(), store=store,
                                cross_check=True)
        assert crossed.store_stats["hits"] == 0
        assert crossed.store_stats["misses"] == 2

    def test_store_composes_with_checkpoint_journal(self, tmp_path):
        store = str(tmp_path / "store")
        journal = str(tmp_path / "journal.jsonl")
        run_portfolio(small_scenarios(), store=store)
        warm = run_portfolio(small_scenarios(), store=store,
                             checkpoint=journal)
        # Store-replayed groups enter the journal, so a resume of this
        # run replays from its own history without consulting the store.
        assert sorted(warm.store_stats["replayed_groups"]) \
            == ["mesh-3x3", "ring-4"]
        resumed = run_portfolio(small_scenarios(), checkpoint=journal,
                                resume=True)
        assert sorted(resumed.recovery["replayed_groups"]) \
            == ["mesh-3x3", "ring-4"]
        assert comparable_bytes(resumed) == comparable_bytes(warm)

    def test_failed_groups_are_not_recorded(self, tmp_path):
        store = str(tmp_path / "store")
        faulted = run_portfolio(small_scenarios(), store=store,
                                _fault_plan="ring-4=raise")
        assert faulted.store_stats["writes"] == 1  # mesh group only
        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["hits"] == 1
        assert warm.store_stats["misses"] == 1
        assert warm.status_counts()["ok"] == 3


# ---------------------------------------------------------------------------
# Failure modes: corruption, staleness, degradation
# ---------------------------------------------------------------------------

class TestFailureModes:
    def populate(self, tmp_path):
        store = str(tmp_path / "store")
        clean = run_portfolio(small_scenarios(), store=store)
        return store, clean

    def test_torn_record_is_quarantined_and_recomputed(self, tmp_path):
        store, clean = self.populate(tmp_path)
        victim = object_paths(store)[0]
        with open(victim, "r+", encoding="utf-8") as handle:
            handle.truncate(len(handle.read()) // 2)
        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["quarantined"] == 1
        assert warm.store_stats["hits"] == 1
        assert warm.store_stats["misses"] == 1
        quarantined = os.listdir(os.path.join(store, "quarantine"))
        assert len(quarantined) == 1 and quarantined[0].endswith(".torn.json")
        assert comparable_bytes(warm) == comparable_bytes(clean)
        # The recompute re-recorded the group: the next run is all hits.
        healed = run_portfolio(small_scenarios(), store=store)
        assert healed.store_stats["hits"] == 2

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        store, clean = self.populate(tmp_path)
        victim = object_paths(store)[0]
        with open(victim, encoding="utf-8") as handle:
            record = json.load(handle)
        record["session_stats"] = {"decisions": 10 ** 9}  # silent tamper
        with open(victim, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["quarantined"] == 1
        names = os.listdir(os.path.join(store, "quarantine"))
        assert names and names[0].endswith(".checksum.json")
        assert comparable_bytes(warm) == comparable_bytes(clean)

    def test_stale_engine_fingerprint_evicts_and_recomputes(self, tmp_path):
        store, clean = self.populate(tmp_path)
        for path in object_paths(store):
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
            record["fingerprint"] = "repro-0.0.0-deadbeefdeadbeef"
            record["checksum"] = record_checksum(record)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["evicted"] == 2
        assert warm.store_stats["hits"] == 0
        assert warm.store_stats["quarantined"] == 0
        assert comparable_bytes(warm) == comparable_bytes(clean)
        # Eviction freed the slots and the recompute re-wrote them under
        # the live fingerprint -- no stranded dead objects.
        scan = scan_store(store)
        assert scan["fingerprints"] == {engine_fingerprint(): 2}

    def test_schema_mismatch_turns_the_store_off(self, tmp_path):
        store, clean = self.populate(tmp_path)
        with open(os.path.join(store, "store-meta.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({"schema": STORE_SCHEMA + 1}, handle)
        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["mode"] == "off"
        assert "degraded_reason" in warm.store_stats
        assert warm.store_stats["hits"] == 0
        assert warm.store_stats["writes"] == 0
        assert comparable_bytes(warm) == comparable_bytes(clean)

    def test_unparseable_meta_turns_the_store_off(self, tmp_path):
        store, clean = self.populate(tmp_path)
        with open(os.path.join(store, "store-meta.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{half a json obj")
        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["mode"] == "off"
        assert comparable_bytes(warm) == comparable_bytes(clean)

    def test_readonly_flag_serves_hits_but_never_writes(self, tmp_path):
        store, clean = self.populate(tmp_path)
        before = {path: os.stat(path).st_mtime_ns
                  for path in object_paths(store)}
        warm = run_portfolio(small_scenarios(), store=store,
                             store_readonly=True)
        assert warm.store_stats["mode"] == "ro"
        assert warm.store_stats["hits"] == 2
        assert warm.store_stats["writes"] == 0
        assert comparable_bytes(warm) == comparable_bytes(clean)
        after = {path: os.stat(path).st_mtime_ns
                 for path in object_paths(store)}
        assert after == before

    def test_readonly_empty_store_recomputes_without_writing(self, tmp_path):
        store = str(tmp_path / "store")
        report = run_portfolio(small_scenarios(), store=store,
                               store_readonly=True)
        assert report.store_stats["mode"] in ("ro", "off")
        assert report.store_stats["writes"] == 0
        assert report.status_counts()["ok"] == 3

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root ignores directory permissions")
    def test_unwritable_directory_degrades_to_readonly(self, tmp_path):
        store, clean = self.populate(tmp_path)
        os.chmod(store, 0o555)
        try:
            warm = run_portfolio(small_scenarios(), store=store)
        finally:
            os.chmod(store, 0o755)
        assert warm.store_stats["mode"] == "ro"
        assert warm.store_stats["hits"] == 2
        assert comparable_bytes(warm) == comparable_bytes(clean)

    def test_write_failure_degrades_to_readonly_midrun(self, tmp_path,
                                                       monkeypatch):
        store = VerdictStore(str(tmp_path / "store")).open()
        assert store.mode == "rw"

        def explode(_path, _payload):
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr(store, "_atomic_write", explode)
        written = store.record(
            engine_fingerprint(), "k",
            make_run_key(2010, True, False, None), "g",
            [(0, "aa" * 32)], [(0, {"status": "ok"})], {}, {})
        assert not written
        assert store.mode == "ro"
        assert store.counters["write_errors"] == 1
        assert "unwritable" in store.degraded_reason

    def test_missing_store_directory_parent_never_raises(self, tmp_path):
        # A store rooted in a file (so makedirs fails) must degrade, not
        # crash the sweep.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        report = run_portfolio(small_scenarios(),
                               store=str(blocker / "store"))
        assert report.store_stats["mode"] == "off"
        assert report.status_counts()["ok"] == 3


class TestConcurrentWriters:
    def test_two_writer_processes_race_safely(self, tmp_path):
        store = str(tmp_path / "store")
        env = dict(os.environ, PYTHONPATH="src")
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        processes = []
        for index in range(2):
            report = str(tmp_path / f"report-{index}.json")
            processes.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "batch",
                 "--matrix", SMALL_MATRIX,
                 "--store", store, "--json", report],
                cwd=root, env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL))
        for process in processes:
            assert process.wait(timeout=120) == 0
        scan = scan_store(store)
        assert scan["damaged"] == 0
        assert scan["quarantined"] == 0
        assert scan["records"] == 2
        warm = run_portfolio(small_scenarios(), store=store)
        assert warm.store_stats["hits"] == 2
        assert warm.recovery["group_attempts"] == {}


class TestCorruptionFuzz:
    def corrupt(self, rng, path):
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        action = rng.choice(["truncate", "flip", "garbage", "empty"])
        if action == "truncate" and len(blob) > 1:
            blob = blob[:rng.randrange(1, len(blob))]
        elif action == "flip" and blob:
            position = rng.randrange(len(blob))
            blob[position] ^= 1 << rng.randrange(8)
        elif action == "garbage":
            blob = bytes(rng.randrange(256) for _ in range(64))
        else:
            blob = b""
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_corruption_never_crashes_or_lies(self, seed, tmp_path):
        store = str(tmp_path / "store")
        clean = run_portfolio(small_scenarios(), store=store)
        rng = random.Random(seed)
        targets = object_paths(store)
        for path in rng.sample(targets, rng.randrange(1, len(targets) + 1)):
            self.corrupt(rng, path)
        warm = run_portfolio(small_scenarios(), store=store)
        assert comparable_bytes(warm) == comparable_bytes(clean)
        assert warm.status_counts()["ok"] == 3
        # Whatever the damage, a bit-flip must never still count as a
        # hit for a record whose content changed *and* pass checksum --
        # hits plus recomputed misses always cover every group.
        assert warm.store_stats["hits"] + warm.store_stats["misses"] == 2

    def test_scan_store_counts_damage_without_moving_it(self, tmp_path):
        store = str(tmp_path / "store")
        run_portfolio(small_scenarios(), store=store)
        victim = object_paths(store)[0]
        with open(victim, "w", encoding="utf-8") as handle:
            handle.write("torn")
        scan = scan_store(store)
        assert scan["schema"] == STORE_SCHEMA
        assert scan["records"] == 1
        assert scan["damaged"] == 1
        assert os.path.exists(victim)  # scan is strictly read-only


# ---------------------------------------------------------------------------
# Trace lane and shard merging for cached runs
# ---------------------------------------------------------------------------

class TestStoreTraceLane:
    def test_warm_traced_run_validates_and_reconciles(self, tmp_path):
        from repro.core.trace import TraceWriter, load_trace, validate_trace
        from repro.core.trace_analysis import analyze_summary

        store = str(tmp_path / "store")
        run_portfolio(small_scenarios(), store=store)
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path, label="warm store run") as trace:
            run_portfolio(small_scenarios(), store=store, trace=trace)
        events = load_trace(path)
        assert validate_trace(events) == []
        lookups = [e for e in events if e["ev"] == "store_lookup"]
        assert len(lookups) == 2 and all(e["hit"] for e in lookups)
        cached_ends = [e for e in events if e["ev"] == "scenario_end"
                       and e.get("cached")]
        assert len(cached_ends) == 3
        summary = analyze_summary(events)
        assert summary["reconciled"]
        assert summary["store"]["hits"] == 2
        assert summary["store"]["cached_groups"] == 2
        assert summary["store"]["cached_scenarios"] == 3

    def test_cold_traced_run_counts_writes(self, tmp_path):
        from repro.core.trace import TraceWriter, load_trace
        from repro.core.trace_analysis import analyze_summary

        store = str(tmp_path / "store")
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path, label="cold store run") as trace:
            run_portfolio(small_scenarios(), store=store, trace=trace)
        summary = analyze_summary(load_trace(path))
        assert summary["store"]["misses"] == 2
        assert summary["store"]["writes"] == 2
        assert summary["store"]["cached_groups"] == 0

    def test_storeless_trace_summary_has_no_store_section(self, tmp_path):
        from repro.core.trace import TraceWriter, load_trace
        from repro.core.trace_analysis import analyze_summary

        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path, label="plain run") as trace:
            run_portfolio(small_scenarios(), trace=trace)
        summary = analyze_summary(load_trace(path))
        assert "store" not in summary


class TestMergeStoreStats:
    def test_merge_sums_counters_and_unions_replayed_groups(self, tmp_path):
        store = str(tmp_path / "store")
        scenarios = small_scenarios()
        populated = [run_portfolio(scenarios, shard=(index, 2), store=store)
                     for index in range(2)]
        shards = [run_portfolio(scenarios, shard=(index, 2), store=store)
                  for index in range(2)]
        merged = merge_shard_reports(shards)
        assert merged.store_stats["mode"] == "rw"
        # The shard key is part of the record address, so each warm shard
        # hits exactly what its own populate run wrote.
        assert merged.store_stats["hits"] \
            == sum(report.store_stats["writes"] for report in populated) > 0
        assert merged.store_stats["misses"] == 0
        assert sorted(merged.store_stats["replayed_groups"]) == sorted(
            group for report in shards
            for group in report.store_stats["replayed_groups"])
        for counter in STORE_COUNTERS:
            assert counter in merged.store_stats
        assert merged.comparable_dict() \
            == run_portfolio(scenarios).comparable_dict()

    def test_merge_of_storeless_reports_has_no_store_block(self):
        scenarios = small_scenarios()
        shards = [run_portfolio(scenarios, shard=(index, 2))
                  for index in range(2)]
        merged = merge_shard_reports(shards)
        assert merged.store_stats == {}
        assert "store" not in merged.to_json_dict()

    def test_merge_marks_mixed_modes(self, tmp_path):
        store = str(tmp_path / "store")
        scenarios = small_scenarios()
        rw_shard = run_portfolio(scenarios, shard=(0, 2), store=store)
        ro_shard = run_portfolio(scenarios, shard=(1, 2), store=store,
                                 store_readonly=True)
        merged = merge_shard_reports([rw_shard, ro_shard])
        assert merged.store_stats["mode"] == "mixed"
