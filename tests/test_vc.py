"""Tests for the virtual-channel resource layer: VirtualChannel,
VCTopology, per-VC buffer/ownership state, the FlitBufferError rename and
the single-VC degenerate case."""

import pytest

from repro.core.state import NetworkState
from repro.network.buffers import (
    FlitBuffer,
    FlitBufferError,
    PortState,
)
from repro.network.flit import make_flits
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.network.ring import Ring
from repro.network.torus import Torus2D
from repro.network.vc import (
    VCTopology,
    VirtualChannel,
    channels_of,
    is_wrap_link,
    parse_channel,
    port_of,
    vc_of,
)


EAST_OUT = Port(0, 0, PortName.EAST, Direction.OUT)
WEST_IN = Port(1, 0, PortName.WEST, Direction.IN)
LOCAL_IN = Port(0, 0, PortName.LOCAL, Direction.IN)


class TestVirtualChannel:
    def test_value_semantics(self):
        a = VirtualChannel(EAST_OUT, 1)
        b = VirtualChannel(Port(0, 0, PortName.EAST, Direction.OUT), 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.with_vc(0)

    def test_port_interface_delegation(self):
        channel = VirtualChannel(EAST_OUT, 2)
        assert channel.x == 0 and channel.y == 0
        assert channel.node == (0, 0)
        assert channel.is_output and not channel.is_input
        assert channel.is_cardinal and not channel.is_local
        assert channel.name is PortName.EAST
        assert channel.direction is Direction.OUT

    def test_str_roundtrip(self):
        channel = VirtualChannel(WEST_IN, 3)
        assert str(channel) == "<1,0,W,IN>#3"
        assert parse_channel(str(channel)) == channel

    def test_port_of_and_vc_of_cover_the_degenerate_case(self):
        channel = VirtualChannel(EAST_OUT, 2)
        assert port_of(channel) == EAST_OUT
        assert vc_of(channel) == 2
        # Plain ports are their own resource at VC 0.
        assert port_of(EAST_OUT) == EAST_OUT
        assert vc_of(EAST_OUT) == 0

    def test_channels_of_multiplexes_cardinals_only(self):
        assert len(channels_of(EAST_OUT, 4)) == 4
        assert channels_of(LOCAL_IN, 4) == [VirtualChannel(LOCAL_IN, 0)]
        with pytest.raises(ValueError):
            channels_of(EAST_OUT, 0)


class TestVCTopology:
    def test_channel_counts(self):
        mesh = Mesh2D(3, 3)
        vct = VCTopology(mesh, 2)
        cardinals = sum(1 for p in mesh.ports if p.is_cardinal)
        locals_ = sum(1 for p in mesh.ports if p.is_local)
        assert vct.port_count == cardinals * 2 + locals_
        assert vct.num_vcs == 2
        assert vct.describe()["virtual_channels"] == 2
        assert vct.describe()["channels"] == vct.port_count

    def test_single_vc_matches_base_port_count(self):
        mesh = Mesh2D(2, 3)
        vct = VCTopology(mesh, 1)
        assert vct.port_count == mesh.port_count

    def test_links_preserve_the_vc_index(self):
        mesh = Mesh2D(2, 2)
        vct = VCTopology(mesh, 3)
        for vc in range(3):
            out = VirtualChannel(EAST_OUT, vc)
            assert vct.link_target(out) == VirtualChannel(WEST_IN, vc)
        # Local out-channels are sinks.
        local_out = VirtualChannel(
            Port(0, 0, PortName.LOCAL, Direction.OUT), 0)
        assert vct.link_target(local_out) is None

    def test_injection_and_ejection_channels(self):
        mesh = Mesh2D(2, 2)
        vct = VCTopology(mesh, 2)
        assert len(vct.local_in_ports()) == 4
        assert all(vc_of(c) == 0 and port_of(c).is_local
                   for c in vct.local_in_ports())
        assert len(vct.local_out_ports()) == 4

    def test_has_port_rejects_foreign_vcs(self):
        mesh = Mesh2D(2, 2)
        vct = VCTopology(mesh, 2)
        assert vct.has_port(VirtualChannel(EAST_OUT, 1))
        assert not vct.has_port(VirtualChannel(EAST_OUT, 2))
        assert not vct.has_port(VirtualChannel(LOCAL_IN, 1))

    def test_network_state_over_channels(self):
        mesh = Mesh2D(2, 2)
        vct = VCTopology(mesh, 2)
        state = NetworkState.empty(vct, capacity=2)
        flit = make_flits(7, 1)[0]
        channel = VirtualChannel(EAST_OUT, 1)
        state.accept_flit(channel, flit)
        # Per-VC ownership: VC 1 is owned, VC 0 of the same port is free.
        assert not state.accepts(channel, 8)
        assert state.accepts(VirtualChannel(EAST_OUT, 0), 8)
        assert state.total_flits() == 1


class TestWrapLinks:
    def test_torus_wrap_links(self):
        torus = Torus2D(3, 3)
        assert is_wrap_link(torus, Port(2, 0, PortName.EAST, Direction.OUT))
        assert is_wrap_link(torus, Port(0, 0, PortName.WEST, Direction.OUT))
        assert is_wrap_link(torus, Port(0, 2, PortName.SOUTH, Direction.OUT))
        assert not is_wrap_link(torus,
                                Port(1, 0, PortName.EAST, Direction.OUT))

    def test_ring_wrap_links(self):
        ring = Ring(4, bidirectional=True)
        assert is_wrap_link(ring, Port(3, 0, PortName.EAST, Direction.OUT))
        assert is_wrap_link(ring, Port(0, 0, PortName.WEST, Direction.OUT))
        assert not is_wrap_link(ring,
                                Port(1, 0, PortName.EAST, Direction.OUT))

    def test_mesh_has_no_wrap_links(self):
        mesh = Mesh2D(3, 3)
        assert not any(is_wrap_link(mesh, port) for port in mesh.ports
                       if port.is_output)


class TestFlitBufferErrorRename:
    def test_deprecated_alias_is_gone(self):
        """``BufferError_`` (deprecated in the VC PR) has been removed;
        :class:`FlitBufferError` is the one exception type."""
        import repro.network.buffers as buffers

        assert not hasattr(buffers, "BufferError_")

    def test_overflow_raises_flit_buffer_error(self):
        buffer = FlitBuffer(1)
        buffer.push(make_flits(1, 1)[0])
        with pytest.raises(FlitBufferError):
            buffer.push(make_flits(2, 1)[0])

    def test_underflow_raises_flit_buffer_error(self):
        with pytest.raises(FlitBufferError):
            FlitBuffer(1).pop()

    def test_ownership_violation_raises_flit_buffer_error(self):
        """The wormhole ownership path: a port owned by one worm refuses
        flits of another, raising the renamed exception."""
        state = PortState.with_capacity(2)
        state.accept(make_flits(1, 2)[0])
        assert state.owner == 1
        foreign = make_flits(2, 1)[0]
        with pytest.raises(FlitBufferError, match="owned by travel 1"):
            state.accept(foreign)
