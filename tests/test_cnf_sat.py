"""Tests for the CNF machinery, the Tseitin transformation, DIMACS I/O and
the CDCL SAT solver."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.checking.bool_expr import (
    And,
    FALSE,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    is_satisfiable_brute_force,
)
from repro.checking.cnf import (
    CNF,
    at_least_one,
    at_most_one,
    exactly_one,
    implies_clause,
)
from repro.checking.dimacs import dimacs_string, parse_dimacs
from repro.checking.sat import SatSolver, brute_force_satisfiable, solve_cnf
from repro.checking.tseitin import TseitinEncoder, to_cnf

# Imported at module level: importing a test module *inside* a Hypothesis
# test (as the nested-@given health check sees it) fails the health check,
# because applying ``@given(expressions())`` happens at module-exec time.
from tests.test_bool_expr import expressions


class TestCNF:
    def test_new_var_and_names(self):
        cnf = CNF()
        a = cnf.var("a")
        b = cnf.var("b")
        assert a != b
        assert cnf.var("a") == a  # idempotent
        assert cnf.name_of(a) == "a"
        assert cnf.named_variables() == {"a": a, "b": b}

    def test_duplicate_name_rejected(self):
        cnf = CNF()
        cnf.new_var("a")
        with pytest.raises(ValueError):
            cnf.new_var("a")

    def test_add_clause_tracks_num_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -5])
        assert cnf.num_vars == 5
        assert cnf.num_clauses == 1

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_evaluate(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: True})

    def test_copy_independent(self):
        cnf = CNF()
        cnf.add_clause([1])
        clone = cnf.copy()
        clone.add_clause([2])
        assert cnf.num_clauses == 1

    def test_clause_helpers(self):
        assert at_least_one([1, 2, 3]) == [(1, 2, 3)]
        assert ((-1, -2) in at_most_one([1, 2, 3])
                and (-2, -3) in at_most_one([1, 2, 3]))
        assert len(exactly_one([1, 2, 3])) == 4
        assert implies_clause([1, 2], 3) == (-1, -2, 3)


class TestSolverBasics:
    def test_empty_formula_is_sat(self):
        assert solve_cnf(CNF()).satisfiable

    def test_single_unit(self):
        cnf = CNF()
        cnf.add_clause([3])
        result = solve_cnf(cnf)
        assert result.satisfiable
        assert result.model[3] is True

    def test_contradictory_units(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert not solve_cnf(cnf).satisfiable

    def test_empty_clause_is_unsat(self):
        cnf = CNF()
        cnf.add_clause([])
        assert not solve_cnf(cnf).satisfiable

    def test_model_satisfies_formula(self):
        cnf = CNF()
        cnf.add_clause([1, 2, 3])
        cnf.add_clause([-1, -2])
        cnf.add_clause([-3, 2])
        result = solve_cnf(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.model)

    def test_pigeonhole_3_into_2_is_unsat(self):
        # Pigeons p in {1,2,3}, holes h in {1,2}: variable x[p][h].
        cnf = CNF()
        var = {(p, h): cnf.new_var() for p in range(3) for h in range(2)}
        for p in range(3):
            cnf.add_clause([var[(p, h)] for h in range(2)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert not solve_cnf(cnf).satisfiable

    def test_graph_colouring_sat(self):
        # A 4-cycle is 2-colourable.
        cnf = CNF()
        colour = {(v, c): cnf.new_var() for v in range(4) for c in range(2)}
        for v in range(4):
            cnf.add_clauses(exactly_one([colour[(v, c)] for c in range(2)]))
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        for a, b in edges:
            for c in range(2):
                cnf.add_clause([-colour[(a, c)], -colour[(b, c)]])
        assert solve_cnf(cnf).satisfiable

    def test_triangle_not_2_colourable(self):
        cnf = CNF()
        colour = {(v, c): cnf.new_var() for v in range(3) for c in range(2)}
        for v in range(3):
            cnf.add_clauses(exactly_one([colour[(v, c)] for c in range(2)]))
        for a, b in [(0, 1), (1, 2), (2, 0)]:
            for c in range(2):
                cnf.add_clause([-colour[(a, c)], -colour[(b, c)]])
        assert not solve_cnf(cnf).satisfiable

    def test_assumptions(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        assert SatSolver(cnf).solve(assumptions=[-1]).satisfiable
        cnf2 = CNF()
        cnf2.add_clause([1])
        assert not SatSolver(cnf2).solve(assumptions=[-1]).satisfiable

    def test_stats_are_reported(self):
        cnf = CNF()
        for clause in [[1, 2], [-1, 3], [-2, -3], [1, -3], [-1, 2, 3]]:
            cnf.add_clause(clause)
        result = solve_cnf(cnf)
        assert "decisions" in result.stats
        assert "conflicts" in result.stats

    def test_named_model(self):
        cnf = CNF()
        a = cnf.var("a")
        cnf.add_unit(a)
        result = solve_cnf(cnf)
        assert result.named_model(cnf) == {"a": True}

    def test_named_model_of_unsat_raises(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        result = solve_cnf(cnf)
        with pytest.raises(ValueError):
            result.named_model(cnf)


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(1, 8))
    num_clauses = draw(st.integers(1, 25))
    cnf = CNF()
    for _ in range(num_clauses):
        width = draw(st.integers(1, 4))
        clause = [draw(st.sampled_from([1, -1])) * draw(
            st.integers(1, num_vars)) for _ in range(width)]
        cnf.add_clause(clause)
    return cnf


class TestSolverAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=150, deadline=None)
    def test_cdcl_matches_brute_force(self, cnf):
        assert solve_cnf(cnf).satisfiable == brute_force_satisfiable(cnf)

    @given(random_cnf())
    @settings(max_examples=80, deadline=None)
    def test_sat_models_are_real_models(self, cnf):
        result = solve_cnf(cnf)
        if result.satisfiable:
            assert cnf.evaluate(result.model)


class TestTseitin:
    def test_simple_conjunction(self):
        cnf = to_cnf(And(Var("a"), Var("b")))
        result = solve_cnf(cnf)
        assert result.satisfiable
        named = result.named_model(cnf)
        assert named["a"] and named["b"]

    def test_contradiction(self):
        cnf = to_cnf(And(Var("a"), Not(Var("a"))))
        assert not solve_cnf(cnf).satisfiable

    def test_constants(self):
        assert solve_cnf(to_cnf(TRUE)).satisfiable
        assert not solve_cnf(to_cnf(FALSE)).satisfiable

    def test_shared_subexpressions_reuse_variables(self):
        shared = And(Var("a"), Var("b"))
        encoder = TseitinEncoder()
        first = encoder.encode(shared)
        second = encoder.encode(shared)
        assert first == second

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_tseitin_preserves_satisfiability(self, data):
        expr = data.draw(expressions())
        expected = is_satisfiable_brute_force(expr)
        assert solve_cnf(to_cnf(expr)).satisfiable == expected


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3])
        text = dimacs_string(cnf, comments=["hello"])
        parsed = parse_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses

    def test_header_present(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        assert "p cnf 2 1" in dimacs_string(cnf)

    def test_named_variables_in_comments(self):
        cnf = CNF()
        cnf.add_unit(cnf.var("port_a"))
        assert "port_a" in dimacs_string(cnf)

    def test_parse_ignores_comments_and_blank_lines(self):
        text = "c comment\n\np cnf 2 1\n1 -2 0\n"
        cnf = parse_dimacs(text)
        assert cnf.clauses == [(1, -2)]
        assert cnf.num_vars == 2

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs("p dnf 2 1\n1 0\n")

    def test_solver_agrees_after_roundtrip(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        cnf.add_clause([-2])
        parsed = parse_dimacs(dimacs_string(cnf))
        assert solve_cnf(parsed).satisfiable == solve_cnf(cnf).satisfiable
