"""Tests for the incremental deadlock-query session, the portfolio batch
driver, and the fast key-level wormhole stepper of the state-space
explorer (cross-validated against the generic decode-based path)."""

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.checking.bmc import ConfigurationSpace, explore_configuration_space
from repro.core.deadlock import DeadlockQuerySession
from repro.core.obligations import check_c3_incremental
from repro.core.portfolio import (
    PortfolioReport,
    Scenario,
    run_portfolio,
    standard_portfolio,
)
from repro.core.theorems import (
    check_deadlock_freedom,
    check_deadlock_freedom_incremental,
)
from repro.hermes import build_hermes_instance
from repro.network.mesh import Mesh2D
from repro.ringnoc import (
    build_chain_ring_instance,
    build_clockwise_ring_instance,
)
from repro.routing.adaptive import ZigZagRouting
from repro.switching.store_and_forward import StoreAndForwardSwitching
from repro.switching.virtual_cut_through import VirtualCutThroughSwitching


class TestDeadlockQuerySession:
    def test_declared_graph_session_agrees_with_theorem(self):
        instance = build_hermes_instance(3, 3)
        session = DeadlockQuerySession.for_instance(instance)
        assert session.is_deadlock_free()
        assert check_deadlock_freedom(instance).holds

    def test_repeated_queries_on_one_session(self):
        instance = build_clockwise_ring_instance(4)
        session = DeadlockQuerySession.for_instance(instance)
        assert not session.is_deadlock_free()
        # Re-queries on the same session keep answering consistently.
        assert not session.is_deadlock_free()
        core = session.cycle_core()
        assert core, "a cyclic graph must yield a cycle core"
        assert not session.is_deadlock_free_edges(core)
        # Removing all wrap-edges of the core restores freedom for the rest.
        assert session.is_deadlock_free_without(core)

    def test_escape_edges_break_the_ring_cycle(self):
        instance = build_clockwise_ring_instance(4)
        session = DeadlockQuerySession.for_instance(instance)
        escapes = session.escape_edges()
        assert escapes, "a single dateline edge removal must fix the ring"
        for edge in escapes:
            assert session.is_deadlock_free_without([edge])

    def test_subset_queries_are_monotone(self):
        instance = build_hermes_instance(2, 2)
        session = DeadlockQuerySession.for_instance(instance)
        assert session.is_deadlock_free()
        ports = sorted({p for e in session.edges for p in e}, key=str)
        # Every subset of an acyclic graph is acyclic.
        assert session.is_deadlock_free_for(ports[::2])
        assert session.is_deadlock_free_for(ports[::3])

    def test_numbering_decreases_along_edges(self):
        instance = build_hermes_instance(2, 2)
        session = DeadlockQuerySession.for_instance(instance)
        numbering = session.numbering()
        for source, target in session.edges:
            assert numbering[target] < numbering[source]


class TestIncrementalTheorem:
    def test_incremental_matches_classic_on_hermes(self):
        instance = build_hermes_instance(3, 3)
        classic = check_deadlock_freedom(instance)
        incremental = check_deadlock_freedom_incremental(instance)
        assert classic.holds and incremental.holds

    def test_incremental_detects_ring_cycle_with_escapes(self):
        result = check_deadlock_freedom_incremental(
            build_clockwise_ring_instance(4))
        assert not result.holds
        assert result.counterexamples
        assert result.details.get("escape_edges")

    def test_shared_session_restricts_to_instance_edges(self):
        """A session grown with another routing's edges must not change the
        verdict for an instance whose own dependency graph is acyclic."""
        instance = build_hermes_instance(3, 3)
        session = DeadlockQuerySession.for_instance(instance)
        # Pollute the shared universe with the cyclic edges of a zigzag
        # routing on the same mesh (cyclic from 3x3 upwards).
        from repro.core.dependency import routing_dependency_graph

        cyclic = routing_dependency_graph(
            ZigZagRouting(Mesh2D(3, 3)))
        for source, target in cyclic.edges():
            session.add_edge(source, target)
        assert not session.is_deadlock_free()  # the union is cyclic
        result = check_deadlock_freedom_incremental(instance, session=session)
        assert result.holds, \
            "instance verdict must be restricted to its own edges"

    def test_spot_check_subsets_parameter_is_honoured(self):
        instance = build_hermes_instance(2, 2)
        result = check_deadlock_freedom_incremental(instance,
                                                    spot_check_subsets=5)
        assert result.holds
        # 1 full query + up to 5 restricted-subset queries (subsets whose
        # induced edge set is empty are trivially acyclic and skipped) --
        # strictly more than the old hardcoded cap of 3 allowed.
        assert 5 <= result.details["incremental_queries"] <= 6

    def test_c3_incremental_matches_check_c3(self):
        instance = build_hermes_instance(3, 3)
        result = check_c3_incremental(instance.dependency_spec)
        assert result.holds
        session = result.details["session"]
        # The session stays usable for follow-up queries.
        assert session.is_deadlock_free()


class TestPortfolioDriver:
    def test_standard_portfolio_verdicts(self):
        report = run_portfolio(
            standard_portfolio(mesh_sizes=(3,), ring_sizes=(4,)),
            cross_check=True)
        verdicts = {v.scenario: v.deadlock_free for v in report.verdicts}
        assert verdicts["mesh-3x3/Rxy/Swh"]
        assert verdicts["mesh-3x3/Ryx/Swh"]
        assert verdicts["mesh-3x3/Rwest-first/Swh"]
        assert not verdicts["mesh-3x3/Radaptive/Swh"]
        assert not verdicts["mesh-3x3/Rzigzag/Swh"]
        assert verdicts["mesh-3x3/Rxy/Svct"]
        assert verdicts["ring-4/chain"]
        assert not verdicts["ring-4/clockwise"]

    def test_sessions_are_shared_within_groups(self):
        report = run_portfolio(
            standard_portfolio(mesh_sizes=(3,), ring_sizes=()))
        assert list(report.session_stats) == ["mesh-3x3"]
        # Later scenarios re-use earlier encodings: at least one scenario
        # contributed no new edges at all.
        assert any(v.new_edges == 0 for v in report.verdicts[1:])

    def test_failure_analysis_on_ring(self):
        report = run_portfolio(
            standard_portfolio(mesh_sizes=(), ring_sizes=(4,)))
        prone = [v for v in report.verdicts if not v.deadlock_free]
        assert len(prone) == 1
        assert prone[0].cycle_core
        assert prone[0].escape_edges
        assert report.formatted()
        assert "deadlock-prone" in report.summary()


def _mixed_portfolio():
    """Mesh, ring and VC mesh/torus scenarios -- every condition kind."""
    from repro.core.portfolio import vc_escape_portfolio

    return (standard_portfolio(mesh_sizes=(3,), ring_sizes=(4,))
            + vc_escape_portfolio(mesh_sizes=(3,), torus_sizes=(4,),
                                  vc_counts=(1, 2)))


class TestParallelPortfolio:
    def test_parallel_verdicts_identical_to_serial(self):
        """The tentpole contract: ``--jobs 4`` reproduces ``--jobs 1``
        bit for bit -- verdicts, ordering, cores, solver statistics --
        across mesh, ring, VC-mesh and VC-torus scenario groups."""
        scenarios = _mixed_portfolio()
        serial = run_portfolio(scenarios, jobs=1)
        parallel = run_portfolio(scenarios, jobs=4)
        assert serial.jobs == 1
        assert parallel.jobs == 4
        assert serial.comparable_dict() == parallel.comparable_dict()
        # The full export differs only in timings/jobs/cache counters.
        names = [v.scenario for v in parallel.verdicts]
        assert names == [s.name for s in scenarios]

    def test_jobs_zero_means_all_cores(self):
        import os

        from repro.core.portfolio import resolve_jobs

        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(3) == 3

    def test_single_group_runs_in_process(self):
        """One group cannot be split, so no pool is spun up (and the
        verdicts still match a multi-worker request)."""
        scenarios = standard_portfolio(mesh_sizes=(3,), ring_sizes=())
        serial = run_portfolio(scenarios, jobs=1)
        parallel = run_portfolio(scenarios, jobs=4)
        assert serial.comparable_dict() == parallel.comparable_dict()

    def test_per_scenario_solver_deltas_sum_to_session_stats(self):
        report = run_portfolio(standard_portfolio(mesh_sizes=(3,),
                                                  ring_sizes=()))
        totals = {}
        for verdict in report.verdicts:
            assert verdict.solver  # schema 2: every scenario records work
            for key, value in verdict.solver.items():
                totals[key] = totals.get(key, 0) + value
        session = report.session_stats["mesh-3x3"]
        for key in ("decisions", "conflicts", "solves"):
            assert totals[key] == session[key]


class TestReportSchema:
    """Pin the schema-4 export shape; bump the schema when changing it."""

    def test_schema_version_and_keys(self):
        report = run_portfolio(standard_portfolio(mesh_sizes=(3,),
                                                  ring_sizes=(4,)))
        payload = report.to_json_dict()
        assert payload["schema"] == 4
        assert payload["kind"] == "repro-portfolio-report"
        assert set(payload) == {"schema", "kind", "jobs", "shard",
                                "scenarios", "summary", "session_stats",
                                "cache", "recovery"}
        assert set(payload["summary"]) == {
            "scenarios", "deadlock_free", "deadlock_prone",
            "timeouts", "errors",
            "elapsed_seconds", "jobs", "cache_hits", "cache_misses"}
        for scenario in payload["scenarios"]:
            assert set(scenario) == {
                "scenario", "topology", "routing", "switching", "condition",
                "num_vcs", "status", "error", "deadlock_free", "edges",
                "new_edges", "wall_time_s", "solver", "cycle_core",
                "escape_edges", "spec", "shard"}
            assert scenario["status"] == "ok"
            assert scenario["error"] is None
            assert scenario["wall_time_s"] >= 0
            assert isinstance(scenario["solver"], dict)
            # Schema 3: the standard portfolio is spec-built, so every
            # scenario embeds its originating spec; unsharded runs mark
            # the shard as null.
            assert scenario["spec"]["kind"] in {"mesh", "ring"}
            assert scenario["shard"] is None
        assert payload["jobs"] == 1
        assert payload["shard"] is None
        assert payload["cache"].keys() == {"hits", "misses"}

    def test_store_block_is_conditional(self, tmp_path):
        """Store-attached runs add exactly one key -- ``store`` -- and
        store-less payloads keep the pinned schema-4 key set bit for bit."""
        from repro.core.store import STORE_COUNTERS

        scenarios = standard_portfolio(mesh_sizes=(3,), ring_sizes=(4,))
        plain = run_portfolio(scenarios).to_json_dict()
        stored = run_portfolio(scenarios,
                               store=str(tmp_path / "store")).to_json_dict()
        assert "store" not in plain
        assert set(stored) == set(plain) | {"store"}
        assert set(stored["store"]) \
            == {"mode", "replayed_groups", *STORE_COUNTERS}
        assert stored["store"]["mode"] == "rw"

    def test_comparable_dict_strips_the_store_block(self, tmp_path):
        scenarios = standard_portfolio(mesh_sizes=(3,), ring_sizes=())
        report = run_portfolio(scenarios, store=str(tmp_path / "store"))
        assert report.store_stats
        assert "store" not in report.comparable_dict()

    def test_schema_4_embeds_the_originating_spec(self):
        from repro.core.spec import ScenarioSpec

        report = run_portfolio(standard_portfolio(mesh_sizes=(3,),
                                                  ring_sizes=()))
        entry = report.to_json_dict()["scenarios"][0]
        spec = ScenarioSpec.from_dict(entry["spec"])
        assert spec.kind == "mesh"
        assert spec.dims == (3, 3)
        assert spec.scenario_name() == entry["scenario"]

    def test_comparable_dict_strips_only_nondeterministic_fields(self):
        report = run_portfolio(standard_portfolio(mesh_sizes=(3,),
                                                  ring_sizes=()))
        projection = report.comparable_dict()
        assert "jobs" not in projection
        assert "cache" not in projection
        assert "shard" not in projection
        assert "recovery" not in projection  # environment history
        assert "elapsed_seconds" not in projection["summary"]
        for scenario in projection["scenarios"]:
            assert "wall_time_s" not in scenario
            assert "spec" not in scenario   # construction-path metadata
            assert "shard" not in scenario  # scheduling metadata
            assert "solver" in scenario  # deterministic, stays

    def test_write_json_roundtrip(self, tmp_path):
        import json

        report = run_portfolio(standard_portfolio(mesh_sizes=(),
                                                  ring_sizes=(4,)))
        path = tmp_path / "portfolio.json"
        report.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == 4
        assert payload["summary"]["scenarios"] == len(payload["scenarios"])


def _full_space_successor_sets(space_a, space_b):
    """BFS the full reachable space, comparing successor sets pointwise."""
    start = space_a.encode(space_a.initial_configuration)
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        fast = sorted(space_a.successors(state))
        slow = sorted(space_b.generic_successors(state))
        assert fast == slow, f"successor mismatch at {state}"
        for successor in fast:
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return len(seen)


class TestFastWormholeStepper:
    def test_ring_space_matches_generic(self):
        instance = build_clockwise_ring_instance(4)
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=3)
                   for i in range(4)]
        fast = ConfigurationSpace(instance, travels, capacity=1)
        slow = ConfigurationSpace(instance, travels, capacity=1,
                                  use_fast_stepper=False)
        assert fast._fast_stepper is not None
        assert slow._fast_stepper is None
        assert _full_space_successor_sets(fast, slow) > 1000

    @given(st.data())
    @settings(max_examples=12, deadline=None)
    def test_random_mesh_workloads_match_generic(self, data):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        nodes = [(x, y) for x in range(2) for y in range(2)]
        travels = []
        for _ in range(data.draw(st.integers(1, 3))):
            source = data.draw(st.sampled_from(nodes))
            destination = data.draw(st.sampled_from(
                [n for n in nodes if n != source]))
            travels.append(instance.make_travel(
                source, destination,
                num_flits=data.draw(st.integers(1, 3))))
        fast = ConfigurationSpace(instance, travels, capacity=1)
        slow = ConfigurationSpace(instance, travels, capacity=1,
                                  use_fast_stepper=False)
        _full_space_successor_sets(fast, slow)

    def test_non_wormhole_policies_use_generic_path(self):
        for switching in (StoreAndForwardSwitching(),
                          VirtualCutThroughSwitching()):
            instance = build_hermes_instance(2, 2, switching=switching)
            travels = [instance.make_travel((0, 0), (1, 1), num_flits=2)]
            space = ConfigurationSpace(instance, travels, capacity=1)
            assert space._fast_stepper is None
            with pytest.raises(TypeError):
                ConfigurationSpace(instance, travels, capacity=1,
                                   use_fast_stepper=True)

    def test_explore_still_finds_the_ring_deadlock(self):
        instance = build_clockwise_ring_instance(4)
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=3)
                   for i in range(4)]
        result = explore_configuration_space(instance, travels, capacity=1)
        assert result.deadlock_found
        assert result.complete

    def test_explore_hermes_has_no_deadlock(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=2),
                   instance.make_travel((1, 1), (0, 0), num_flits=2)]
        result = explore_configuration_space(instance, travels, capacity=1)
        assert result.complete
        assert not result.deadlock_found
