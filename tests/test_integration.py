"""End-to-end integration tests: Theorem 1 and Theorem 2 across designs.

These tests validate the paper's central claims by cross-checking the three
independent artefacts the library provides for each design:

* the dependency-graph condition (obligation (C-3), Theorem 1);
* exhaustive state-space exploration of small workloads (every interleaving);
* concrete GeNoC simulation runs (Theorem 2 / evacuation).
"""

import pytest

from repro.checking.bmc import explore_configuration_space
from repro.checking.graphs import find_cycle_dfs
from repro.core import (
    check_c3_routing_induced,
    routing_dependency_graph,
    verify_witness_roundtrip,
)
from repro.core.pipeline import verify_instance
from repro.hermes import build_hermes_instance
from repro.hermes.ports import witness_destination
from repro.network.mesh import Mesh2D
from repro.ringnoc import (
    build_chain_ring_instance,
    build_clockwise_ring_instance,
    ring_witness_destination,
)
from repro.routing.adaptive import ZigZagRouting
from repro.routing.turn_model import WestFirstRouting
from repro.routing.yx import YXRouting
from repro.simulation import Simulator, uniform_random_traffic
from repro.simulation.workloads import standard_suite
from repro.switching.wormhole import WormholeSwitching


class TestTheorem1PositiveDesigns:
    """Acyclic dependency graph ==> no reachable deadlock (any interleaving)."""

    @pytest.mark.parametrize("build", [
        lambda: build_hermes_instance(2, 2, buffer_capacity=1),
        lambda: build_chain_ring_instance(4, buffer_capacity=1),
    ])
    def test_acyclic_and_exhaustively_deadlock_free(self, build):
        instance = build()
        assert check_c3_routing_induced(instance.routing).holds
        nodes = [node.coordinates for node in instance.topology.nodes]
        travels = [instance.make_travel(nodes[i], nodes[-1 - i], num_flits=2)
                   for i in range(min(3, len(nodes) // 2 + 1))
                   if nodes[i] != nodes[-1 - i]]
        search = explore_configuration_space(instance, travels, capacity=1,
                                             max_states=300_000)
        assert search.complete
        assert not search.deadlock_found

    @pytest.mark.parametrize("routing_cls", [YXRouting, WestFirstRouting])
    def test_other_acyclic_mesh_routings_do_not_deadlock(self, routing_cls):
        mesh = Mesh2D(2, 2)
        instance = build_hermes_instance(2, 2, buffer_capacity=1,
                                         routing=routing_cls(mesh))
        assert check_c3_routing_induced(instance.routing).holds
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=2),
                   instance.make_travel((1, 1), (0, 0), num_flits=2),
                   instance.make_travel((1, 0), (0, 1), num_flits=2)]
        search = explore_configuration_space(instance, travels, capacity=1,
                                             max_states=300_000)
        assert search.complete
        assert not search.deadlock_found


class TestTheorem1NegativeDesigns:
    """Cyclic dependency graph ==> a deadlock can be constructed AND reached."""

    def test_clockwise_ring_full_story(self):
        instance = build_clockwise_ring_instance(4)
        # (1) the condition fails,
        assert not check_c3_routing_induced(instance.routing).holds
        # (2) the cycle can be turned into a concrete deadlock and back,
        cycle = find_cycle_dfs(routing_dependency_graph(instance.routing)).cycle
        roundtrip = verify_witness_roundtrip(
            cycle, instance.routing, instance.switching,
            ring_witness_destination(instance.topology), capacity=1)
        assert roundtrip.success
        # (3) a deadlock is reachable from an empty network,
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=3)
                   for i in range(4)]
        search = explore_configuration_space(instance, travels, capacity=1)
        assert search.deadlock_found
        # (4) and the deterministic GeNoC run also ends in deadlock.
        result = instance.run(travels, capacity=1)
        assert result.deadlocked

    def test_zigzag_mesh_witness(self):
        mesh = Mesh2D(3, 3)
        routing = ZigZagRouting(mesh)
        assert not check_c3_routing_induced(routing).holds
        cycle = find_cycle_dfs(routing_dependency_graph(routing)).cycle
        roundtrip = verify_witness_roundtrip(
            cycle, routing, WormholeSwitching(),
            lambda s, t: witness_destination(s, t, mesh), capacity=1)
        assert roundtrip.success


class TestTheorem2Evacuation:
    @pytest.mark.parametrize("width,height,capacity", [(2, 2, 1), (3, 3, 2),
                                                       (4, 4, 2), (4, 2, 1)])
    def test_standard_suite_evacuates(self, width, height, capacity):
        instance = build_hermes_instance(width, height,
                                         buffer_capacity=capacity)
        simulator = Simulator(instance)
        for workload in standard_suite(instance, num_flits=3, seed=1):
            result = simulator.run(workload)
            assert result.genoc_result.evacuated, workload.name
            assert result.correctness_ok
            assert result.evacuation_ok

    def test_heavy_random_load_evacuates(self):
        instance = build_hermes_instance(4, 4, buffer_capacity=2)
        workload = uniform_random_traffic(instance, num_messages=64,
                                          num_flits=5, seed=11)
        result = Simulator(instance).run(workload)
        assert result.genoc_result.evacuated
        assert result.metrics.messages == 64

    def test_measure_reaches_zero_exactly_at_evacuation(self):
        instance = build_hermes_instance(3, 3)
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=4),
                   instance.make_travel((2, 2), (0, 0), num_flits=4)]
        result = instance.run(travels)
        assert result.measures[-1] == 0
        assert all(measure > 0 for measure in result.measures[:-1])


class TestFullPipelineAcrossSizes:
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_hermes_verifies_at_every_size(self, size):
        instance = build_hermes_instance(size, size)
        workloads = [[instance.make_travel((0, 0), (size - 1, size - 1),
                                           num_flits=3),
                      instance.make_travel((size - 1, 0), (0, size - 1),
                                           num_flits=2)]]
        report = verify_instance(instance, workloads)
        assert report.verified, report.summary()

    def test_checks_scale_with_mesh_size(self):
        small = verify_instance(build_hermes_instance(2, 2),
                                run_workloads=False)
        large = verify_instance(build_hermes_instance(4, 4),
                                run_workloads=False)
        assert large.obligations["C-1"].checks > small.obligations["C-1"].checks
        assert large.obligations["C-3"].checks > small.obligations["C-3"].checks
