"""Tests for the port algebra (repro.network.port)."""

import pytest
from hypothesis import given, strategies as st

from repro.network.port import (
    CARDINALS,
    Direction,
    OFFSETS,
    Port,
    PortName,
    dir_of,
    neighbour_node,
    next_in,
    opposite,
    parse_port,
    port_name,
    trans,
    x_of,
    y_of,
)


def port_strategy(max_coord=10):
    return st.builds(
        Port,
        x=st.integers(min_value=0, max_value=max_coord),
        y=st.integers(min_value=0, max_value=max_coord),
        name=st.sampled_from(list(PortName)),
        direction=st.sampled_from(list(Direction)),
    )


class TestPortBasics:
    def test_port_is_hashable_and_equal_by_value(self):
        a = Port(1, 2, PortName.EAST, Direction.IN)
        b = Port(1, 2, PortName.EAST, Direction.IN)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_port_inequality(self):
        a = Port(1, 2, PortName.EAST, Direction.IN)
        assert a != Port(1, 2, PortName.EAST, Direction.OUT)
        assert a != Port(1, 2, PortName.WEST, Direction.IN)
        assert a != Port(2, 2, PortName.EAST, Direction.IN)

    def test_node_property(self):
        assert Port(3, 4, PortName.LOCAL, Direction.IN).node == (3, 4)

    def test_direction_predicates(self):
        assert Port(0, 0, PortName.EAST, Direction.IN).is_input
        assert not Port(0, 0, PortName.EAST, Direction.IN).is_output
        assert Port(0, 0, PortName.EAST, Direction.OUT).is_output

    def test_local_predicates(self):
        assert Port(0, 0, PortName.LOCAL, Direction.IN).is_local
        assert not Port(0, 0, PortName.LOCAL, Direction.IN).is_cardinal
        assert Port(0, 0, PortName.NORTH, Direction.IN).is_cardinal

    def test_str_form(self):
        assert str(Port(0, 0, PortName.EAST, Direction.OUT)) == "<0,0,E,OUT>"

    def test_with_name(self):
        port = Port(2, 3, PortName.EAST, Direction.IN)
        other = port.with_name(PortName.LOCAL, Direction.OUT)
        assert other == Port(2, 3, PortName.LOCAL, Direction.OUT)

    def test_ordering_is_total(self):
        ports = [Port(1, 0, PortName.EAST, Direction.IN),
                 Port(0, 1, PortName.WEST, Direction.OUT),
                 Port(0, 0, PortName.LOCAL, Direction.IN)]
        assert sorted(ports) == sorted(ports, key=lambda p: (p.x, p.y, p.name,
                                                             p.direction))

    def test_paper_accessors(self):
        port = Port(5, 7, PortName.SOUTH, Direction.OUT)
        assert x_of(port) == 5
        assert y_of(port) == 7
        assert port_name(port) is PortName.SOUTH
        assert dir_of(port) is Direction.OUT


class TestTrans:
    def test_trans_keeps_node(self):
        port = Port(4, 5, PortName.EAST, Direction.IN)
        result = trans(port, PortName.NORTH, Direction.OUT)
        assert result.node == (4, 5)
        assert result.name is PortName.NORTH
        assert result.direction is Direction.OUT

    @given(port_strategy(), st.sampled_from(list(PortName)),
           st.sampled_from(list(Direction)))
    def test_trans_is_projection(self, port, name, direction):
        result = trans(port, name, direction)
        assert result.node == port.node
        # Applying trans twice with the same arguments is idempotent.
        assert trans(result, name, direction) == result


class TestOpposite:
    @pytest.mark.parametrize("name,expected", [
        (PortName.EAST, PortName.WEST),
        (PortName.WEST, PortName.EAST),
        (PortName.NORTH, PortName.SOUTH),
        (PortName.SOUTH, PortName.NORTH),
    ])
    def test_opposites(self, name, expected):
        assert opposite(name) is expected

    def test_opposite_of_local_raises(self):
        with pytest.raises(ValueError):
            opposite(PortName.LOCAL)

    @pytest.mark.parametrize("name", list(CARDINALS))
    def test_opposite_is_involution(self, name):
        assert opposite(opposite(name)) is name


class TestNextIn:
    def test_paper_example(self):
        # next_in(<0,0,E,OUT>) = <1,0,W,IN>  (paper Section V.1)
        assert next_in(Port(0, 0, PortName.EAST, Direction.OUT)) == \
            Port(1, 0, PortName.WEST, Direction.IN)

    def test_north_decreases_y(self):
        assert next_in(Port(2, 2, PortName.NORTH, Direction.OUT)) == \
            Port(2, 1, PortName.SOUTH, Direction.IN)

    def test_south_increases_y(self):
        assert next_in(Port(2, 2, PortName.SOUTH, Direction.OUT)) == \
            Port(2, 3, PortName.NORTH, Direction.IN)

    def test_west_decreases_x(self):
        assert next_in(Port(2, 2, PortName.WEST, Direction.OUT)) == \
            Port(1, 2, PortName.EAST, Direction.IN)

    def test_next_in_requires_out_port(self):
        with pytest.raises(ValueError):
            next_in(Port(0, 0, PortName.EAST, Direction.IN))

    def test_next_in_of_local_out_raises(self):
        with pytest.raises(ValueError):
            next_in(Port(0, 0, PortName.LOCAL, Direction.OUT))

    @given(st.integers(0, 20), st.integers(0, 20),
           st.sampled_from(list(CARDINALS)))
    def test_next_in_lands_on_adjacent_node(self, x, y, name):
        port = Port(x, y, name, Direction.OUT)
        target = next_in(port)
        assert abs(target.x - x) + abs(target.y - y) == 1
        assert target.direction is Direction.IN
        assert target.name is opposite(name)

    @given(st.integers(0, 20), st.integers(0, 20),
           st.sampled_from(list(CARDINALS)))
    def test_next_in_matches_offsets(self, x, y, name):
        port = Port(x, y, name, Direction.OUT)
        dx, dy = OFFSETS[name]
        assert next_in(port).node == (x + dx, y + dy)
        assert neighbour_node(port) == (x + dx, y + dy)

    def test_neighbour_node_of_local_is_self(self):
        assert neighbour_node(Port(1, 1, PortName.LOCAL, Direction.OUT)) == (1, 1)


class TestParsePort:
    @given(port_strategy())
    def test_parse_roundtrip(self, port):
        assert parse_port(str(port)) == port

    def test_parse_with_spaces(self):
        assert parse_port(" <1, 2, E, IN> ") == Port(1, 2, PortName.EAST,
                                                     Direction.IN)

    @pytest.mark.parametrize("text", ["", "1,2,E,IN", "<1,2,E>", "<a,b,E,IN>"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_port(text)
