"""Tests for the deadlock predicate Ω and the deadlock analysis."""

import pytest

from repro.core.deadlock import (
    analyse_deadlock,
    count_blocked_messages,
    is_deadlock,
)
from repro.core.dependency import routing_dependency_graph
from repro.core.witness import cycle_to_deadlock_configuration
from repro.checking.graphs import find_cycle_dfs
from repro.hermes import build_hermes_instance
from repro.ringnoc import build_clockwise_ring_instance, ring_witness_destination
from repro.switching.wormhole import WormholeSwitching


@pytest.fixture
def hermes():
    return build_hermes_instance(3, 3, buffer_capacity=1)


@pytest.fixture
def ring():
    return build_clockwise_ring_instance(4)


def ring_deadlock_configuration(ring):
    graph = routing_dependency_graph(ring.routing)
    cycle = find_cycle_dfs(graph).cycle
    witness = cycle_to_deadlock_configuration(
        cycle, ring.routing, ring_witness_destination(ring.topology),
        capacity=1)
    return witness


class TestOmega:
    def test_empty_configuration_is_not_a_deadlock(self, hermes):
        config = hermes.initial_configuration([])
        assert not is_deadlock(config, hermes.switching)

    def test_fresh_workload_is_not_a_deadlock(self, hermes):
        travels = [hermes.make_travel((0, 0), (2, 2), num_flits=2)]
        config = hermes.routing.route_configuration(
            hermes.initial_configuration(travels))
        assert not is_deadlock(config, hermes.switching)

    def test_constructed_ring_deadlock_is_recognised(self, ring):
        witness = ring_deadlock_configuration(ring)
        assert is_deadlock(witness.configuration, ring.switching)

    def test_xy_simulation_never_reaches_deadlock(self, hermes):
        travels = [hermes.make_travel((x, y), (2 - x, 2 - y), num_flits=3)
                   for x in range(3) for y in range(3) if (x, y) != (1, 1)]
        config = hermes.routing.route_configuration(
            hermes.initial_configuration(travels))
        switching = hermes.switching
        steps = 0
        while config.travels and steps < 1000:
            assert not is_deadlock(config, switching)
            config = switching.step(config)
            steps += 1
        assert not config.travels


class TestDeadlockAnalysis:
    def test_analysis_of_non_deadlock_is_trivial(self, hermes):
        travels = [hermes.make_travel((0, 0), (1, 1), num_flits=1)]
        config = hermes.routing.route_configuration(
            hermes.initial_configuration(travels))
        analysis = analyse_deadlock(config, hermes.switching)
        assert not analysis.is_deadlock
        assert analysis.cycle is None
        assert analysis.blocked == []

    def test_analysis_extracts_cycle_from_ring_deadlock(self, ring):
        witness = ring_deadlock_configuration(ring)
        analysis = analyse_deadlock(witness.configuration, ring.switching)
        assert analysis.is_deadlock
        assert analysis.has_cycle
        # The recovered cycle consists of unavailable ports.
        unavailable = set(analysis.unavailable_ports)
        assert all(port in unavailable for port in analysis.cycle)

    def test_blocked_messages_point_to_unavailable_ports(self, ring):
        witness = ring_deadlock_configuration(ring)
        analysis = analyse_deadlock(witness.configuration, ring.switching)
        unavailable = set(analysis.unavailable_ports)
        assert analysis.blocked
        for blocked in analysis.blocked:
            assert blocked.wanted in unavailable

    def test_wait_edges_form_the_knot(self, ring):
        witness = ring_deadlock_configuration(ring)
        analysis = analyse_deadlock(witness.configuration, ring.switching)
        assert len(analysis.wait_edges) == len(witness.cycle)

    def test_cycle_is_closed_under_wait_successor(self, ring):
        witness = ring_deadlock_configuration(ring)
        analysis = analyse_deadlock(witness.configuration, ring.switching)
        successor = dict(analysis.wait_edges)
        cycle = analysis.cycle
        for index, port in enumerate(cycle):
            assert successor[port] == cycle[(index + 1) % len(cycle)]


class TestBlockedCount:
    def test_counts_zero_for_empty_network(self, hermes):
        travels = [hermes.make_travel((0, 0), (2, 2), num_flits=2)]
        config = hermes.routing.route_configuration(
            hermes.initial_configuration(travels))
        assert count_blocked_messages(config, hermes.switching) == 0

    def test_counts_all_messages_in_a_deadlock(self, ring):
        witness = ring_deadlock_configuration(ring)
        blocked = count_blocked_messages(witness.configuration, ring.switching)
        assert blocked == len(witness.travels)
