"""Tests for the ring instantiation and the Table-I-style effort reporting."""

import pytest

from repro.core import check_c3_routing_induced
from repro.core.pipeline import verify_instance
from repro.core.theorems import check_deadlock_freedom
from repro.reporting import (
    PAPER_TABLE_I,
    build_effort_table,
    format_table,
    rows_to_markdown,
)
from repro.reporting.effort import COMPONENT_MODULES, EffortRow, EffortTable
from repro.reporting.tables import dicts_to_rows
from repro.ringnoc import (
    ChainRingDependencySpec,
    build_chain_ring_instance,
    build_clockwise_ring_instance,
)
from repro.network.ring import Ring


class TestChainRingInstance:
    def test_obligations_and_theorems_hold(self):
        instance = build_chain_ring_instance(5)
        workloads = [[instance.make_travel((0, 0), (4, 0), num_flits=3),
                      instance.make_travel((4, 0), (0, 0), num_flits=3),
                      instance.make_travel((2, 0), (0, 0), num_flits=2)]]
        report = verify_instance(instance, workloads)
        assert report.verified

    def test_dependency_spec_excludes_wrap_links(self):
        ring = Ring(4)
        spec = ChainRingDependencySpec(ring)
        from repro.network.port import Direction, Port, PortName

        wrap_east = Port(3, 0, PortName.EAST, Direction.OUT)
        wrap_west = Port(0, 0, PortName.WEST, Direction.OUT)
        assert spec.edges_from(wrap_east) == set()
        assert spec.edges_from(wrap_west) == set()

    def test_dependency_spec_is_acyclic(self):
        instance = build_chain_ring_instance(6)
        theorem = check_deadlock_freedom(instance)
        assert theorem.holds

    def test_simulation_evacuates(self):
        instance = build_chain_ring_instance(6)
        travels = [instance.make_travel((i, 0), (5 - i, 0), num_flits=2)
                   for i in range(6) if i != 5 - i]
        result = instance.run(travels)
        assert result.evacuated


class TestClockwiseRingInstance:
    def test_c3_fails_on_induced_graph(self):
        instance = build_clockwise_ring_instance(4)
        assert not check_c3_routing_induced(instance.routing).holds

    def test_workload_deadlocks_in_simulation(self):
        instance = build_clockwise_ring_instance(4)
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=4)
                   for i in range(4)]
        result = instance.run(travels, capacity=1)
        assert result.deadlocked
        assert not result.evacuated

    def test_light_workload_still_evacuates(self):
        # A single message cannot deadlock even on the cyclic design.
        instance = build_clockwise_ring_instance(4)
        result = instance.run([instance.make_travel((0, 0), (2, 0),
                                                    num_flits=3)])
        assert result.evacuated


class TestEffortTable:
    @pytest.fixture(scope="class")
    def table(self):
        return build_effort_table(2, 2)

    def test_rows_cover_every_component(self, table):
        components = {row.component for row in table.rows}
        assert components == set(COMPONENT_MODULES)

    def test_rows_have_positive_lines_and_functions(self, table):
        for row in table.rows:
            assert row.lines > 0
            assert row.functions > 0

    def test_instance_specific_rows_have_checks(self, table):
        for component in ["(C-1)xy", "(C-2)xy", "(C-3)xy", "Iid, (C-4)",
                          "Swh, (C-5)", "Rxy", "CorrThm", "Dead/EvacThm"]:
            assert table.row(component).checks > 0, component

    def test_overall_row_sums(self, table):
        overall = table.overall()
        assert overall.lines == sum(row.lines for row in table.rows)
        assert overall.checks == sum(row.checks for row in table.rows)
        assert overall.paper_lines == PAPER_TABLE_I["Overall"][0]

    def test_formatted_table_contains_paper_columns(self, table):
        text = table.formatted()
        assert "Paper Thms" in text
        assert "Overall" in text
        assert "(C-3)xy" in text

    def test_row_lookup_raises_for_unknown(self, table):
        with pytest.raises(KeyError):
            table.row("does-not-exist")

    def test_paper_table_shape(self):
        assert PAPER_TABLE_I["Overall"][1] == 1008
        assert PAPER_TABLE_I["(C-3)xy"][4] == 4
        assert PAPER_TABLE_I["Generic Defs"][4] is None


class TestTableFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_markdown_table(self):
        text = rows_to_markdown(["x", "y"], [[1, 2]])
        assert text.splitlines()[0] == "| x | y |"
        assert "| 1 | 2 |" in text

    def test_dicts_to_rows(self):
        rows = dicts_to_rows([{"a": 1, "b": 2}, {"a": 3}], ["a", "b"])
        assert rows == [[1, 2], [3, ""]]

    def test_effort_row_cells_handle_missing_paper_values(self):
        row = EffortRow(component="X", lines=1, checks=2, functions=3,
                        cpu_seconds=0.5)
        cells = row.as_cells()
        assert "N/A" in cells
