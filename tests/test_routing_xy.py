"""Tests for the paper's XY routing function (and YX, its mirror)."""

import pytest

from repro.core.errors import RoutingError
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.routing.xy import XYRouting
from repro.routing.yx import YXRouting


@pytest.fixture
def mesh():
    return Mesh2D(3, 3)


@pytest.fixture
def rxy(mesh):
    return XYRouting(mesh)


def local_in(x, y):
    return Port(x, y, PortName.LOCAL, Direction.IN)


def local_out(x, y):
    return Port(x, y, PortName.LOCAL, Direction.OUT)


class TestRxyCases:
    """The case analysis of the paper's Rxy definition (Section V.3)."""

    def test_out_port_goes_to_next_in(self, rxy):
        current = Port(0, 0, PortName.EAST, Direction.OUT)
        assert rxy.next_hop(current, local_out(2, 2)) == \
            Port(1, 0, PortName.WEST, Direction.IN)

    def test_west_when_destination_is_west(self, rxy):
        assert rxy.next_hop(local_in(2, 1), local_out(0, 1)) == \
            Port(2, 1, PortName.WEST, Direction.OUT)

    def test_east_when_destination_is_east(self, rxy):
        assert rxy.next_hop(local_in(0, 1), local_out(2, 1)) == \
            Port(0, 1, PortName.EAST, Direction.OUT)

    def test_north_when_same_column_and_destination_north(self, rxy):
        assert rxy.next_hop(local_in(1, 2), local_out(1, 0)) == \
            Port(1, 2, PortName.NORTH, Direction.OUT)

    def test_south_when_same_column_and_destination_south(self, rxy):
        assert rxy.next_hop(local_in(1, 0), local_out(1, 2)) == \
            Port(1, 0, PortName.SOUTH, Direction.OUT)

    def test_local_delivery_when_at_destination_node(self, rxy):
        assert rxy.next_hop(Port(1, 1, PortName.WEST, Direction.IN),
                            local_out(1, 1)) == local_out(1, 1)

    def test_x_corrected_before_y(self, rxy):
        # Destination is both east and south: XY goes east first.
        assert rxy.next_hop(local_in(0, 0), local_out(2, 2)) == \
            Port(0, 0, PortName.EAST, Direction.OUT)

    def test_routing_from_local_out_raises(self, rxy):
        with pytest.raises(RoutingError):
            rxy.next_hop(local_out(0, 0), local_out(1, 1))

    def test_invalid_destination_raises(self, rxy):
        with pytest.raises(RoutingError):
            rxy.next_hop(local_in(0, 0), Port(1, 1, PortName.EAST,
                                              Direction.IN))
        with pytest.raises(RoutingError):
            rxy.next_hop(local_in(0, 0), local_out(9, 9))

    def test_no_hop_from_destination_itself(self, rxy):
        assert rxy.next_hops(local_out(1, 1), local_out(1, 1)) == []

    def test_determinism(self, rxy):
        assert rxy.is_deterministic
        hops = rxy.next_hops(local_in(0, 0), local_out(2, 2))
        assert len(hops) == 1


class TestRxyRoutes:
    def test_route_structure(self, rxy):
        route = rxy.compute_route(local_in(0, 0), local_out(2, 1))
        assert route[0] == local_in(0, 0)
        assert route[-1] == local_out(2, 1)
        # in-port and out-port alternate within/between nodes.
        assert len(route) == 2 + 2 * 3  # L-in, 2 east hops, 1 south hop, L-out

    def test_route_to_same_node(self, rxy):
        route = rxy.compute_route(local_in(1, 1), local_out(1, 1))
        assert route == [local_in(1, 1), local_out(1, 1)]

    def test_route_is_minimal(self, rxy, mesh):
        for source in mesh.coordinates():
            for target in mesh.coordinates():
                route = rxy.compute_route(local_in(*source), local_out(*target))
                hops_between_nodes = sum(
                    1 for a, b in zip(route, route[1:]) if a.node != b.node)
                assert hops_between_nodes == mesh.manhattan_distance(source,
                                                                     target)

    def test_route_ports_exist(self, rxy, mesh):
        route = rxy.compute_route(local_in(0, 2), local_out(2, 0))
        assert all(mesh.has_port(port) for port in route)

    def test_route_x_before_y(self, rxy):
        route = rxy.compute_route(local_in(0, 0), local_out(2, 2))
        columns = [port.x for port in route]
        # Once the column stops changing it never changes again.
        final_column_reached = False
        for a, b in zip(columns, columns[1:]):
            if a == b == 2:
                final_column_reached = True
            if final_column_reached:
                assert b == 2

    def test_destinations_are_local_out_ports(self, rxy, mesh):
        destinations = rxy.destinations()
        assert len(destinations) == mesh.node_count
        assert all(d.is_local and d.is_output for d in destinations)


class TestRxyReachability:
    """The closed-form s R d predicate."""

    def test_local_in_reaches_everything(self, rxy, mesh):
        for target in mesh.coordinates():
            assert rxy.reachable(local_in(0, 0), local_out(*target))

    def test_local_out_reaches_only_itself(self, rxy):
        assert rxy.reachable(local_out(1, 1), local_out(1, 1))
        assert not rxy.reachable(local_out(1, 1), local_out(0, 0))

    def test_west_in_port_requires_destination_not_west(self, rxy):
        port = Port(1, 1, PortName.WEST, Direction.IN)
        assert rxy.reachable(port, local_out(1, 1))
        assert rxy.reachable(port, local_out(2, 0))
        assert not rxy.reachable(port, local_out(0, 1))

    def test_east_in_port_requires_destination_not_east(self, rxy):
        port = Port(1, 1, PortName.EAST, Direction.IN)
        assert rxy.reachable(port, local_out(0, 2))
        assert not rxy.reachable(port, local_out(2, 1))

    def test_vertical_ports_require_destination_in_same_column(self, rxy):
        north_in = Port(1, 1, PortName.NORTH, Direction.IN)
        assert rxy.reachable(north_in, local_out(1, 2))
        assert rxy.reachable(north_in, local_out(1, 1))
        assert not rxy.reachable(north_in, local_out(1, 0))
        assert not rxy.reachable(north_in, local_out(0, 2))

    def test_out_ports_strictness(self, rxy):
        east_out = Port(1, 1, PortName.EAST, Direction.OUT)
        assert rxy.reachable(east_out, local_out(2, 0))
        assert not rxy.reachable(east_out, local_out(1, 1))
        north_out = Port(1, 1, PortName.NORTH, Direction.OUT)
        assert rxy.reachable(north_out, local_out(1, 0))
        assert not rxy.reachable(north_out, local_out(1, 2))

    def test_non_destination_is_unreachable(self, rxy):
        assert not rxy.reachable(local_in(0, 0),
                                 Port(1, 1, PortName.EAST, Direction.OUT))

    def test_port_outside_mesh_unreachable(self, rxy):
        assert not rxy.reachable(Port(9, 9, PortName.LOCAL, Direction.IN),
                                 local_out(1, 1))


class TestYXRouting:
    def test_y_corrected_before_x(self, mesh):
        ryx = YXRouting(mesh)
        assert ryx.next_hop(local_in(0, 0), local_out(2, 2)) == \
            Port(0, 0, PortName.SOUTH, Direction.OUT)

    def test_routes_are_minimal(self, mesh):
        ryx = YXRouting(mesh)
        route = ryx.compute_route(local_in(0, 0), local_out(2, 2))
        hops = sum(1 for a, b in zip(route, route[1:]) if a.node != b.node)
        assert hops == 4

    def test_reachability_mirrors_xy(self, mesh):
        ryx = YXRouting(mesh)
        north_in = Port(1, 1, PortName.NORTH, Direction.IN)
        # Under YX a packet at a North in-port is still correcting y, so any
        # column is possible but it must be heading South.
        assert ryx.reachable(north_in, local_out(0, 2))
        assert not ryx.reachable(north_in, local_out(0, 0))
        west_in = Port(1, 1, PortName.WEST, Direction.IN)
        assert ryx.reachable(west_in, local_out(2, 1))
        assert not ryx.reachable(west_in, local_out(2, 0))

    def test_names(self, mesh):
        assert XYRouting(mesh).name() == "Rxy"
        assert YXRouting(mesh).name() == "Ryx"

    def test_invalid_order_rejected(self, mesh):
        from repro.routing.dimension_order import DimensionOrderRouting

        with pytest.raises(ValueError):
            DimensionOrderRouting(mesh, order="zz")
