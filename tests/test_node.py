"""Tests for processing nodes."""

import pytest

from repro.network.node import Node, node_index
from repro.network.port import Direction, Port, PortName


class TestNode:
    def test_full_node_has_ten_ports(self):
        node = Node(1, 1)
        assert len(node.ports()) == 10
        assert len(node.in_ports()) == 5
        assert len(node.out_ports()) == 5

    def test_corner_node_has_fewer_ports(self):
        node = Node(0, 0, present_names=(PortName.EAST, PortName.SOUTH,
                                         PortName.LOCAL))
        assert len(node.ports()) == 6
        assert node.degree == 2

    def test_local_ports(self):
        node = Node(2, 3)
        assert node.local_in == Port(2, 3, PortName.LOCAL, Direction.IN)
        assert node.local_out == Port(2, 3, PortName.LOCAL, Direction.OUT)

    def test_port_lookup(self):
        node = Node(2, 3)
        assert node.port(PortName.EAST, Direction.OUT) == \
            Port(2, 3, PortName.EAST, Direction.OUT)

    def test_port_lookup_missing_name_raises(self):
        node = Node(0, 0, present_names=(PortName.EAST, PortName.LOCAL))
        with pytest.raises(KeyError):
            node.port(PortName.WEST, Direction.IN)

    def test_cardinal_names_excludes_local(self):
        node = Node(0, 0)
        assert PortName.LOCAL not in node.cardinal_names()
        assert len(node.cardinal_names()) == 4

    def test_coordinates(self):
        assert Node(4, 5).coordinates == (4, 5)

    def test_ports_are_distinct(self):
        node = Node(1, 1)
        assert len(set(node.ports())) == len(node.ports())

    def test_str(self):
        assert "1,2" in str(Node(1, 2))


class TestNodeIndex:
    def test_index_by_coordinates(self):
        nodes = [Node(0, 0), Node(1, 0)]
        index = node_index(nodes)
        assert index[(1, 0)] is nodes[1]

    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(ValueError):
            node_index([Node(0, 0), Node(0, 0)])
