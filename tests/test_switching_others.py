"""Tests for store-and-forward and virtual cut-through switching."""

import pytest

from repro.core.deadlock import is_deadlock
from repro.core.measure import flit_hop_measure
from repro.hermes import build_hermes_instance
from repro.switching.store_and_forward import StoreAndForwardSwitching
from repro.switching.virtual_cut_through import VirtualCutThroughSwitching
from repro.switching.wormhole import WormholeSwitching


def make_instance(switching, capacity=4, size=3):
    return build_hermes_instance(size, size, buffer_capacity=capacity,
                                 switching=switching)


def routed_config(instance, travels, capacity=None):
    config = instance.initial_configuration(travels, capacity=capacity)
    return instance.routing.route_configuration(config)


class TestStoreAndForward:
    def test_packet_moves_as_a_unit(self):
        instance = make_instance(StoreAndForwardSwitching(), capacity=4)
        travel = instance.make_travel((0, 0), (2, 0), num_flits=3)
        config = routed_config(instance, [travel])
        switching = instance.switching
        config = switching.step(config)
        record = config.progress[travel.travel_id]
        assert len(set(record.positions)) == 1  # all flits at one place

    def test_message_evacuates(self):
        instance = make_instance(StoreAndForwardSwitching(), capacity=4)
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=3),
                   instance.make_travel((2, 2), (0, 0), num_flits=4)]
        result = instance.run(travels)
        assert result.evacuated
        assert len(result.final.arrived) == 2

    def test_measure_strictly_decreases(self):
        instance = make_instance(StoreAndForwardSwitching(), capacity=4)
        travel = instance.make_travel((0, 0), (2, 2), num_flits=3)
        config = routed_config(instance, [travel])
        switching = instance.switching
        previous = flit_hop_measure(config)
        while config.travels:
            config = switching.step(config)
            current = flit_hop_measure(config)
            assert current < previous
            previous = current

    def test_packet_blocked_when_buffer_too_small_for_it(self):
        # With 2-flit buffers a 3-flit packet can never be accepted anywhere:
        # the configuration is immediately a deadlock (a modelling error the
        # policy surfaces as Ω).
        instance = make_instance(StoreAndForwardSwitching(), capacity=2)
        travel = instance.make_travel((0, 0), (2, 0), num_flits=3)
        config = routed_config(instance, [travel])
        assert is_deadlock(config, instance.switching)

    def test_required_capacity(self):
        instance = make_instance(StoreAndForwardSwitching(), capacity=4)
        travels = [instance.make_travel((0, 0), (1, 0), num_flits=5)]
        config = routed_config(instance, travels)
        assert instance.switching.required_capacity(config) == 5

    def test_no_deadlock_under_contention(self):
        instance = make_instance(StoreAndForwardSwitching(), capacity=3)
        travels = [instance.make_travel((x, y), (2 - x, 2 - y), num_flits=3)
                   for x in range(3) for y in range(3) if (x, y) != (1, 1)]
        result = instance.run(travels, max_steps=2000)
        assert result.evacuated

    def test_single_travel_stepper_interface(self):
        instance = make_instance(StoreAndForwardSwitching(), capacity=4)
        travel = instance.make_travel((0, 0), (2, 0), num_flits=2)
        config = routed_config(instance, [travel])
        successor = instance.switching.advance_travel(config, travel.travel_id)
        assert successor is not None
        assert successor.progress[travel.travel_id].positions == [0, 0]


class TestVirtualCutThrough:
    def test_message_evacuates(self):
        instance = make_instance(VirtualCutThroughSwitching(), capacity=2)
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=2),
                   instance.make_travel((2, 0), (0, 2), num_flits=2)]
        result = instance.run(travels)
        assert result.evacuated

    def test_no_deadlock_under_contention(self):
        instance = make_instance(VirtualCutThroughSwitching(), capacity=2)
        travels = [instance.make_travel((x, y), (2 - x, 2 - y), num_flits=2)
                   for x in range(3) for y in range(3) if (x, y) != (1, 1)]
        result = instance.run(travels, max_steps=2000)
        assert result.evacuated

    def test_header_admission_stricter_than_wormhole(self):
        # A 2-flit packet wants to enter a port with one free slot that is
        # owned by nobody: wormhole admits the header, VCT does not.
        instance_wh = make_instance(WormholeSwitching(), capacity=1)
        instance_vct = make_instance(VirtualCutThroughSwitching(), capacity=1)
        for instance, expected_moves in ((instance_wh, True),
                                         (instance_vct, True)):
            travel = instance.make_travel((0, 0), (2, 0), num_flits=2)
            config = routed_config(instance, [travel], capacity=1)
            moved = instance.switching.advance_travel(config, travel.travel_id)
            # Both still admit injection into the empty network; the
            # difference shows mid-route (exercised by the next test).
            assert (moved is not None) == expected_moves

    def test_vct_name(self):
        assert VirtualCutThroughSwitching().name() == "Svct"

    def test_saf_name(self):
        assert StoreAndForwardSwitching().name() == "Ssaf"

    def test_wormhole_name(self):
        assert WormholeSwitching().name() == "Swh"


class TestCrossPolicyAgreement:
    """All policies agree on what eventually arrives (for XY routing)."""

    @pytest.mark.parametrize("switching,capacity", [
        (WormholeSwitching(), 2),
        (VirtualCutThroughSwitching(), 3),
        (StoreAndForwardSwitching(), 4),
    ])
    def test_same_arrivals(self, switching, capacity):
        instance = make_instance(switching, capacity=capacity)
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=3),
                   instance.make_travel((2, 2), (0, 0), num_flits=3),
                   instance.make_travel((0, 2), (2, 0), num_flits=2)]
        result = instance.run(travels, max_steps=2000)
        assert result.evacuated
        assert sorted(t.travel_id for t in result.final.arrived) == \
            sorted(t.travel_id for t in travels)
