"""Tests for the perf-trajectory runner (`repro.core.bench`): report
assembly, schema validation, and the BENCH_<date>.json writer."""

import json

import pytest

from repro.core.bench import (
    BENCH_KIND,
    BENCH_SCHEMA,
    SOLVER_MICROBENCHMARKS,
    bench_report_path,
    format_bench_summary,
    run_benchmark,
    run_portfolio_bench,
    validate_bench_report,
    write_bench_report,
)


def _valid_report():
    """A structurally valid report without running any benchmark."""
    return {
        "schema": BENCH_SCHEMA,
        "kind": BENCH_KIND,
        "generated": "2026-07-30",
        "platform": {"python": "3.11.7", "machine": "x86_64",
                     "cpu_count": 4},
        "solver_microbench": {
            "random3sat-120v-480c": {"wall_time_s": 0.05},
        },
        "portfolio": {
            "profile": "tiny",
            "runs": [{
                "jobs": 1, "wall_time_s": 1.0, "scenarios": 10,
                "deadlock_free": 8, "cache_hits": 5, "cache_misses": 9,
                "session_stats": {},
                "per_scenario": [{"scenario": "mesh-3x3/Rxy/Swh",
                                  "wall_time_s": 0.1,
                                  "deadlock_free": True,
                                  "solver": {"decisions": 3}}],
            }],
            "parallel_speedup": None,
        },
    }


class TestSchemaValidation:
    def test_valid_report_passes(self):
        assert validate_bench_report(_valid_report()) == []

    @pytest.mark.parametrize("mutation, fragment", [
        (lambda r: r.update(schema=99), "schema"),
        (lambda r: r.update(kind="other"), "kind"),
        (lambda r: r.update(generated="yesterday"), "generated"),
        (lambda r: r.update(platform={}), "platform"),
        (lambda r: r.update(solver_microbench={}), "solver_microbench"),
        (lambda r: r.update(portfolio={}), "portfolio.runs"),
        (lambda r: r["portfolio"]["runs"][0].pop("wall_time_s"),
         "wall_time_s"),
        (lambda r: r["portfolio"]["runs"][0]["per_scenario"][0]
         .pop("solver"), "solver"),
        (lambda r: r["solver_microbench"].update(
            bad={"wall_time_s": -1}), "bad"),
    ])
    def test_violations_are_reported(self, mutation, fragment):
        report = _valid_report()
        mutation(report)
        errors = validate_bench_report(report)
        assert errors, f"expected a violation for {fragment}"
        assert any(fragment in error for error in errors)

    def test_write_rejects_invalid_report(self, tmp_path):
        report = _valid_report()
        report["schema"] = 99
        with pytest.raises(ValueError):
            write_bench_report(report, str(tmp_path / "bench.json"))

    def test_write_roundtrip(self, tmp_path):
        path = write_bench_report(_valid_report(),
                                  str(tmp_path / "bench.json"))
        payload = json.loads(open(path).read())
        assert payload["schema"] == BENCH_SCHEMA

    def test_bench_report_path_shape(self):
        assert bench_report_path("/x", "2026-07-30") \
            == "/x/BENCH_2026-07-30.json"


class TestRunners:
    def test_tiny_portfolio_bench_serial_vs_parallel(self):
        """End to end on the tiny profile: both job counts run, agree, and
        the recorded runs carry the full per-scenario payload."""
        section = run_portfolio_bench(profile="tiny", jobs_list=(1, 2))
        assert [run["jobs"] for run in section["runs"]] == [1, 2]
        assert section["parallel_speedup"] is not None
        for run in section["runs"]:
            assert run["scenarios"] == 10
            assert len(run["per_scenario"]) == 10
            assert all(entry["solver"] for entry in run["per_scenario"])

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ValueError):
            run_portfolio_bench(profile="galactic")

    def test_full_report_validates_and_formats(self):
        report = run_benchmark(profile="tiny", jobs_list=(1,), repeat=1)
        assert validate_bench_report(report) == []
        assert set(report["solver_microbench"]) \
            == set(SOLVER_MICROBENCHMARKS)
        summary = format_bench_summary(report)
        assert "portfolio[tiny] jobs=1" in summary

    def test_reference_speedups_are_recorded(self):
        reference = {
            "solver_microbench": {
                name: {"wall_time_s": 10.0} for name in SOLVER_MICROBENCHMARKS
            },
            "portfolio": {"serial_wall_time_s": 1000.0},
        }
        report = run_benchmark(profile="tiny", jobs_list=(1,), repeat=1,
                               reference=reference)
        speedups = report["speedup_vs_reference"]
        for name in SOLVER_MICROBENCHMARKS:
            assert speedups[name] > 1  # 10 s reference vs. < 10 s measured
        assert speedups["portfolio-vs-reference"] > 1
        assert report["reference"] is reference
