"""Tests for the perf-trajectory runner (`repro.core.bench`): report
assembly, schema validation, and the BENCH_<date>.json writer."""

import json

import pytest

from repro.core.bench import (
    BENCH_KIND,
    BENCH_SCHEMA,
    SOLVER_MICROBENCHMARKS,
    bench_report_path,
    compare_bench_reports,
    format_bench_comparison,
    format_bench_summary,
    run_benchmark,
    run_portfolio_bench,
    validate_bench_report,
    write_bench_report,
)


def _valid_report():
    """A structurally valid report without running any benchmark."""
    return {
        "schema": BENCH_SCHEMA,
        "kind": BENCH_KIND,
        "generated": "2026-07-30",
        "platform": {"python": "3.11.7", "machine": "x86_64",
                     "cpu_count": 4},
        "solver_microbench": {
            "random3sat-120v-480c": {"wall_time_s": 0.05},
        },
        "portfolio": {
            "profile": "tiny",
            "runs": [{
                "jobs": 1, "wall_time_s": 1.0, "scenarios": 10,
                "deadlock_free": 8, "cache_hits": 5, "cache_misses": 9,
                "session_stats": {},
                "per_scenario": [{"scenario": "mesh-3x3/Rxy/Swh",
                                  "wall_time_s": 0.1,
                                  "deadlock_free": True,
                                  "solver": {"decisions": 3}}],
            }],
            "parallel_speedup": None,
        },
    }


class TestSchemaValidation:
    def test_valid_report_passes(self):
        assert validate_bench_report(_valid_report()) == []

    @pytest.mark.parametrize("mutation, fragment", [
        (lambda r: r.update(schema=99), "schema"),
        (lambda r: r.update(kind="other"), "kind"),
        (lambda r: r.update(generated="yesterday"), "generated"),
        (lambda r: r.update(platform={}), "platform"),
        (lambda r: r.update(solver_microbench={}), "solver_microbench"),
        (lambda r: r.update(portfolio={}), "portfolio.runs"),
        (lambda r: r["portfolio"]["runs"][0].pop("wall_time_s"),
         "wall_time_s"),
        (lambda r: r["portfolio"]["runs"][0]["per_scenario"][0]
         .pop("solver"), "solver"),
        (lambda r: r["solver_microbench"].update(
            bad={"wall_time_s": -1}), "bad"),
    ])
    def test_violations_are_reported(self, mutation, fragment):
        report = _valid_report()
        mutation(report)
        errors = validate_bench_report(report)
        assert errors, f"expected a violation for {fragment}"
        assert any(fragment in error for error in errors)

    def test_write_rejects_invalid_report(self, tmp_path):
        report = _valid_report()
        report["schema"] = 99
        with pytest.raises(ValueError):
            write_bench_report(report, str(tmp_path / "bench.json"))

    def test_write_roundtrip(self, tmp_path):
        path = write_bench_report(_valid_report(),
                                  str(tmp_path / "bench.json"))
        payload = json.loads(open(path).read())
        assert payload["schema"] == BENCH_SCHEMA

    def test_bench_report_path_shape(self):
        assert bench_report_path("/x", "2026-07-30") \
            == "/x/BENCH_2026-07-30.json"


class TestCompare:
    def _report(self, micro, serial):
        return {
            "solver_microbench": {name: {"wall_time_s": wall}
                                  for name, wall in micro.items()},
            "portfolio": {"runs": [{"jobs": 1, "wall_time_s": serial}]},
        }

    def test_speedups_and_aggregate(self):
        old = self._report({"a": 1.0, "b": 2.0}, 10.0)
        new = self._report({"a": 0.5, "b": 1.0}, 5.0)
        rows, regressions = compare_bench_reports(old, new)
        by_name = {name: speedup for name, _, _, speedup in rows}
        assert by_name["a"] == 2.0
        assert by_name["b"] == 2.0
        assert by_name["solver-suite-aggregate"] == 2.0
        assert by_name["portfolio-serial"] == 2.0
        assert regressions == []

    def test_regressions_beyond_threshold_are_flagged(self):
        old = self._report({"a": 1.0, "b": 1.0}, 10.0)
        new = self._report({"a": 1.5, "b": 0.9}, 9.0)
        rows, regressions = compare_bench_reports(old, new, threshold=0.95)
        assert "a" in regressions
        assert "b" not in regressions
        # The aggregate (2.0 s -> 2.4 s) regresses along with "a".
        assert "solver-suite-aggregate" in regressions
        table = format_bench_comparison(rows, regressions)
        assert "REGRESSION" in table
        assert "2 regression(s)" in table

    def test_schema_1_reports_remain_comparable(self):
        """The committed pre-rewrite baseline (schema 1, flat
        serial_wall_time_s reference shape) must stay comparable."""
        old = {"schema": 1,
               "solver_microbench": {"a": {"wall_time_s": 2.0}},
               "portfolio": {"serial_wall_time_s": 8.0}}
        new = self._report({"a": 1.0, "extra": 1.0}, 4.0)
        rows, regressions = compare_bench_reports(old, new)
        by_name = {name: speedup for name, _, _, speedup in rows}
        assert by_name["a"] == 2.0
        assert by_name["portfolio-serial"] == 2.0
        assert "extra" not in by_name  # only shared names compared
        assert regressions == []

    def test_disjoint_reports_share_nothing(self):
        rows, regressions = compare_bench_reports(
            {"solver_microbench": {"x": {"wall_time_s": 1.0}}},
            {"solver_microbench": {"y": {"wall_time_s": 1.0}}})
        assert rows == [] and regressions == []

    def test_errored_entries_become_warning_rows(self):
        """A schema-4 ``status: error`` entry on either side yields a
        warning row (speedup ``None``), never a crash, a silent drop or a
        phantom regression; healthy benchmarks still compare."""
        old = self._report({"a": 1.0, "b": 2.0}, 10.0)
        new = self._report({"a": 0.5, "b": 1.0}, 5.0)
        new["solver_microbench"]["b"] = {
            "status": "error", "error": "RuntimeError: boom"}
        rows, regressions = compare_bench_reports(old, new, threshold=0.95)
        by_name = {name: (old_s, new_s, speedup)
                   for name, old_s, new_s, speedup in rows}
        assert by_name["b"] == (2.0, None, None)
        assert by_name["a"][2] == 2.0
        # The errored benchmark is excluded from the aggregate...
        assert by_name["solver-suite-aggregate"][2] == 2.0
        # ...and never counts as a regression.
        assert "b" not in regressions and regressions == []
        table = format_bench_comparison(rows, regressions)
        assert "skipped (errored)" in table
        assert "warning: 1 benchmark(s) skipped" in table

    def test_errored_old_side_also_skipped(self):
        old = self._report({"a": 1.0}, 10.0)
        old["solver_microbench"]["a"] = {"status": "error",
                                         "error": "ValueError: bad"}
        new = self._report({"a": 0.5}, 5.0)
        rows, regressions = compare_bench_reports(old, new)
        by_name = {name: speedup for name, _, _, speedup in rows}
        assert by_name["a"] is None
        assert "solver-suite-aggregate" not in by_name  # nothing measured
        assert regressions == []

    def test_cli_compare_exits_nonzero_on_regression(self, tmp_path):
        import json

        from repro.cli import main

        old = self._report({"a": 1.0}, 10.0)
        new = self._report({"a": 2.0}, 20.0)
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        assert main(["bench", "--compare", str(old_path), str(new_path)]) == 1
        # And zero when the new report is faster.
        assert main(["bench", "--compare", str(new_path), str(old_path)]) == 0


class TestRunners:
    def test_tiny_portfolio_bench_serial_vs_parallel(self):
        """End to end on the tiny profile: both job counts run, agree, and
        the recorded runs carry the full per-scenario payload."""
        section = run_portfolio_bench(profile="tiny", jobs_list=(1, 2))
        assert [run["jobs"] for run in section["runs"]] == [1, 2]
        assert section["parallel_speedup"] is not None
        for run in section["runs"]:
            assert run["scenarios"] == 11
            assert len(run["per_scenario"]) == 11
            assert all(entry["solver"] for entry in run["per_scenario"])

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ValueError):
            run_portfolio_bench(profile="galactic")

    def test_full_report_validates_and_formats(self):
        report = run_benchmark(profile="tiny", jobs_list=(1,), repeat=1)
        assert validate_bench_report(report) == []
        assert set(report["solver_microbench"]) \
            == set(SOLVER_MICROBENCHMARKS)
        summary = format_bench_summary(report)
        assert "portfolio[tiny] jobs=1" in summary

    def test_reference_speedups_are_recorded(self):
        reference = {
            "solver_microbench": {
                name: {"wall_time_s": 10.0} for name in SOLVER_MICROBENCHMARKS
            },
            "portfolio": {"serial_wall_time_s": 1000.0},
        }
        report = run_benchmark(profile="tiny", jobs_list=(1,), repeat=1,
                               reference=reference)
        speedups = report["speedup_vs_reference"]
        for name in SOLVER_MICROBENCHMARKS:
            assert speedups[name] > 1  # 10 s reference vs. < 10 s measured
        assert speedups["portfolio-vs-reference"] > 1
        assert report["reference"] is reference
