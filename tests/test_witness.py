"""Tests for the constructive Theorem 1 witnesses (cycle <-> deadlock)."""

import pytest

from repro.checking.graphs import find_cycle_dfs
from repro.core.dependency import routing_dependency_graph
from repro.core.deadlock import analyse_deadlock, is_deadlock
from repro.core.errors import SpecificationError
from repro.core.witness import (
    cycle_to_deadlock_configuration,
    verify_witness_roundtrip,
)
from repro.hermes.ports import witness_destination
from repro.network.mesh import Mesh2D
from repro.network.ring import Ring
from repro.ringnoc import build_clockwise_ring_instance, ring_witness_destination
from repro.routing.adaptive import FullyAdaptiveMinimalRouting, ZigZagRouting
from repro.routing.ring import ClockwiseRingRouting
from repro.routing.xy import XYRouting
from repro.switching.wormhole import WormholeSwitching


def ring_cycle(size=4):
    routing = ClockwiseRingRouting(Ring(size))
    graph = routing_dependency_graph(routing)
    cycle = find_cycle_dfs(graph).cycle
    assert cycle
    return routing, cycle


class TestSufficiencyConstruction:
    def test_ring_cycle_yields_deadlock(self):
        routing, cycle = ring_cycle()
        witness = cycle_to_deadlock_configuration(
            cycle, routing, ring_witness_destination(routing.topology),
            capacity=1)
        assert is_deadlock(witness.configuration, WormholeSwitching())
        assert len(witness.travels) == len(cycle)

    def test_every_cycle_port_is_unavailable(self):
        routing, cycle = ring_cycle()
        witness = cycle_to_deadlock_configuration(
            cycle, routing, ring_witness_destination(routing.topology),
            capacity=1)
        unavailable = set(witness.configuration.state.unavailable_ports())
        assert set(cycle) <= unavailable

    def test_capacity_two_still_deadlocks(self):
        routing, cycle = ring_cycle()
        witness = cycle_to_deadlock_configuration(
            cycle, routing, ring_witness_destination(routing.topology),
            capacity=2)
        assert is_deadlock(witness.configuration, WormholeSwitching())

    def test_extra_flits_queue_at_the_source(self):
        routing, cycle = ring_cycle()
        witness = cycle_to_deadlock_configuration(
            cycle, routing, ring_witness_destination(routing.topology),
            capacity=1, extra_flits=2)
        assert all(travel.num_flits == 3 for travel in witness.travels)
        assert is_deadlock(witness.configuration, WormholeSwitching())

    def test_zigzag_mesh_cycle_yields_deadlock(self):
        mesh = Mesh2D(3, 3)
        routing = ZigZagRouting(mesh)
        cycle = find_cycle_dfs(routing_dependency_graph(routing)).cycle
        witness = cycle_to_deadlock_configuration(
            cycle, routing, lambda s, t: witness_destination(s, t, mesh),
            capacity=1)
        assert is_deadlock(witness.configuration, WormholeSwitching())

    def test_rejects_too_short_cycles(self):
        routing, cycle = ring_cycle()
        with pytest.raises(SpecificationError):
            cycle_to_deadlock_configuration(
                cycle[:1], routing,
                ring_witness_destination(routing.topology))

    def test_rejects_adaptive_routing(self):
        mesh = Mesh2D(2, 2)
        routing = FullyAdaptiveMinimalRouting(mesh)
        cycle = find_cycle_dfs(routing_dependency_graph(routing)).cycle
        with pytest.raises(SpecificationError):
            cycle_to_deadlock_configuration(
                cycle, routing, lambda s, t: witness_destination(s, t, mesh))

    def test_rejects_wrong_witness_function(self):
        routing, cycle = ring_cycle()
        # A witness that always points at the first node cannot justify every
        # edge of the cycle.
        def bad_witness(source, target):
            from repro.network.port import Direction, Port, PortName

            return Port(0, 0, PortName.LOCAL, Direction.OUT)

        with pytest.raises(SpecificationError):
            cycle_to_deadlock_configuration(cycle, routing, bad_witness,
                                            capacity=1)

    def test_acyclic_routing_has_no_cycle_to_start_from(self):
        graph = routing_dependency_graph(XYRouting(Mesh2D(3, 3)))
        assert find_cycle_dfs(graph).cycle is None


class TestRoundTrip:
    def test_roundtrip_on_the_ring(self):
        instance = build_clockwise_ring_instance(5)
        graph = routing_dependency_graph(instance.routing)
        cycle = find_cycle_dfs(graph).cycle
        roundtrip = verify_witness_roundtrip(
            cycle, instance.routing, instance.switching,
            ring_witness_destination(instance.topology), capacity=1)
        assert roundtrip.success
        assert roundtrip.is_deadlock
        assert roundtrip.recovered_cycle
        # The recovered cycle consists of ports of the original cycle.
        assert set(roundtrip.recovered_cycle) <= set(cycle)

    def test_roundtrip_analysis_matches_direct_analysis(self):
        instance = build_clockwise_ring_instance(4)
        graph = routing_dependency_graph(instance.routing)
        cycle = find_cycle_dfs(graph).cycle
        roundtrip = verify_witness_roundtrip(
            cycle, instance.routing, instance.switching,
            ring_witness_destination(instance.topology), capacity=1)
        direct = analyse_deadlock(roundtrip.witness.configuration,
                                  instance.switching)
        assert direct.is_deadlock == roundtrip.is_deadlock
        assert direct.cycle == roundtrip.recovered_cycle
