"""Tests for the SAT encodings, transition systems and the NoC state-space
explorer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checking.bmc import (
    ConfigurationSpace,
    count_reachable_states,
    explore_configuration_space,
)
from repro.checking.encodings import (
    decode_topological_numbering,
    encode_acyclicity,
    has_cycle_through_by_sat,
    is_acyclic_by_sat,
)
from repro.checking.graphs import DirectedGraph, find_cycle_dfs
from repro.checking.sat import solve_cnf
from repro.checking.ts import TransitionSystem
from repro.hermes import build_hermes_instance
from repro.ringnoc import build_clockwise_ring_instance


def graph_from_edges(edges, vertices=None):
    return DirectedGraph.from_edges(edges, vertices=vertices)


@st.composite
def random_digraph(draw):
    n = draw(st.integers(1, 6))
    possible = [(a, b) for a in range(n) for b in range(n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=12))
    return DirectedGraph.from_edges(edges, vertices=range(n))


class TestAcyclicityEncoding:
    def test_dag_is_sat(self):
        graph = graph_from_edges([(1, 2), (2, 3)])
        assert is_acyclic_by_sat(graph)

    def test_cycle_is_unsat(self):
        graph = graph_from_edges([(1, 2), (2, 3), (3, 1)])
        assert not is_acyclic_by_sat(graph)

    def test_self_loop_is_unsat(self):
        assert not is_acyclic_by_sat(graph_from_edges([(1, 1)]))

    def test_numbering_witness_decreases_along_edges(self):
        graph = graph_from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        numbering = decode_topological_numbering(graph)
        for source, target in graph.edges():
            assert numbering[target] < numbering[source]

    def test_numbering_of_cyclic_graph_raises(self):
        with pytest.raises(ValueError):
            decode_topological_numbering(graph_from_edges([(1, 2), (2, 1)]))

    @given(random_digraph())
    @settings(max_examples=60, deadline=None)
    def test_sat_agrees_with_dfs(self, graph):
        assert is_acyclic_by_sat(graph) == find_cycle_dfs(graph).acyclic

    def test_encoding_size_is_reasonable(self):
        graph = graph_from_edges([(i, i + 1) for i in range(20)])
        cnf, _ = encode_acyclicity(graph)
        assert cnf.num_clauses < 5000

    def test_cycle_existence_encoding(self):
        graph = graph_from_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
        assert has_cycle_through_by_sat(graph, 1, max_length=4)
        assert not has_cycle_through_by_sat(graph, 4, max_length=4)


class TestTransitionSystem:
    def _counter_system(self, limit=5):
        return TransitionSystem(
            initial_states=[0],
            successors=lambda s: [s + 1] if s < limit else [])

    def test_search_finds_target(self):
        system = self._counter_system()
        result = system.search(lambda s: s == 3)
        assert result.found
        assert result.witness == 3
        assert result.path == [0, 1, 2, 3]
        assert result.depth == 3

    def test_search_miss(self):
        system = self._counter_system()
        result = system.search(lambda s: s == 99)
        assert not result.found
        assert result.explored == 6
        assert result.complete

    def test_max_states_bound(self):
        system = TransitionSystem([0], lambda s: [s + 1])
        result = system.search(lambda s: False, max_states=10)
        assert not result.complete

    def test_max_depth_bound(self):
        system = self._counter_system(limit=100)
        result = system.search(lambda s: s == 50, max_depth=3)
        assert not result.found
        assert not result.complete

    def test_reachable_states(self):
        states, complete = self._counter_system().reachable_states()
        assert states == {0, 1, 2, 3, 4, 5}
        assert complete

    def test_invariant_check(self):
        system = self._counter_system()
        violation = system.check_invariant(lambda s: s < 4)
        assert violation.found
        assert violation.witness == 4

    def test_terminal_state_search(self):
        system = self._counter_system()
        result = system.find_terminal_state(is_final=lambda s: s == 5)
        assert not result.found  # the only terminal state is the final one
        result2 = system.find_terminal_state(is_final=lambda s: False)
        assert result2.found
        assert result2.witness == 5


class TestConfigurationSpace:
    def test_encode_decode_roundtrip(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=2)]
        space = ConfigurationSpace(instance, travels, capacity=1)
        state = space.encode(space.initial_configuration)
        decoded = space.decode(state)
        assert space.encode(decoded) == state
        decoded.check_consistency()

    def test_successors_of_initial_state(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=1),
                   instance.make_travel((1, 1), (0, 0), num_flits=1)]
        space = ConfigurationSpace(instance, travels, capacity=1)
        initial = space.encode(space.initial_configuration)
        successors = space.successors(initial)
        assert len(successors) == 2  # either message may inject first

    def test_final_state_detection(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 0), num_flits=1)]
        space = ConfigurationSpace(instance, travels, capacity=1)
        state = space.encode(space.initial_configuration)
        assert not space.is_final(state)
        # Drive the single message to completion.
        while True:
            successors = space.successors(state)
            if not successors:
                break
            state = successors[0]
        assert space.is_final(state)

    def test_requires_single_steppable_switching(self):
        instance = build_hermes_instance(2, 2)

        class NotSteppable:
            pass

        instance.switching = NotSteppable()
        with pytest.raises(TypeError):
            ConfigurationSpace(instance, [], capacity=1)

    def test_xy_small_workload_has_no_reachable_deadlock(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=2),
                   instance.make_travel((1, 1), (0, 0), num_flits=2),
                   instance.make_travel((0, 1), (1, 0), num_flits=2)]
        result = explore_configuration_space(instance, travels, capacity=1)
        assert result.complete
        assert not result.deadlock_found

    def test_clockwise_ring_reaches_deadlock(self):
        instance = build_clockwise_ring_instance(4)
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=3)
                   for i in range(4)]
        result = explore_configuration_space(instance, travels, capacity=1)
        assert result.deadlock_found
        assert result.witness_configuration is not None
        # The witness state really is a deadlock for the policy.
        from repro.core.deadlock import is_deadlock

        assert is_deadlock(result.witness_configuration, instance.switching)

    def test_count_reachable_states(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=1)]
        count, complete = count_reachable_states(instance, travels, capacity=1)
        assert complete
        # One message, 6 route positions + not-injected = a handful of states.
        assert 5 <= count <= 10

    def test_search_result_str(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=1)
        travels = [instance.make_travel((0, 0), (1, 1), num_flits=1)]
        result = explore_configuration_space(instance, travels, capacity=1)
        assert "no reachable deadlock" in str(result)
