"""Tests for the Duato-style escape-channel routing relation and the
VC-granular deadlock verification (the (V-1)/(V-2) condition), explicit and
incremental -- including the headline result: the deadlock-prone 3x3
adaptive mesh is proved deadlock-free with 2 VCs and an XY escape class by
BOTH the explicit dependency-graph checker and the incremental CDCL path."""

import pytest

from repro.checking.graphs import find_cycle_dfs
from repro.cli import main as cli_main
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import (
    channel_dependency_graph,
    class_subgraph,
    routing_dependency_graph,
)
from repro.core.obligations import (
    check_c3_routing_induced,
    check_v1_escape_coverage,
    check_v2_escape_acyclicity,
    check_v2_incremental,
)
from repro.core.theorems import (
    check_deadlock_freedom_vc,
    check_deadlock_freedom_vc_incremental,
)
from repro.network.mesh import Mesh2D
from repro.network.ring import Ring
from repro.network.torus import Torus2D
from repro.network.vc import VirtualChannel, port_of, vc_of
from repro.routing.adaptive import FullyAdaptiveMinimalRouting
from repro.routing.escape import (
    mesh_escape_routing,
    ring_escape_routing,
    torus_escape_routing,
)
from repro.routing.torus import TorusXYRouting


class TestMeshEscapeHeadline:
    """The acceptance scenario: 3x3 mesh + fully-adaptive minimal routing."""

    def test_port_level_baseline_is_deadlock_prone(self):
        routing = FullyAdaptiveMinimalRouting(Mesh2D(3, 3))
        assert not check_c3_routing_induced(routing).holds

    def test_single_vc_degenerate_case_stays_prone(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=1)
        assert not relation.classes_separated
        explicit = check_deadlock_freedom_vc(relation)
        incremental = check_deadlock_freedom_vc_incremental(relation)
        assert not explicit.holds
        assert not incremental.holds
        assert explicit.counterexamples

    def test_two_vcs_with_escape_class_are_proved_free_by_both_paths(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        assert relation.classes_separated
        assert relation.escape_vcs == (0,)
        assert relation.adaptive_vcs == (1,)
        # The full channel graph still has the adaptive cycles ...
        graph = channel_dependency_graph(relation)
        assert not find_cycle_dfs(graph).acyclic
        # ... but the design is deadlock-free by the escape condition,
        # agreed on by the explicit checker and the CDCL oracle.
        explicit = check_deadlock_freedom_vc(relation)
        incremental = check_deadlock_freedom_vc_incremental(relation)
        assert explicit.holds
        assert incremental.holds
        assert explicit.details["classes_separated"]

    def test_escape_subgraph_is_acyclic_while_adaptive_class_cycles(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        graph = channel_dependency_graph(relation)
        escape = class_subgraph(graph, relation.escape_vcs)
        adaptive = class_subgraph(graph, relation.adaptive_vcs)
        assert find_cycle_dfs(escape).acyclic
        assert not find_cycle_dfs(adaptive).acyclic

    def test_cli_acceptance_invocation(self, capsys):
        assert cli_main(["deadlock", "--vcs", "2", "--escape", "xy"]) == 0
        out = capsys.readouterr().out
        assert "DEADLOCK-PRONE" in out          # the single-VC baseline
        assert "DeadThm(vc): holds" in out
        assert "DeadThm(vc,incremental): holds" in out
        assert "proved deadlock-free with 2 VCs" in out


class TestEscapeRelation:
    def test_vc_selection_is_part_of_the_relation(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=3)
        source = relation.topology.local_in_ports()[0]
        destination = relation.topology.local_out_ports()[-1]
        hops = relation.next_hops(source, destination)
        vcs = {vc_of(hop) for hop in hops}
        # From the injection channel both adaptive VCs and the escape VC
        # are on offer.
        assert vcs == {0, 1, 2}

    def test_escape_channels_never_leave_the_escape_class(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        destinations = relation.destinations()
        for channel in relation.topology.ports:
            if vc_of(channel) != 0 or not port_of(channel).is_input:
                continue
            if port_of(channel).is_local:
                continue  # injection channels may choose any class
            for destination in destinations:
                if not relation.reachable(channel, destination):
                    continue
                if channel.node == destination.node:
                    continue
                for hop in relation.next_hops(channel, destination):
                    assert vc_of(hop) == 0

    def test_out_channels_keep_their_vc_across_the_link(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        destination = relation.topology.local_out_ports()[-1]
        for channel in relation.topology.ports:
            port = port_of(channel)
            if not port.is_output or port.is_local:
                continue
            hops = relation.next_hops(channel, destination)
            assert len(hops) == 1
            assert vc_of(hops[0]) == vc_of(channel)

    def test_route_policies(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        source = relation.topology.local_in_ports()[0]
        destination = relation.topology.local_out_ports()[-1]
        escape_route = relation.compute_route(source, destination,
                                              preference="escape")
        adaptive_route = relation.compute_route(source, destination,
                                                preference="adaptive")
        assert all(vc_of(c) == 0 for c in escape_route)
        assert any(vc_of(c) == 1 for c in adaptive_route)
        # Both policies produce relation-compliant minimal routes.
        for route in (escape_route, adaptive_route):
            assert route[0] == source and route[-1] == destination

    def test_coverage_obligation_reports_check_counts(self):
        relation = mesh_escape_routing(Mesh2D(2, 2), num_vcs=2)
        result = check_v1_escape_coverage(relation)
        assert result.holds
        assert result.checks > 0
        assert result.details["classes_separated"]


class TestDatelineEscape:
    def test_torus_single_vc_is_prone_from_size_four(self):
        relation = torus_escape_routing(Torus2D(4, 3), num_vcs=1)
        explicit = check_deadlock_freedom_vc(relation)
        assert not explicit.holds

    def test_torus_dateline_pair_is_free(self):
        relation = torus_escape_routing(Torus2D(4, 3), num_vcs=2)
        assert relation.escape_vcs == (0, 1)
        assert relation.adaptive_vcs == ()
        explicit = check_deadlock_freedom_vc(relation)
        incremental = check_deadlock_freedom_vc_incremental(relation)
        assert explicit.holds and incremental.holds

    def test_torus_with_adaptive_class_on_top_is_free(self):
        relation = torus_escape_routing(Torus2D(4, 3), num_vcs=3)
        assert relation.adaptive_vcs == (2,)
        assert check_deadlock_freedom_vc(relation).holds

    def test_port_level_torus_xy_has_the_wrap_cycle(self):
        routing = TorusXYRouting(Torus2D(4, 3))
        graph = routing_dependency_graph(routing)
        assert not find_cycle_dfs(graph).acyclic

    def test_ring_dateline_repairs_the_ring(self):
        prone = ring_escape_routing(Ring(4, bidirectional=True), num_vcs=1)
        fixed = ring_escape_routing(Ring(4, bidirectional=True), num_vcs=2)
        assert not check_deadlock_freedom_vc(prone).holds
        explicit = check_deadlock_freedom_vc(fixed)
        incremental = check_deadlock_freedom_vc_incremental(fixed)
        assert explicit.holds and incremental.holds

    def test_dateline_repairs_the_clockwise_routing_itself(self):
        """The CLI's `--design clockwise-ring --vcs 2` path: the dateline
        pair repairs the exact routing function the paper's counterexample
        uses, not a different ring routing."""
        from repro.routing.ring import ClockwiseRingRouting

        ring = Ring(4, bidirectional=True)
        prone = ring_escape_routing(ring, num_vcs=1,
                                    base_routing=ClockwiseRingRouting(ring))
        fixed = ring_escape_routing(ring, num_vcs=2,
                                    base_routing=ClockwiseRingRouting(ring))
        assert not check_deadlock_freedom_vc(prone).holds
        assert check_deadlock_freedom_vc(fixed).holds
        assert check_deadlock_freedom_vc_incremental(fixed).holds

    def test_dateline_vc_switch_happens_on_wrap_hops(self):
        relation = ring_escape_routing(Ring(4, bidirectional=True),
                                       num_vcs=2)
        topology = relation.topology
        # A packet at node 3 heading to node 0 crosses the wrap link and
        # must be bumped to escape VC 1.
        source = [c for c in topology.local_in_ports() if c.x == 3][0]
        destination = [c for c in topology.local_out_ports()
                       if c.x == 0][0]
        route = relation.compute_route(source, destination)
        wrap_half = [c for c in route if c.x == 0 and not c.is_local]
        assert wrap_half
        assert all(vc_of(c) == 1 for c in wrap_half)


class TestIncrementalVcQueries:
    def test_class_restriction_query_splits_the_verdict(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        session = DeadlockQuerySession(channel_dependency_graph(relation),
                                       name="vc test")
        assert not session.is_deadlock_free()  # adaptive cycles
        assert session.is_deadlock_free_for_class(relation.escape_vcs)
        assert not session.is_deadlock_free_for_class(relation.adaptive_vcs)

    def test_cycle_core_for_class_yields_adaptive_witness(self):
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        session = DeadlockQuerySession(channel_dependency_graph(relation))
        core = session.cycle_core_for_class(relation.adaptive_vcs)
        assert core
        assert all(vc_of(s) in relation.adaptive_vcs
                   and vc_of(t) in relation.adaptive_vcs
                   for s, t in core)
        assert session.cycle_core_for_class(relation.escape_vcs) is None

    def test_v2_incremental_matches_explicit(self):
        for vcs in (1, 2):
            relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=vcs)
            explicit = check_v2_escape_acyclicity(relation)
            incremental = check_v2_incremental(relation)
            assert explicit.holds == incremental.holds
            # The returned session stays usable for follow-up queries.
            session = incremental.details["session"]
            assert (session.is_deadlock_free_for_class(relation.escape_vcs)
                    == explicit.holds)

    def test_shared_session_across_vc_counts(self):
        """One solver session hosts the channel universes of several VC
        counts (the portfolio/benchmark usage pattern)."""
        from repro.checking.graphs import DirectedGraph
        from repro.network.vc import VCTopology

        mesh = Mesh2D(3, 3)
        universe = DirectedGraph()
        for channel in VCTopology(mesh, 4).ports:
            universe.add_vertex(channel)
        session = DeadlockQuerySession(universe, name="shared vc universe")
        verdicts = {}
        for vcs in (1, 2, 4):
            relation = mesh_escape_routing(mesh, num_vcs=vcs)
            result = check_deadlock_freedom_vc_incremental(relation,
                                                           session=session)
            verdicts[vcs] = result.holds
        assert verdicts == {1: False, 2: True, 4: True}


class TestChannelDot:
    def test_channel_graph_renders_with_vc_colours(self, tmp_path):
        from repro.reporting.dot import channel_graph_to_dot, write_dot

        relation = mesh_escape_routing(Mesh2D(2, 2), num_vcs=2)
        graph = channel_dependency_graph(relation)
        text = channel_graph_to_dot(graph, escape_vcs=relation.escape_vcs)
        assert "fillcolor=gold" in text        # the escape class
        assert "fillcolor=lightsalmon" in text  # adaptive VC 1
        assert "#0" in text and "#1" in text
        path = tmp_path / "channels.dot"
        write_dot(graph, str(path), escape_vcs=relation.escape_vcs)
        assert path.read_text().startswith("digraph")

    def test_depgraph_cli_exports_channel_graph(self, tmp_path, capsys):
        path = tmp_path / "vc.dot"
        code = cli_main(["depgraph", "--width", "2", "--height", "2",
                         "--vcs", "2", "--dot", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "escape class acyclic: True" in out
        assert "full graph acyclic  : False" in out
        assert path.exists()
