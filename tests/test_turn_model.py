"""Unit tests for the turn-model routing family (west-first, north-last,
negative-first, odd-even): allowed-turn sets, reachability/totality on
3x3 and 4x4 meshes, and acyclicity of every dependency graph with the
explicit and CDCL deciders agreeing.
"""

import pytest

from repro.checking.graphs import (
    find_cycle_dfs,
    is_acyclic_by_scc,
    topological_sort,
)
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import routing_dependency_graph
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.routing.turn_model import (
    NegativeFirstRouting,
    NorthLastRouting,
    OddEvenRouting,
    WestFirstRouting,
    odd_even_directions,
)

TURN_MODELS = [WestFirstRouting, NorthLastRouting, NegativeFirstRouting,
               OddEvenRouting]


def local_in(x, y):
    return Port(x, y, PortName.LOCAL, Direction.IN)


def local_out(x, y):
    return Port(x, y, PortName.LOCAL, Direction.OUT)


def in_port(x, y, name):
    return Port(x, y, name, Direction.IN)


class TestAllowedTurnSets:
    """The defining allowed-direction set of each model, port by port."""

    def test_west_first_forces_west(self):
        routing = WestFirstRouting(Mesh2D(4, 4))
        hops = routing.next_hops(local_in(3, 1), local_out(0, 3))
        assert hops == [Port(3, 1, PortName.WEST, Direction.OUT)]

    def test_north_last_defers_north(self):
        routing = NorthLastRouting(Mesh2D(4, 4))
        # North and East both minimal: only East allowed.
        hops = routing.next_hops(local_in(0, 3), local_out(2, 0))
        assert hops == [Port(0, 3, PortName.EAST, Direction.OUT)]
        # North the only minimal direction: allowed.
        hops = routing.next_hops(local_in(2, 3), local_out(2, 0))
        assert hops == [Port(2, 3, PortName.NORTH, Direction.OUT)]

    def test_negative_first_orders_negative_before_positive(self):
        routing = NegativeFirstRouting(Mesh2D(4, 4))
        hops = routing.next_hops(local_in(3, 0), local_out(0, 3))
        # West (negative) strictly before South (positive).
        assert hops == [Port(3, 0, PortName.WEST, Direction.OUT)]

    def test_odd_even_bans_vertical_turn_in_even_columns_eastbound(self):
        # Eastbound worm arriving at even column 2 mid-route (West in-port
        # = moving East): the EN/ES turn is forbidden there.
        current = in_port(2, 2, PortName.WEST)
        assert odd_even_directions(current, local_out(3, 0)) \
            == [PortName.EAST]
        # Same geometry in odd column 1: vertical is allowed too.
        current = in_port(1, 2, PortName.WEST)
        assert set(odd_even_directions(current, local_out(3, 0))) \
            == {PortName.NORTH, PortName.EAST}

    def test_odd_even_allows_vertical_at_the_source(self):
        # At the source node (local in-port) the vertical move is allowed
        # even in an even column -- it is an injection, not a turn.
        assert PortName.SOUTH in odd_even_directions(local_in(0, 0),
                                                     local_out(2, 2))

    def test_odd_even_defers_final_east_into_an_even_column(self):
        # dx == 1 with dy != 0 and an even destination column: taking East
        # now would force a forbidden EN/ES turn at the destination column,
        # so East is excluded until the vertical movement is done.
        current = in_port(1, 0, PortName.WEST)
        assert odd_even_directions(current, local_out(2, 2)) \
            == [PortName.SOUTH]
        # Odd destination column: the final East hop is fine -- and from an
        # even column the vertical is banned anyway, so East is the single
        # allowed direction.
        current = in_port(2, 0, PortName.WEST)
        assert odd_even_directions(current, local_out(3, 2)) \
            == [PortName.EAST]

    def test_odd_even_westbound_vertical_only_in_even_columns(self):
        # Westbound (NW/SW turns banned in odd columns).
        current = in_port(3, 0, PortName.EAST)
        assert odd_even_directions(current, local_out(0, 2)) \
            == [PortName.WEST]
        current = in_port(2, 0, PortName.EAST)
        assert set(odd_even_directions(current, local_out(0, 2))) \
            == {PortName.WEST, PortName.SOUTH}

    def test_odd_even_pure_vertical_is_always_allowed(self):
        assert odd_even_directions(local_in(2, 0), local_out(2, 3)) \
            == [PortName.SOUTH]
        assert odd_even_directions(in_port(2, 3, PortName.SOUTH),
                                   local_out(2, 0)) == [PortName.NORTH]


@pytest.mark.parametrize("dims", [(3, 3), (4, 4)])
@pytest.mark.parametrize("routing_cls", TURN_MODELS)
class TestReachabilityAndTotality:
    def test_every_pair_routes_minimally(self, dims, routing_cls):
        mesh = Mesh2D(*dims)
        routing = routing_cls(mesh)
        for source in mesh.coordinates():
            for target in mesh.coordinates():
                route = routing.compute_route(local_in(*source),
                                              local_out(*target))
                hops = sum(1 for a, b in zip(route, route[1:])
                           if a.node != b.node)
                assert hops == mesh.manhattan_distance(source, target), \
                    (source, target)

    def test_relation_is_total_on_occurring_pairs(self, dims, routing_cls):
        """Every (port, destination) pair a packet can reach offers at
        least one hop -- no turn model strands a worm mid-route."""
        from repro.routing.base import occurring_pairs

        mesh = Mesh2D(*dims)
        routing = routing_cls(mesh)
        pairs = occurring_pairs(routing)
        assert pairs, "the occurring-pairs set must not be empty"
        for port, destination in pairs:
            if port == destination:
                continue
            assert routing.next_hops(port, destination), (port, destination)
            assert routing.reachable(port, destination)


@pytest.mark.parametrize("dims", [(3, 3), (4, 4)])
@pytest.mark.parametrize("routing_cls", TURN_MODELS)
class TestAcyclicity:
    def test_explicit_and_cdcl_deciders_agree_on_freedom(self, dims,
                                                         routing_cls):
        routing = routing_cls(Mesh2D(*dims))
        graph = routing_dependency_graph(routing)
        by_dfs = find_cycle_dfs(graph).acyclic
        by_scc = is_acyclic_by_scc(graph)
        by_topo = topological_sort(graph) is not None
        by_cdcl = DeadlockQuerySession.for_routing(routing).is_deadlock_free()
        assert by_dfs == by_scc == by_topo == by_cdcl
        # Each turn model forbids a turn class, so all are deadlock-free.
        assert by_dfs, f"{routing.name()} on {dims} must be acyclic"


class TestOddEvenRegistration:
    def test_odd_even_is_a_registered_mesh_routing(self):
        from repro.core.spec import ScenarioSpec, spec_registry

        assert "odd-even" in spec_registry().entry("mesh").routings
        spec = ScenarioSpec(kind="mesh", dims=(3, 3),
                            routing="odd_even").normalized()
        assert spec.routing == "odd-even"
        instance = spec.build()
        assert isinstance(instance.routing, OddEvenRouting)
