"""Tests for the HERMES obligation discharge (user input, part II)."""

import pytest

from repro.hermes import build_hermes_instance
from repro.hermes.proofs import (
    default_workloads,
    discharge_all,
    discharge_c1_xy,
    discharge_c2_xy,
    discharge_c3_xy,
    discharge_c4_iid,
    discharge_c5_wh,
)


@pytest.fixture(scope="module")
def instance():
    return build_hermes_instance(3, 3, buffer_capacity=2)


@pytest.fixture(scope="module")
def workloads(instance):
    return default_workloads(instance)


class TestIndividualDischarges:
    def test_c1(self, instance):
        result = discharge_c1_xy(instance)
        assert result.holds
        assert result.checks > 100  # many case distinctions, like the paper

    def test_c2(self, instance):
        result = discharge_c2_xy(instance)
        assert result.holds
        assert result.details["fallback_witnesses"] == 0

    def test_c3_bounded_and_parametric(self, instance):
        result = discharge_c3_xy(instance)
        assert result.holds
        assert result.details["parametric_holds"] is True
        assert result.details["rank_certificate_violations"] == 0
        assert result.details["parametric_cases"] == 21

    def test_c3_without_parametric_part(self, instance):
        result = discharge_c3_xy(instance, include_parametric=False)
        assert result.holds
        assert "parametric_holds" not in result.details

    def test_c4(self, instance, workloads):
        result = discharge_c4_iid(instance, workloads)
        assert result.holds
        assert result.checks == len(workloads)

    def test_c5(self, instance, workloads):
        result = discharge_c5_wh(instance, workloads)
        assert result.holds
        assert result.checks > 0


class TestDischargeAll:
    @pytest.mark.parametrize("size", [2, 3])
    def test_all_obligations_hold(self, size):
        report = discharge_all(size, size)
        assert report.all_hold
        assert set(report.results) == {"C-1", "C-2", "C-3", "C-4", "C-5"}
        assert report.total_checks > 0
        assert report.elapsed_seconds > 0

    def test_non_square_mesh(self):
        report = discharge_all(4, 2)
        assert report.all_hold

    def test_summary_lines(self):
        report = discharge_all(2, 2)
        lines = report.summary_lines()
        assert any("C-3" in line for line in lines)
        assert any("all hold" in line for line in lines)

    def test_custom_workloads(self, instance):
        workload = [instance.make_travel((0, 0), (2, 2), num_flits=2)]
        report = discharge_all(3, 3, workloads=[workload])
        assert report.all_hold
        assert report.results["C-4"].checks == 1


class TestDefaultWorkloads:
    def test_workloads_are_nonempty(self, instance, workloads):
        assert workloads
        assert all(len(workload) > 0 for workload in workloads)

    def test_workload_travels_stay_inside_the_mesh(self, instance, workloads):
        for workload in workloads:
            for travel in workload:
                assert instance.mesh.has_port(travel.source)
                assert instance.mesh.has_port(travel.destination)

    def test_1x1_mesh_has_no_default_workload(self):
        tiny = build_hermes_instance(1, 1)
        assert default_workloads(tiny) == []
