"""Tests for the proof-obligation checkers (C-1) ... (C-5)."""

import pytest

from repro.core import (
    check_c1,
    check_c2,
    check_c3,
    check_c3_routing_induced,
    check_c4,
    check_c5,
)
from repro.core.constituents import IdentityInjection, InjectionMethod
from repro.core.dependency import ExplicitDependencySpec
from repro.core.errors import ObligationViolation
from repro.core.measure import flit_hop_measure, pending_travel_measure
from repro.hermes import build_hermes_instance
from repro.hermes.dependency import ExyDependencySpec
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.routing.adaptive import ZigZagRouting
from repro.routing.xy import XYRouting


@pytest.fixture
def instance():
    return build_hermes_instance(3, 3, buffer_capacity=2)


@pytest.fixture
def workload_configs(instance):
    travels = [instance.make_travel((0, 0), (2, 2), num_flits=3),
               instance.make_travel((2, 2), (0, 0), num_flits=3),
               instance.make_travel((1, 0), (1, 2), num_flits=2)]
    config = instance.routing.route_configuration(
        instance.initial_configuration(travels))
    return [config]


class TestC1:
    def test_holds_for_hermes(self, instance):
        result = check_c1(instance.routing, instance.dependency_spec)
        assert result.holds
        assert result.checks > 0
        assert result.counterexamples == []

    def test_fails_for_incomplete_declared_graph(self, instance):
        mesh = instance.mesh
        # Declare only the local-delivery edges: every cardinal hop of XY is
        # then an undeclared dependency.
        edges = {}
        for port in mesh.ports:
            if port.is_input:
                edges[port] = {Port(port.x, port.y, PortName.LOCAL,
                                    Direction.OUT)}
        broken = ExplicitDependencySpec(mesh, edges)
        result = check_c1(instance.routing, broken)
        assert not result.holds
        assert result.counterexamples

    def test_counterexamples_are_bounded(self, instance):
        broken = ExplicitDependencySpec(instance.mesh, {})
        result = check_c1(instance.routing, broken, max_counterexamples=3)
        assert not result.holds
        assert len(result.counterexamples) == 3

    def test_raise_if_violated(self, instance):
        broken = ExplicitDependencySpec(instance.mesh, {})
        result = check_c1(instance.routing, broken)
        with pytest.raises(ObligationViolation):
            result.raise_if_violated()

    def test_str_mentions_status(self, instance):
        result = check_c1(instance.routing, instance.dependency_spec)
        assert "holds" in str(result)


class TestC2:
    def test_holds_for_hermes_with_find_dest(self, instance):
        result = check_c2(instance.routing, instance.dependency_spec,
                          instance.witness_destination)
        assert result.holds
        assert result.details["fallback_witnesses"] == 0

    def test_holds_for_hermes_by_enumeration(self, instance):
        result = check_c2(instance.routing, instance.dependency_spec, None)
        assert result.holds

    def test_fails_for_overdeclared_graph(self, instance):
        # Add an edge XY routing can never take: a U-turn from the North
        # in-port back to the North out-port of an interior node.
        mesh = instance.mesh
        spec = ExyDependencySpec(mesh)
        extra_source = Port(1, 1, PortName.NORTH, Direction.IN)
        extra_target = Port(1, 1, PortName.NORTH, Direction.OUT)
        edges = {port: spec.edges_from(port) for port in mesh.ports}
        edges[extra_source] = edges[extra_source] | {extra_target}
        overdeclared = ExplicitDependencySpec(mesh, edges)
        result = check_c2(instance.routing, overdeclared, None)
        assert not result.holds
        assert any("no witness" in text for text in result.counterexamples)

    def test_checks_count_equals_edge_count(self, instance):
        result = check_c2(instance.routing, instance.dependency_spec,
                          instance.witness_destination)
        assert result.checks == len(instance.dependency_spec.edges())


class TestC3:
    def test_holds_for_exy(self, instance):
        result = check_c3(instance.dependency_spec)
        assert result.holds
        assert result.details["methods"] == {"dfs": True, "scc": True,
                                             "toposort": True}

    def test_fails_for_cyclic_spec(self):
        mesh = Mesh2D(2, 2)
        a = Port(0, 0, PortName.EAST, Direction.OUT)
        b = Port(1, 0, PortName.WEST, Direction.IN)
        spec = ExplicitDependencySpec(mesh, {a: {b}, b: {a}})
        result = check_c3(spec)
        assert not result.holds
        assert "cycle" in result.counterexamples[0]
        assert "cycle" in result.details

    def test_routing_induced_variant_positive(self):
        result = check_c3_routing_induced(XYRouting(Mesh2D(3, 3)))
        assert result.holds

    def test_routing_induced_variant_negative(self):
        result = check_c3_routing_induced(ZigZagRouting(Mesh2D(3, 3)))
        assert not result.holds
        assert "cycle" in result.details


class TestC4:
    def test_identity_injection_satisfies_c4(self, instance, workload_configs):
        result = check_c4(instance.injection, workload_configs)
        assert result.holds
        assert result.checks == len(workload_configs)

    def test_non_identity_injection_fails_c4(self, instance, workload_configs):
        class DroppingInjection(InjectionMethod):
            def inject(self, config):
                from repro.core.configuration import Configuration

                return Configuration(travels=config.travels[1:],
                                     state=config.state,
                                     arrived=config.arrived,
                                     progress=config.progress)

        result = check_c4(DroppingInjection(), workload_configs)
        assert not result.holds

    def test_vacuous_with_no_configurations(self, instance):
        result = check_c4(IdentityInjection(), [])
        assert result.holds
        assert result.checks == 0


class TestC5:
    def test_flit_hop_measure_discharges_c5(self, instance, workload_configs):
        result = check_c5(instance.switching, flit_hop_measure,
                          workload_configs)
        assert result.holds
        assert result.checks > 0
        assert result.details["total_steps"] == result.checks

    def test_pending_travel_measure_fails_c5(self, instance, workload_configs):
        result = check_c5(instance.switching, pending_travel_measure,
                          workload_configs)
        assert not result.holds

    def test_non_strict_mode(self, instance, workload_configs):
        from repro.core.measure import route_length_measure

        strict = check_c5(instance.switching, route_length_measure,
                          workload_configs, strict=True)
        relaxed = check_c5(instance.switching, route_length_measure,
                           workload_configs, strict=False)
        # The paper's measure is only non-increasing in the flit-accurate
        # model: strict fails, non-strict holds.
        assert relaxed.holds
        assert not strict.holds

    def test_step_bound_reported(self, instance, workload_configs):
        result = check_c5(instance.switching, flit_hop_measure,
                          workload_configs, max_steps=1)
        assert not result.holds
        assert "exceeded" in result.counterexamples[0]
