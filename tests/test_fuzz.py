"""Unit tests for the randomized-topology fuzz campaign
(:mod:`repro.core.fuzz`): deterministic spec generation, the independent
brute-force decider, campaign reports and the ``repro fuzz`` CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.fuzz import (
    FUZZ_KINDS,
    brute_force_acyclic,
    generate_fuzz_specs,
    run_fuzz_campaign,
)


class TestSpecGeneration:
    def test_generation_is_deterministic_in_the_campaign_seed(self):
        first = generate_fuzz_specs(30, campaign_seed=2010)
        second = generate_fuzz_specs(30, campaign_seed=2010)
        assert first == second
        other = generate_fuzz_specs(30, campaign_seed=2011)
        assert first != other

    def test_prefix_stability(self):
        """Instance i is a pure function of (campaign_seed, i): asking for
        more instances never changes the earlier ones."""
        short = generate_fuzz_specs(10, campaign_seed=7)
        long = generate_fuzz_specs(25, campaign_seed=7)
        assert long[:10] == short

    def test_all_kinds_appear_and_all_specs_build(self):
        specs = generate_fuzz_specs(60, campaign_seed=2010)
        kinds = {spec.kind for spec in specs}
        assert kinds == {kind for kind, _ in FUZZ_KINDS}
        assert any(spec.faults for spec in specs)
        assert any(not spec.faults for spec in specs)
        # Every tenth spec actually constructs (all of them do in the
        # campaign; sampling keeps this test fast).
        for spec in specs[::10]:
            instance = spec.build()
            assert instance.name

    def test_specs_respect_the_size_bound(self):
        specs = generate_fuzz_specs(40, max_size=(2, 2), campaign_seed=3)
        for spec in specs:
            if spec.kind in ("mesh", "vc-mesh", "vc-torus"):
                assert all(dim <= 2 for dim in spec.dims)

    def test_rejects_degenerate_size_bound(self):
        from repro.core.errors import SpecificationError

        with pytest.raises(SpecificationError):
            generate_fuzz_specs(5, max_size=(1, 3))


class TestBruteForceDecider:
    def test_acyclic_chain(self):
        assert brute_force_acyclic([("a", "b"), ("b", "c"), ("a", "c")]) \
            is True

    def test_two_cycle(self):
        assert brute_force_acyclic([("a", "b"), ("b", "a")]) is False

    def test_self_loop(self):
        assert brute_force_acyclic([("a", "a")]) is False

    def test_long_cycle_behind_a_tail(self):
        edges = [("t", "a"), ("a", "b"), ("b", "c"), ("c", "a")]
        assert brute_force_acyclic(edges) is False

    def test_empty_graph_is_acyclic(self):
        assert brute_force_acyclic([]) is True

    def test_size_cap_refuses_with_none(self):
        edges = [(i, i + 1) for i in range(20)]
        assert brute_force_acyclic(edges, max_vertices=5) is None


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fuzz_campaign(count=12, max_size=(3, 3),
                                 campaign_seed=2010)

    def test_small_campaign_has_no_disagreements(self, report):
        assert report.ok
        assert not report.disagreements
        assert len(report.verdicts) == 12

    def test_campaign_mixes_verdicts_and_runs_every_decider(self, report):
        assert report.free_count + report.prone_count == 12
        assert report.free_count and report.prone_count
        assert report.brute_checked > 0
        assert report.simulated > 0
        for verdict in report.verdicts:
            assert verdict.cdcl_free == verdict.explicit_free
            if verdict.brute_free is not None:
                assert verdict.brute_free == verdict.explicit_free

    def test_campaign_is_deterministic(self, report):
        again = run_fuzz_campaign(count=12, max_size=(3, 3),
                                  campaign_seed=2010)

        def stable(verdicts):
            rows = []
            for verdict in verdicts:
                row = verdict.to_json_dict()
                row.pop("elapsed_ms", None)
                rows.append(row)
            return rows

        assert stable(again.verdicts) == stable(report.verdicts)

    def test_report_json_shape(self, report):
        payload = report.to_json_dict()
        assert payload["instances"] == 12
        assert payload["campaign_seed"] == 2010
        assert payload["disagreements"] == []
        assert len(payload["verdicts"]) == 12
        for entry in payload["verdicts"]:
            assert {"scenario", "condition", "deadlock_free",
                    "disagreements"} <= set(entry)
        json.dumps(payload)  # must be serializable as-is

    def test_summary_reports_agreement(self, report):
        text = report.format_summary()
        assert "12 instances" in text
        assert "all deciders agree" in text


class TestFuzzCli:
    def test_fuzz_command_smoke(self, tmp_path, capsys):
        out = tmp_path / "fuzz.json"
        code = cli_main(["fuzz", "--seeds", "6", "--max-size", "3x3",
                         "--quiet", "--json", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "6 instances" in captured
        payload = json.loads(out.read_text())
        assert payload["instances"] == 6
        assert payload["disagreements"] == []

    def test_fuzz_rejects_malformed_max_size(self):
        with pytest.raises(SystemExit):
            cli_main(["fuzz", "--seeds", "1", "--max-size", "huge"])
