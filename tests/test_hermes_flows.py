"""Tests for the flows argument and the rank certificate (paper Fig. 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hermes.dependency import ExyDependencySpec, build_exy_graph
from repro.hermes.flows import (
    Flow,
    analyse_flows,
    check_rank_case_analysis,
    check_rank_certificate_on_mesh,
    coordinate_monotone_along_flow,
    flow_of,
    hermes_rank,
    parametric_c3_holds,
)
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName


class TestFlowClassification:
    def test_paper_northern_flow_members(self):
        # "The Northern-flow consists solely of South-In and North-Out ports"
        assert flow_of(Port(1, 1, PortName.SOUTH, Direction.IN)) \
            is Flow.NORTHWARD
        assert flow_of(Port(1, 1, PortName.NORTH, Direction.OUT)) \
            is Flow.NORTHWARD

    def test_paper_western_flow_members(self):
        # "the Western-flow consists solely of West-Out and East-In ports"
        assert flow_of(Port(1, 1, PortName.EAST, Direction.IN)) \
            is Flow.WESTWARD
        assert flow_of(Port(1, 1, PortName.WEST, Direction.OUT)) \
            is Flow.WESTWARD

    def test_local_ports(self):
        assert flow_of(Port(0, 0, PortName.LOCAL, Direction.IN)) \
            is Flow.LOCAL_IN
        assert flow_of(Port(0, 0, PortName.LOCAL, Direction.OUT)) \
            is Flow.LOCAL_OUT

    def test_every_port_is_classified(self):
        mesh = Mesh2D(3, 3)
        analysis = analyse_flows(mesh)
        classified = sum(len(ports) for ports in analysis.members.values())
        assert classified == mesh.port_count

    def test_flow_sizes_are_symmetric(self):
        analysis = analyse_flows(Mesh2D(4, 4))
        sizes = analysis.flow_sizes()
        assert sizes[Flow.NORTHWARD] == sizes[Flow.SOUTHWARD]
        assert sizes[Flow.EASTWARD] == sizes[Flow.WESTWARD]
        assert sizes[Flow.LOCAL_IN] == sizes[Flow.LOCAL_OUT] == 16


class TestEscapeProperties:
    """The escape lemmas of the paper's (C-3) proof."""

    @pytest.mark.parametrize("size", [(2, 2), (3, 3), (4, 2), (5, 5)])
    def test_vertical_flows_escape_only_to_sinks(self, size):
        analysis = analyse_flows(Mesh2D(*size))
        assert analysis.vertical_flows_escape_only_to_sinks

    @pytest.mark.parametrize("size", [(2, 2), (3, 3), (4, 2), (5, 5)])
    def test_horizontal_flows_escape_only_to_vertical_or_sinks(self, size):
        analysis = analyse_flows(Mesh2D(*size))
        assert analysis.horizontal_flows_escape_only_to_vertical_or_sinks

    @pytest.mark.parametrize("flow", [Flow.NORTHWARD, Flow.SOUTHWARD,
                                      Flow.EASTWARD, Flow.WESTWARD])
    def test_flows_are_coordinate_monotone(self, flow):
        assert coordinate_monotone_along_flow(Mesh2D(4, 4), flow)

    def test_local_in_ports_have_no_incoming_edges(self):
        graph = build_exy_graph(Mesh2D(3, 3))
        in_degrees = graph.in_degrees()
        for port in graph.vertices:
            if flow_of(port) is Flow.LOCAL_IN:
                assert in_degrees[port] == 0


class TestRankCertificate:
    @pytest.mark.parametrize("width,height", [(2, 2), (3, 3), (2, 6), (6, 2),
                                              (5, 4)])
    def test_certificate_holds_on_bounded_meshes(self, width, height):
        assert check_rank_certificate_on_mesh(Mesh2D(width, height)) == []

    @given(st.integers(1, 7), st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_certificate_holds_for_random_sizes(self, width, height):
        assert check_rank_certificate_on_mesh(Mesh2D(width, height)) == []

    def test_rank_phases_order_flows(self):
        width = height = 5
        local_out = hermes_rank(Port(2, 2, PortName.LOCAL, Direction.OUT),
                                width, height)
        vertical = hermes_rank(Port(2, 2, PortName.NORTH, Direction.OUT),
                               width, height)
        horizontal = hermes_rank(Port(2, 2, PortName.EAST, Direction.OUT),
                                 width, height)
        local_in = hermes_rank(Port(2, 2, PortName.LOCAL, Direction.IN),
                               width, height)
        assert local_out < vertical < horizontal < local_in

    def test_rank_decreases_along_a_concrete_route_worth_of_edges(self):
        mesh = Mesh2D(4, 4)
        spec = ExyDependencySpec(mesh)
        for source, target in spec.edges():
            assert hermes_rank(target, 4, 4) < hermes_rank(source, 4, 4)


class TestParametricCaseAnalysis:
    def test_all_cases_decrease_and_are_size_independent(self):
        cases = check_rank_case_analysis()
        assert cases
        for case in cases:
            assert case.decreases, case.description
            assert case.coordinate_independent, case.description

    def test_parametric_c3_holds(self):
        assert parametric_c3_holds()

    def test_case_analysis_covers_all_edge_kinds(self):
        cases = check_rank_case_analysis()
        descriptions = {case.description for case in cases}
        # 5 in-port kinds with their out-port successors (5+4+4+2+2 = 17)
        # plus 4 out-port -> neighbour in-port kinds.
        assert len(descriptions) == 21

    def test_every_concrete_edge_matches_a_case(self):
        """The case analysis is exhaustive: every edge of a concrete mesh has
        the (source kind, target kind, offset) of one of the symbolic cases."""
        cases = check_rank_case_analysis()
        kinds = {(case.source_kind, case.target_kind, case.node_offset)
                 for case in cases}
        mesh = Mesh2D(4, 3)
        for source, target in ExyDependencySpec(mesh).edges():
            key = ((source.name, source.direction),
                   (target.name, target.direction),
                   (target.x - source.x, target.y - source.y))
            assert key in kinds

    def test_custom_samples(self):
        cases = check_rank_case_analysis(samples=((2, 2, 6, 6), (3, 1, 9, 4)))
        assert parametric_c3_holds(cases)
