"""Simulator / theorem cross-validation.

For every portfolio scenario small enough to simulate, the simulator's
deadlock/evacuation outcome must be *consistent* with the Theorem 1 (or
VC escape) verdict:

* verdict deadlock-free  =>  no simulated workload may deadlock;
* a simulated deadlock   =>  the verdict must be deadlock-prone (the
  converse need not hold -- a deadlock-prone design deadlocks only for
  adversarial workloads, which this module constructs for the known case).

Also exercises the VC wormhole switching operationally: per-VC worm
coexistence on one physical port, one-flit-per-link arbitration, and full
evacuation with CorrThm/EvacThm on VC escape instances.
"""

import pytest

from repro.core.portfolio import (
    Scenario,
    run_portfolio,
    standard_portfolio,
    vc_escape_portfolio,
)
from repro.core.theorems import check_correctness, check_evacuation
from repro.core.travel import make_travel
from repro.network.vc import VirtualChannel, port_of, vc_of
from repro.simulation import Simulator, uniform_random_traffic
from repro.simulation.workloads import transpose_traffic
from repro.switching.wormhole import VCWormholeSwitching
from repro.vcnoc import (
    build_vc_mesh_instance,
    build_vc_ring_instance,
    build_vc_torus_instance,
)


def _small_workloads(instance, max_ports: int = 350):
    """Workloads for scenarios small enough to simulate, else empty."""
    if len(instance.topology.ports) > max_ports:
        return []
    workloads = [uniform_random_traffic(instance, num_messages=8,
                                        num_flits=3, seed=2010)]
    size = getattr(instance.topology, "width", None)
    if size is not None and getattr(instance.topology, "height",
                                    None) == size:
        workloads.append(transpose_traffic(instance, num_flits=3))
    return workloads


class TestPortfolioSimulationConsistency:
    @pytest.fixture(scope="class")
    def scenarios_and_report(self):
        scenarios = (standard_portfolio(mesh_sizes=(3,), ring_sizes=(4,))
                     + vc_escape_portfolio(mesh_sizes=(3,), torus_sizes=(4,),
                                           vc_counts=(1, 2)))
        report = run_portfolio(scenarios, cross_check=True)
        return scenarios, report

    def test_every_simulable_scenario_is_consistent(self,
                                                    scenarios_and_report):
        scenarios, report = scenarios_and_report
        verdicts = {v.scenario: v.deadlock_free for v in report.verdicts}
        simulated = 0
        for scenario in scenarios:
            instance = scenario.resolve()
            for workload in _small_workloads(instance):
                result = Simulator(instance, max_steps=2000).run(workload)
                simulated += 1
                if verdicts[scenario.name]:
                    assert not result.genoc_result.deadlocked, (
                        f"{scenario.name} is verified deadlock-free but "
                        f"workload {workload.name} deadlocked")
                    assert result.genoc_result.evacuated
                elif result.genoc_result.deadlocked:
                    # Consistent: a deadlock may only occur on a design the
                    # verdict calls prone.
                    assert not verdicts[scenario.name]
        assert simulated >= 10, "the consistency sweep must actually run"

    def test_known_prone_design_actually_deadlocks(self):
        """The contrapositive direction, witnessed: the clockwise ring
        deadlocks under its adversarial workload, matching its verdict."""
        from repro.ringnoc import build_clockwise_ring_instance

        instance = build_clockwise_ring_instance(4)
        report = run_portfolio([Scenario(name="ring", instance=instance)])
        assert not report.verdicts[0].deadlock_free
        travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0),
                                        num_flits=3) for i in range(4)]
        result = instance.run(travels, capacity=1)
        assert result.deadlocked


class TestVcSimulation:
    @pytest.mark.parametrize("policy", ["escape", "adaptive", "spread"])
    def test_mesh_escape_instance_evacuates_with_theorems(self, policy):
        instance = build_vc_mesh_instance(3, 3, num_vcs=2,
                                          route_policy=policy)
        workload = uniform_random_traffic(instance, num_messages=12,
                                          num_flits=4, seed=2010)
        original = instance.initial_configuration(list(workload.travels))
        result = instance.engine(max_steps=2000).run(original.copy(),
                                                     check_invariants=True)
        assert result.evacuated
        assert check_correctness(instance, original, result).holds
        assert check_evacuation(instance, original, result).holds

    def test_torus_and_ring_escape_instances_evacuate(self):
        for instance in (build_vc_torus_instance(4, 3, num_vcs=2),
                         build_vc_ring_instance(4, num_vcs=2)):
            workload = uniform_random_traffic(instance, num_messages=8,
                                              num_flits=3, seed=2010)
            result = Simulator(instance, max_steps=2000).run(workload)
            assert result.genoc_result.evacuated
            assert result.correctness_ok and result.evacuation_ok

    @staticmethod
    def _converging_worms(instance, vcs=(1, 0), num_flits=4):
        """Two worms from different sources converging on the shared link
        into node (2, 0), each on its own VC."""
        relation = instance.relation
        dst = VirtualChannel(instance.topology.node_at(2, 0).local_out, 0)
        travels = []
        for travel_id, (source_node, vc) in enumerate(
                zip([(0, 0), (1, 0)], vcs), start=1):
            src = VirtualChannel(
                instance.topology.node_at(*source_node).local_in, 0)
            base = relation.compute_route(src, dst, preference="escape")
            route = [channel if port_of(channel).is_local
                     else channel.with_vc(vc) for channel in base]
            travels.append(make_travel(src, dst, num_flits=num_flits,
                                       travel_id=travel_id)
                           .with_route(route))
        return travels

    def test_worms_coexist_on_different_vcs_of_one_port(self):
        """Per-VC ownership: two worms share a physical port on distinct
        VCs, which single-VC wormhole switching forbids."""
        instance = build_vc_mesh_instance(3, 1, num_vcs=2)
        travels = self._converging_worms(instance)
        config = instance.initial_configuration(travels)
        config = instance.routing.route_configuration(config)
        switching = instance.switching
        assert isinstance(switching, VCWormholeSwitching)
        shared = False
        steps = 0
        while config.travels and steps < 200:
            config = switching.step(config)
            steps += 1
            occupied = {}
            for channel, state in config.state.items():
                if not state.buffer.is_empty:
                    occupied.setdefault(port_of(channel), set()).add(
                        vc_of(channel))
            if any(len(vcs) > 1 for vcs in occupied.values()):
                shared = True
        assert not config.travels, "both worms must evacuate"
        assert shared, "the two worms must overlap on one physical port"

    def test_link_arbitration_one_flit_per_link_per_step(self):
        """Two worms on different VCs converging on one physical link: per
        step, at most one flit crosses each physical link."""
        instance = build_vc_mesh_instance(3, 1, num_vcs=2)
        travels = self._converging_worms(instance, num_flits=5)
        config = instance.initial_configuration(travels)
        config = instance.routing.route_configuration(config)
        switching = instance.switching

        def flits_by_in_port(state):
            counts = {}
            for channel, port_state in state.items():
                if port_of(channel).is_input and port_of(channel).is_cardinal:
                    for flit in port_state.buffer:
                        key = (port_of(channel), flit.travel_id, flit.index)
                        counts[key] = vc_of(channel)
            return counts

        steps = 0
        while config.travels and steps < 300:
            before = flits_by_in_port(config.state)
            config = switching.step(config)
            steps += 1
            after = flits_by_in_port(config.state)
            arrivals_per_port = {}
            for key in after:
                if key not in before:
                    port = key[0]
                    arrivals_per_port[port] = (
                        arrivals_per_port.get(port, 0) + 1)
            assert all(count <= 1 for count in arrivals_per_port.values()), (
                f"step {steps}: more than one flit crossed a link: "
                f"{arrivals_per_port}")
        assert not config.travels

    def test_single_vc_network_layer_is_the_degenerate_case(self):
        """The network layer's degenerate case: a 1-VC channel network
        under the *plain* wormhole policy reproduces the classic HERMES XY
        behaviour step for step.  (``VCWormholeSwitching`` itself is
        deliberately stricter -- credit-based header allocation -- so the
        comparison isolates the resource layer.)"""
        from dataclasses import replace

        from repro.hermes import build_hermes_instance
        from repro.switching.wormhole import WormholeSwitching

        vc_instance = replace(
            build_vc_mesh_instance(3, 3, num_vcs=1, route_policy="escape"),
            switching=WormholeSwitching())
        hermes = build_hermes_instance(3, 3)
        vc_workload = uniform_random_traffic(vc_instance, num_messages=10,
                                             num_flits=3, seed=7)
        hermes_workload = uniform_random_traffic(hermes, num_messages=10,
                                                 num_flits=3, seed=7)
        vc_result = Simulator(vc_instance, max_steps=2000).run(vc_workload)
        hermes_result = Simulator(hermes,
                                  max_steps=2000).run(hermes_workload)
        assert vc_result.genoc_result.evacuated
        assert hermes_result.genoc_result.evacuated
        assert (vc_result.genoc_result.steps
                == hermes_result.genoc_result.steps)

    def test_fault_injected_escape_proved_free_drains(self):
        """A fault-injected escape-channel design the prover calls free
        must evacuate every simulated workload: vc-mesh 3x3 with 2 VCs and
        the seed-0 single dead link L(0,2)-(1,2)."""
        from repro.core.spec import ScenarioSpec
        from repro.core.theorems import check_deadlock_freedom_vc

        spec = ScenarioSpec(kind="vc-mesh", dims=(3, 3), num_vcs=2,
                            faults=1, fault_seed=0).normalized()
        instance = spec.build()
        assert "~L" in instance.name, "the fault must reach the instance"
        assert check_deadlock_freedom_vc(instance.routing).holds
        for workload in _small_workloads(instance):
            result = Simulator(instance, max_steps=2000).run(workload)
            assert not result.genoc_result.deadlocked
            assert result.genoc_result.evacuated

    def test_fault_injected_escape_proved_prone_stalls(self):
        """The contrapositive, witnessed on a faulty instance: the 1-VC
        vc-mesh (escape class shares the single channel with the adaptive
        class) is proved prone, and four worms chasing each other around a
        surviving unit square actually deadlock under capacity 1."""
        from repro.core.spec import ScenarioSpec
        from repro.core.theorems import check_deadlock_freedom_vc
        from repro.network.port import Direction, Port, PortName

        spec = ScenarioSpec(kind="vc-mesh", dims=(3, 3), num_vcs=1,
                            faults=1, fault_seed=1).normalized()
        instance = spec.build()
        assert not check_deadlock_freedom_vc(instance.routing).holds

        def channel(x, y, name, direction):
            return VirtualChannel(Port(x, y, name, direction), 0)

        def hop_names(a, b):
            if b[0] == a[0] + 1:
                return PortName.EAST, PortName.WEST
            if b[0] == a[0] - 1:
                return PortName.WEST, PortName.EAST
            if b[1] == a[1] + 1:
                return PortName.SOUTH, PortName.NORTH
            return PortName.NORTH, PortName.SOUTH

        # The seed-1 fault kills L(1,0)-(2,0), leaving the unit square
        # (0,0)-(1,0)-(1,1)-(0,1) intact.  Each worm travels two
        # consecutive legs of the square cycle -- every route is minimal
        # and every hop legal for the adaptive class.
        corners = [(0, 0), (1, 0), (1, 1), (0, 1)]
        travels = []
        for travel_id in range(4):
            p0 = corners[travel_id]
            p1 = corners[(travel_id + 1) % 4]
            p2 = corners[(travel_id + 2) % 4]
            route = [channel(*p0, PortName.LOCAL, Direction.IN)]
            for a, b in ((p0, p1), (p1, p2)):
                out_name, in_name = hop_names(a, b)
                route.append(channel(*a, out_name, Direction.OUT))
                route.append(channel(*b, in_name, Direction.IN))
            route.append(channel(*p2, PortName.LOCAL, Direction.OUT))
            travels.append(make_travel(route[0], route[-1], num_flits=3,
                                       travel_id=travel_id + 1)
                           .with_route(route))
        result = instance.run(travels, capacity=1)
        assert result.deadlocked
        assert not result.evacuated

    def test_vc_switching_is_never_faster_only_safer(self):
        """Credit allocation can only delay a worm, never reorder it: the
        VC policy evacuates the same workload in at least as many steps."""
        vc_instance = build_vc_mesh_instance(3, 3, num_vcs=1,
                                             route_policy="escape")
        workload = uniform_random_traffic(vc_instance, num_messages=10,
                                          num_flits=3, seed=7)
        strict = Simulator(vc_instance, max_steps=2000).run(workload)
        from dataclasses import replace

        from repro.switching.wormhole import WormholeSwitching

        relaxed_instance = replace(vc_instance,
                                   switching=WormholeSwitching())
        relaxed = Simulator(relaxed_instance, max_steps=2000).run(workload)
        assert strict.genoc_result.evacuated
        assert relaxed.genoc_result.evacuated
        assert strict.genoc_result.steps >= relaxed.genoc_result.steps
