"""Tests for the process-wide construction caches (`repro.core.cache`),
the frozen-graph contract and the dependency-spec memoisation."""

import pytest

from repro.checking.graphs import DirectedGraph
from repro.core.cache import InstanceCache, instance_cache, \
    reset_instance_cache
from repro.core.dependency import routing_dependency_graph
from repro.hermes.dependency import ExyDependencySpec
from repro.network.mesh import Mesh2D
from repro.routing.xy import XYRouting


class TestFrozenGraph:
    def test_freeze_blocks_mutation(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        graph.freeze()
        assert graph.frozen
        with pytest.raises(ValueError):
            graph.add_edge("b", "c")
        with pytest.raises(ValueError):
            graph.add_vertex("d")
        # Reads and derived (mutable) graphs keep working.
        assert graph.has_edge("a", "b")
        derived = graph.subgraph(["a", "b"])
        derived.add_edge("b", "a")
        assert not derived.frozen

    def test_fresh_graphs_are_mutable(self):
        graph = DirectedGraph()
        assert not graph.frozen
        graph.add_edge(1, 2)
        assert graph.edge_count == 1


class TestInstanceCache:
    def test_dependency_graph_is_memoised_per_routing(self):
        cache = InstanceCache()
        routing = XYRouting(Mesh2D(3, 3))
        first = cache.dependency_graph(routing)
        second = cache.dependency_graph(routing)
        assert first is second
        assert first.frozen
        assert cache.hits == 1 and cache.misses == 1
        # A distinct routing object (even of the same shape) is a new key.
        other = cache.dependency_graph(XYRouting(Mesh2D(3, 3)))
        assert other is not first
        assert other.edges() == first.edges()

    def test_routing_dependency_graph_defaults_to_the_global_cache(self):
        reset_instance_cache()
        routing = XYRouting(Mesh2D(3, 3))
        first = routing_dependency_graph(routing)
        second = routing_dependency_graph(routing)
        assert first is second
        assert instance_cache().hits >= 1

    def test_cache_false_returns_fresh_mutable_graph(self):
        routing = XYRouting(Mesh2D(3, 3))
        cached = routing_dependency_graph(routing)
        fresh = routing_dependency_graph(routing, cache=False)
        assert fresh is not cached
        assert not fresh.frozen
        assert sorted(map(repr, fresh.edges())) \
            == sorted(map(repr, cached.edges()))

    def test_explicit_destinations_bypass_the_cache(self):
        routing = XYRouting(Mesh2D(2, 2))
        narrowed = routing_dependency_graph(
            routing, destinations=routing.destinations()[:1])
        assert not narrowed.frozen

    def test_escape_coverage_is_memoised(self):
        from repro.routing.escape import mesh_escape_routing

        cache = InstanceCache()
        relation = mesh_escape_routing(Mesh2D(3, 3), num_vcs=2)
        first = cache.escape_coverage(relation)
        second = cache.escape_coverage(relation)
        assert first is second
        assert first.holds

    def test_stats_and_clear(self):
        from repro.routing.xy import XYRouting

        cache = InstanceCache()
        routing = XYRouting(Mesh2D(2, 2))
        first = cache.dependency_graph(routing)
        second = cache.dependency_graph(routing)
        assert first is second
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["graphs"] == 1
        cache.clear()
        assert cache.stats()["hits"] == 0
        assert cache.stats()["graphs"] == 0

    def test_reset_instance_cache_clears_the_global_cache(self):
        from repro.routing.xy import XYRouting

        cache = instance_cache()
        cache.dependency_graph(XYRouting(Mesh2D(2, 2)))
        assert reset_instance_cache() is cache
        assert cache.stats()["graphs"] == 0

    def test_cached_graph_survives_oracle_and_session_use(self):
        """The frozen cached graph must be accepted by every consumer."""
        from repro.core.deadlock import DeadlockQuerySession

        reset_instance_cache()
        routing = XYRouting(Mesh2D(3, 3))
        session = DeadlockQuerySession.for_routing(routing)
        assert session.is_deadlock_free()


class TestDependencySpecMemoisation:
    def test_enumerations_are_cached(self):
        spec = ExyDependencySpec(Mesh2D(3, 3))
        assert spec.edges() is spec.edges()
        assert spec.ports() is spec.ports()
        assert spec.to_graph() is spec.to_graph()
        assert spec.to_graph().frozen

    def test_invalidate_cache_recomputes(self):
        spec = ExyDependencySpec(Mesh2D(2, 2))
        first_edges = spec.edges()
        first_graph = spec.to_graph()
        spec._invalidate_cache()
        assert spec.edges() is not first_edges
        assert spec.edges() == first_edges
        assert spec.to_graph() is not first_graph

    def test_cached_graph_matches_direct_construction(self):
        spec = ExyDependencySpec(Mesh2D(3, 3))
        graph = spec.to_graph()
        assert graph.edge_count == len(spec.edges())
        for source, target in spec.edges():
            assert graph.has_edge(source, target)
