"""Tests for flits, flit buffers and port states."""

import pytest
from hypothesis import given, strategies as st

from repro.network.buffers import FlitBuffer, FlitBufferError, PortState
from repro.network.flit import Flit, FlitKind, make_flits


class TestFlits:
    def test_single_flit_message_is_a_header(self):
        flits = make_flits(7, 1)
        assert len(flits) == 1
        assert flits[0].kind is FlitKind.HEADER
        assert flits[0].is_header

    def test_two_flit_message_is_header_then_tail(self):
        flits = make_flits(7, 2)
        assert [f.kind for f in flits] == [FlitKind.HEADER, FlitKind.TAIL]

    def test_long_message_structure(self):
        flits = make_flits(3, 5)
        assert flits[0].kind is FlitKind.HEADER
        assert flits[-1].kind is FlitKind.TAIL
        assert all(f.kind is FlitKind.BODY for f in flits[1:-1])

    def test_flit_indices_are_sequential(self):
        flits = make_flits(3, 4)
        assert [f.index for f in flits] == [0, 1, 2, 3]

    def test_flits_carry_travel_id(self):
        assert all(f.travel_id == 42 for f in make_flits(42, 3))

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            make_flits(0, 0)

    def test_flit_str(self):
        assert str(Flit(3, 0, FlitKind.HEADER)) == "H3.0"

    @given(st.integers(1, 50))
    def test_exactly_one_header_and_tail_position(self, n):
        flits = make_flits(0, n)
        headers = [f for f in flits if f.kind is FlitKind.HEADER]
        assert len(headers) == 1 and headers[0].index == 0
        if n > 1:
            tails = [f for f in flits if f.kind is FlitKind.TAIL]
            assert len(tails) == 1 and tails[0].index == n - 1


class TestFlitBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlitBuffer(0)

    def test_fifo_order(self):
        buffer = FlitBuffer(3)
        flits = make_flits(1, 3)
        for flit in flits:
            buffer.push(flit)
        assert [buffer.pop() for _ in range(3)] == flits

    def test_overflow_raises(self):
        buffer = FlitBuffer(1)
        buffer.push(make_flits(1, 1)[0])
        with pytest.raises(FlitBufferError):
            buffer.push(make_flits(2, 1)[0])

    def test_underflow_raises(self):
        with pytest.raises(FlitBufferError):
            FlitBuffer(1).pop()

    def test_occupancy_and_free_slots(self):
        buffer = FlitBuffer(4)
        assert buffer.free_slots == 4 and buffer.is_empty
        buffer.push(make_flits(1, 1)[0])
        assert buffer.occupancy == 1
        assert buffer.free_slots == 3
        assert not buffer.is_empty and not buffer.is_full

    def test_peek_does_not_remove(self):
        buffer = FlitBuffer(2)
        flit = make_flits(1, 1)[0]
        buffer.push(flit)
        assert buffer.peek() == flit
        assert buffer.occupancy == 1

    def test_peek_empty_returns_none(self):
        assert FlitBuffer(1).peek() is None

    def test_copy_is_independent(self):
        buffer = FlitBuffer(2)
        buffer.push(make_flits(1, 1)[0])
        clone = buffer.copy()
        clone.pop()
        assert buffer.occupancy == 1
        assert clone.occupancy == 0

    def test_clear(self):
        buffer = FlitBuffer(2)
        buffer.push(make_flits(1, 1)[0])
        buffer.clear()
        assert buffer.is_empty

    @given(st.integers(1, 8), st.integers(0, 8))
    def test_push_pop_sequence_respects_capacity(self, capacity, pushes):
        buffer = FlitBuffer(capacity)
        flits = make_flits(0, max(pushes, 1))
        accepted = 0
        for flit in flits[:pushes]:
            if buffer.is_full:
                with pytest.raises(FlitBufferError):
                    buffer.push(flit)
            else:
                buffer.push(flit)
                accepted += 1
        assert buffer.occupancy == min(pushes, capacity) == accepted


class TestPortState:
    def test_accepts_when_empty(self):
        state = PortState.with_capacity(2)
        assert state.accepts(1)
        assert state.is_available

    def test_ownership_excludes_other_travels(self):
        state = PortState.with_capacity(2)
        state.accept(Flit(1, 0, FlitKind.HEADER))
        assert state.owner == 1
        assert state.accepts(1)
        assert not state.accepts(2)

    def test_full_port_rejects_even_owner(self):
        state = PortState.with_capacity(1)
        state.accept(Flit(1, 0, FlitKind.HEADER))
        assert not state.accepts(1)

    def test_accept_of_wrong_travel_raises(self):
        state = PortState.with_capacity(2)
        state.accept(Flit(1, 0, FlitKind.HEADER))
        with pytest.raises(FlitBufferError):
            state.accept(Flit(2, 0, FlitKind.HEADER))

    def test_release_returns_fifo_head_and_frees_ownership(self):
        state = PortState.with_capacity(2)
        header, tail = make_flits(1, 2)
        state.accept(header)
        state.accept(tail)
        assert state.release() == header
        assert state.owner == 1  # still holds the tail
        assert state.release() == tail
        assert state.owner is None
        assert state.is_available

    def test_is_available_semantics(self):
        state = PortState.with_capacity(2)
        assert state.is_available
        state.accept(Flit(5, 0, FlitKind.HEADER))
        # Owned but not full: not "available" in the deadlock-witness sense.
        assert not state.is_available

    def test_copy_is_deep(self):
        state = PortState.with_capacity(2)
        state.accept(Flit(1, 0, FlitKind.HEADER))
        clone = state.copy()
        clone.release()
        assert state.buffer.occupancy == 1
        assert clone.buffer.occupancy == 0

    def test_str_contains_occupancy(self):
        state = PortState.with_capacity(2)
        state.accept(Flit(1, 0, FlitKind.HEADER))
        assert "1/2" in str(state)
