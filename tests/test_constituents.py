"""Tests for the generic constituent interfaces and their derived behaviour."""

import pytest

from repro.core.constituents import IdentityInjection, RoutingFunction
from repro.core.errors import (
    GeNoCError,
    InjectionError,
    ObligationViolation,
    RoutingError,
    SpecificationError,
    SwitchingError,
)
from repro.hermes import build_hermes_instance
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.routing.xy import XYRouting


@pytest.fixture
def mesh():
    return Mesh2D(3, 3)


@pytest.fixture
def rxy(mesh):
    return XYRouting(mesh)


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_cls", [RoutingError, SwitchingError,
                                           InjectionError,
                                           SpecificationError])
    def test_all_errors_are_genoc_errors(self, error_cls):
        assert issubclass(error_cls, GeNoCError)

    def test_obligation_violation_carries_the_obligation_name(self):
        error = ObligationViolation("C-3", "a cycle exists")
        assert error.obligation == "C-3"
        assert "C-3" in str(error)
        assert isinstance(error, GeNoCError)


class TestIdentityInjection:
    def test_inject_is_identity(self, mesh):
        instance = build_hermes_instance(3, 3)
        config = instance.initial_configuration(
            [instance.make_travel((0, 0), (2, 2))])
        injection = IdentityInjection()
        assert injection.inject(config) is config
        # The generic identity injection already presents itself as the
        # paper's Iid (obligation (C-4) is immediate for it).
        assert injection.name() == "Iid"

    def test_iid_name(self):
        from repro.hermes.injection import Iid

        assert Iid().name() == "Iid"


class TestRoutingFunctionDerivedBehaviour:
    def test_next_hop_raises_when_no_hop_exists(self, rxy, mesh):
        destination = mesh.node_at(1, 1).local_out
        with pytest.raises(RoutingError):
            rxy.next_hop(destination, destination)

    def test_deterministic_flag_default(self, rxy):
        assert rxy.is_deterministic

    def test_route_configuration_assigns_routes_and_progress(self, rxy, mesh):
        instance = build_hermes_instance(3, 3)
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=2),
                   instance.make_travel((1, 1), (0, 0), num_flits=1)]
        config = instance.initial_configuration(travels)
        routed = rxy.route_configuration(config)
        assert routed.all_routed()
        assert set(routed.progress) == {t.travel_id for t in travels}
        for travel in routed.travels:
            assert travel.route[0] == travel.source
            assert travel.route[-1] == travel.destination

    def test_route_configuration_is_idempotent(self, rxy):
        instance = build_hermes_instance(3, 3)
        config = instance.initial_configuration(
            [instance.make_travel((0, 0), (2, 2))])
        once = rxy.route_configuration(config)
        twice = rxy.route_configuration(once)
        assert [t.route for t in twice.travels] == \
            [t.route for t in once.travels]

    def test_route_configuration_rejects_unreachable_destination(self, rxy):
        instance = build_hermes_instance(3, 3)
        # A travel whose source is a local *out* port cannot route anywhere.
        from repro.core.travel import Travel

        bogus = Travel(travel_id=999,
                       source=Port(0, 0, PortName.LOCAL, Direction.OUT),
                       destination=Port(2, 2, PortName.LOCAL, Direction.OUT))
        config = instance.initial_configuration([bogus])
        with pytest.raises(RoutingError):
            rxy.route_configuration(config)

    def test_compute_route_hop_bound(self, mesh):
        class LoopingRouting(XYRouting):
            """A broken routing function that never reaches the destination."""

            def _route_from_in_port(self, current, destination):
                # Bounce between the East and West out-ports of column 1.
                from repro.network.port import trans

                if current.x == 1:
                    return [trans(current, PortName.EAST, Direction.OUT)]
                if current.x > 1:
                    return [trans(current, PortName.WEST, Direction.OUT)]
                return [trans(current, PortName.EAST, Direction.OUT)]

        looping = LoopingRouting(mesh)
        with pytest.raises(RoutingError):
            looping.compute_route(mesh.node_at(1, 0).local_in,
                                  mesh.node_at(0, 2).local_out)

    def test_non_deterministic_next_hop_rejected_when_claimed(self, mesh):
        class LyingRouting(XYRouting):
            def _route_from_in_port(self, current, destination):
                from repro.network.port import trans

                return [trans(current, PortName.EAST, Direction.OUT),
                        trans(current, PortName.SOUTH, Direction.OUT)]

        lying = LyingRouting(mesh)
        with pytest.raises(RoutingError):
            lying.next_hop(mesh.node_at(0, 0).local_in,
                           mesh.node_at(2, 2).local_out)

    def test_names(self, rxy):
        assert rxy.name() == "Rxy"
        assert RoutingFunction.name(rxy) == "XYRouting"

    def test_out_port_at_boundary_raises(self, mesh):
        routing = XYRouting(mesh)
        # Node (0,0) has no West out-port; asking for one is a routing error.
        with pytest.raises(RoutingError):
            routing._out_port(mesh.node_at(0, 0).local_in, PortName.WEST)


class TestSwitchingDefaults:
    def test_default_measure_is_the_flit_hop_measure(self):
        from repro.core.measure import flit_hop_measure
        from repro.switching.wormhole import WormholeSwitching

        instance = build_hermes_instance(2, 2)
        config = instance.routing.route_configuration(
            instance.initial_configuration(
                [instance.make_travel((0, 0), (1, 1), num_flits=2)]))
        assert WormholeSwitching().measure(config) == flit_hop_measure(config)
