"""Property tests for the incremental CDCL engine.

Covers the solver behaviours the old one-shot DPLL-style interface did not
have: repeated solves on one instance, clause addition between solves,
assumption handling with UNSAT cores, determinism under a fixed seed, and
the incremental acyclicity oracle built on top.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checking.cnf import CNF
from repro.checking.graphs import DirectedGraph
from repro.checking.incremental import AcyclicityOracle, IncrementalSession
from repro.checking.bool_expr import And, Iff, Not, Or, Var
from repro.checking.sat import (
    IncrementalSatSolver,
    SatSolver,
    brute_force_models,
    brute_force_satisfiable,
    count_models_brute_force,
    solve_cnf,
)


@st.composite
def random_cnf(draw, max_vars=7, max_clauses=22):
    num_vars = draw(st.integers(1, max_vars))
    num_clauses = draw(st.integers(1, max_clauses))
    cnf = CNF()
    for _ in range(num_clauses):
        width = draw(st.integers(1, 4))
        clause = [draw(st.sampled_from([1, -1])) * draw(
            st.integers(1, num_vars)) for _ in range(width)]
        cnf.add_clause(clause)
    return cnf


@st.composite
def cnf_with_assumption_sets(draw):
    cnf = draw(random_cnf())
    num_vars = max(cnf.variables(), default=1)
    sets = []
    for _ in range(draw(st.integers(1, 4))):
        count = draw(st.integers(0, num_vars))
        variables = draw(st.permutations(range(1, num_vars + 1)))[:count]
        signs = [draw(st.sampled_from([1, -1])) for _ in variables]
        sets.append([sign * var for sign, var in zip(signs, variables)])
    return cnf, sets


class TestCdclAgainstModelEnumeration:
    @given(random_cnf())
    @settings(max_examples=120, deadline=None)
    def test_verdict_matches_brute_force(self, cnf):
        assert solve_cnf(cnf).satisfiable == brute_force_satisfiable(cnf)

    @given(random_cnf())
    @settings(max_examples=80, deadline=None)
    def test_models_are_real_models(self, cnf):
        result = solve_cnf(cnf)
        if result.satisfiable:
            assert cnf.evaluate(result.model)

    @given(random_cnf(max_vars=5, max_clauses=12))
    @settings(max_examples=60, deadline=None)
    def test_blocking_clauses_enumerate_every_model(self, cnf):
        """Repeatedly adding the blocking clause of the found model must
        enumerate exactly the brute-force model set -- this exercises
        add_clause between solves on a single solver instance."""
        expected = count_models_brute_force(cnf)
        variables = sorted(cnf.variables())
        solver = SatSolver(cnf.copy())
        found = 0
        while True:
            result = solver.solve()
            if not result.satisfiable:
                break
            found += 1
            assert found <= expected, "solver found a spurious model"
            blocking = [-var if result.model[var] else var
                        for var in variables]
            solver.add_clause(blocking)
        assert found == expected


class TestAssumptionsAndCores:
    @given(cnf_with_assumption_sets())
    @settings(max_examples=100, deadline=None)
    def test_assumption_queries_match_unit_clauses(self, data):
        """solve(assumptions) on ONE solver must agree, query after query,
        with solving a fresh copy that has the assumptions as units."""
        cnf, assumption_sets = data
        solver = SatSolver(cnf)
        for assumptions in assumption_sets:
            reference = cnf.copy()
            for literal in assumptions:
                reference.add_unit(literal)
            expected = brute_force_satisfiable(reference)
            assert solver.solve(assumptions).satisfiable == expected

    @given(cnf_with_assumption_sets())
    @settings(max_examples=100, deadline=None)
    def test_unsat_cores_are_unsat_subsets(self, data):
        cnf, assumption_sets = data
        solver = SatSolver(cnf)
        for assumptions in assumption_sets:
            result = solver.solve(assumptions)
            if result.satisfiable or result.core is None:
                continue
            assert set(result.core) <= set(assumptions)
            strengthened = cnf.copy()
            for literal in result.core:
                strengthened.add_unit(literal)
            assert not brute_force_satisfiable(strengthened)

    def test_core_of_contradictory_assumptions(self):
        solver = IncrementalSatSolver()
        x = solver.new_var()
        result = solver.solve([x, -x])
        assert not result.satisfiable
        assert set(result.core) == {x, -x}

    def test_solver_recovers_after_unsat_assumptions(self):
        solver = IncrementalSatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert not solver.solve([-a, -b]).satisfiable
        assert solver.solve([]).satisfiable
        assert solver.solve([-a]).satisfiable
        result = solver.solve([-a])
        assert result.model[b] is True

    def test_formula_level_unsat_has_no_core(self):
        solver = IncrementalSatSolver()
        x = solver.new_var()
        solver.add_clause([x])
        solver.add_clause([-x])
        result = solver.solve([x])
        assert not result.satisfiable
        assert result.core is None


class TestDeterminism:
    @given(random_cnf())
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_run(self, cnf):
        first = SatSolver(cnf.copy(), seed=7).solve()
        second = SatSolver(cnf.copy(), seed=7).solve()
        assert first.satisfiable == second.satisfiable
        assert first.model == second.model
        assert first.stats == second.stats

    def test_seed_parameter_reaches_polarity_choice(self):
        cnf = CNF()
        for var in range(1, 9):
            cnf.add_clause([var, -var])  # every variable free
        baseline = SatSolver(cnf.copy(), seed=1).solve()
        again = SatSolver(cnf.copy(), seed=1).solve()
        assert baseline.model == again.model


class TestIncrementalSession:
    def test_guarded_expressions_toggle(self):
        session = IncrementalSession()
        session.assert_expr(Or(Var("a"), Var("b")))
        selector = session.guard("no-a", Not(Var("a")))
        assert session.solve(["no-a"]).satisfiable
        session.assert_expr(Not(Var("b")))
        assert not session.solve(["no-a"]).satisfiable
        assert session.last_core_names() == ["no-a"]
        assert session.solve([-selector]).satisfiable

    def test_shared_subexpressions_are_encoded_once(self):
        session = IncrementalSession()
        shared = And(Var("x"), Var("y"))
        first = session.encode(shared)
        clauses_after_first = session.cnf.num_clauses
        second = session.encode(shared)
        assert first == second
        assert session.cnf.num_clauses == clauses_after_first


@st.composite
def random_digraph(draw, max_vertices=6):
    count = draw(st.integers(2, max_vertices))
    graph = DirectedGraph()
    for vertex in range(count):
        graph.add_vertex(vertex)
    possible = [(a, b) for a in range(count) for b in range(count) if a != b]
    edges = draw(st.lists(st.sampled_from(possible), max_size=12,
                          unique=True))
    for source, target in edges:
        graph.add_edge(source, target)
    return graph


class TestAcyclicityOracle:
    @given(random_digraph())
    @settings(max_examples=80, deadline=None)
    def test_full_query_matches_dfs(self, graph):
        from repro.checking.graphs import find_cycle_dfs

        oracle = AcyclicityOracle(graph)
        assert oracle.is_acyclic() == find_cycle_dfs(graph).acyclic

    @given(random_digraph())
    @settings(max_examples=50, deadline=None)
    def test_subset_queries_match_subgraph_dfs(self, graph):
        from repro.checking.graphs import find_cycle_dfs

        oracle = AcyclicityOracle(graph)
        edges = oracle.edges
        for step in (2, 3):
            subset = edges[::step]
            subgraph = DirectedGraph()
            for vertex in graph.vertices:
                subgraph.add_vertex(vertex)
            for source, target in subset:
                subgraph.add_edge(source, target)
            assert oracle.is_acyclic(subset) \
                == find_cycle_dfs(subgraph).acyclic

    @given(random_digraph())
    @settings(max_examples=50, deadline=None)
    def test_cycle_core_is_cyclic(self, graph):
        from repro.checking.graphs import find_cycle_dfs

        oracle = AcyclicityOracle(graph)
        core = oracle.cycle_core()
        if core is None:
            assert find_cycle_dfs(graph).acyclic
            return
        witness = DirectedGraph()
        for vertex in graph.vertices:
            witness.add_vertex(vertex)
        for source, target in core:
            witness.add_edge(source, target)
        assert not find_cycle_dfs(witness).acyclic

    def test_numbering_witnesses_acyclicity(self):
        graph = DirectedGraph()
        for vertex in "abcd":
            graph.add_vertex(vertex)
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("a", "d")
        oracle = AcyclicityOracle(graph)
        numbering = oracle.numbering()
        for source, target in oracle.edges:
            assert numbering[target] < numbering[source]

    def test_self_loop_is_a_cycle(self):
        graph = DirectedGraph()
        graph.add_vertex("a")
        graph.add_edge("a", "a")
        assert not AcyclicityOracle(graph).is_acyclic()

    def test_critical_edges_on_two_cycles(self):
        graph = DirectedGraph()
        for vertex in "abc":
            graph.add_vertex(vertex)
        # Two 2-cycles sharing vertex a: no single removal fixes both.
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        graph.add_edge("a", "c")
        graph.add_edge("c", "a")
        oracle = AcyclicityOracle(graph)
        assert oracle.critical_edges() == []
        assert oracle.is_acyclic_without([("b", "a"), ("c", "a")])
