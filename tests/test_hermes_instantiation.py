"""Tests for the HERMES instantiation entry points (GeNoC2D)."""

import pytest

from repro.core.configuration import initial_configuration
from repro.core.state import NetworkState
from repro.hermes import GeNoC2D, Iid, Rxy, build_hermes_instance
from repro.hermes.instantiation import run_hermes
from repro.network.mesh import Mesh2D
from repro.routing.xy import XYRouting
from repro.routing.yx import YXRouting
from repro.switching.wormhole import WormholeSwitching


class TestBuildHermesInstance:
    def test_default_constituents(self):
        instance = build_hermes_instance(4, 3)
        assert isinstance(instance.routing, XYRouting)
        assert isinstance(instance.switching, WormholeSwitching)
        assert isinstance(instance.injection, Iid)
        assert instance.dependency_spec is not None
        assert instance.witness_destination is not None
        assert instance.name == "HERMES-4x3"

    def test_rxy_reexport_is_xy_routing(self):
        assert Rxy is XYRouting

    def test_buffer_capacity_parameter(self):
        instance = build_hermes_instance(2, 2, buffer_capacity=7)
        config = instance.initial_configuration([])
        port = instance.mesh.node_at(0, 0).local_in
        assert config.state[port].buffer.capacity == 7

    def test_non_xy_routing_has_no_exy_dep(self):
        instance = build_hermes_instance(3, 3,
                                         routing=YXRouting(Mesh2D(3, 3)))
        assert instance.dependency_spec is None

    def test_witness_destination_matches_find_dest(self):
        from repro.hermes.ports import witness_destination
        from repro.network.port import Direction, Port, PortName

        instance = build_hermes_instance(3, 3)
        source = Port(1, 1, PortName.WEST, Direction.IN)
        target = Port(1, 1, PortName.EAST, Direction.OUT)
        assert instance.witness_destination(source, target) == \
            witness_destination(source, target, instance.mesh)


class TestGeNoC2D:
    def _initial(self, instance, travels):
        return initial_configuration(
            travels, NetworkState.empty(instance.topology, capacity=2))

    def test_genoc2d_runs_a_configuration(self):
        instance = build_hermes_instance(3, 3)
        travels = [instance.make_travel((0, 0), (2, 2), num_flits=3),
                   instance.make_travel((2, 0), (0, 2), num_flits=2)]
        config = self._initial(instance, travels)
        result = GeNoC2D(config, 3, 3)
        assert result.evacuated
        assert sorted(t.travel_id for t in result.final.arrived) == \
            sorted(t.travel_id for t in travels)

    def test_genoc2d_empty_configuration(self):
        instance = build_hermes_instance(2, 2)
        config = self._initial(instance, [])
        result = GeNoC2D(config, 2, 2)
        assert result.evacuated
        assert result.steps == 0

    def test_run_hermes_wrapper(self):
        instance = build_hermes_instance(3, 3)
        travels = [instance.make_travel((0, 0), (2, 1), num_flits=2)]
        result = run_hermes(3, 3, travels)
        assert result.evacuated

    def test_arbitrary_message_sizes_and_buffers(self):
        # The paper stresses everything is parametric: message count, size,
        # buffer depth.
        for buffers in (1, 2, 4):
            for flits in (1, 3, 7):
                instance = build_hermes_instance(3, 2,
                                                 buffer_capacity=buffers)
                travels = [instance.make_travel((0, 0), (2, 1),
                                                num_flits=flits),
                           instance.make_travel((2, 1), (0, 0),
                                                num_flits=flits)]
                result = instance.run(travels)
                assert result.evacuated, (buffers, flits)

    def test_rectangular_meshes(self):
        for width, height in [(1, 4), (4, 1), (2, 5), (6, 2)]:
            instance = build_hermes_instance(width, height)
            travels = [instance.make_travel((0, 0),
                                            (width - 1, height - 1),
                                            num_flits=2)]
            result = instance.run(travels)
            assert result.evacuated, (width, height)
