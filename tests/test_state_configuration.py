"""Tests for network states and configurations."""

import pytest

from repro.core.configuration import (
    Configuration,
    NOT_INJECTED,
    TravelProgress,
    initial_configuration,
)
from repro.core.state import NetworkState
from repro.core.travel import Travel
from repro.network.flit import Flit, FlitKind
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName


@pytest.fixture
def mesh():
    return Mesh2D(2, 2)


@pytest.fixture
def state(mesh):
    return NetworkState.empty(mesh, capacity=2)


def _travel(mesh, source_node, dest_node, num_flits=2, travel_id=1):
    source = mesh.node_at(*source_node).local_in
    dest = mesh.node_at(*dest_node).local_out
    return Travel(travel_id=travel_id, source=source, destination=dest,
                  num_flits=num_flits)


class TestNetworkState:
    def test_empty_state_covers_every_port(self, mesh, state):
        assert len(state) == mesh.port_count
        assert state.is_empty()
        assert state.total_flits() == 0

    def test_per_port_capacity_override(self, mesh):
        special = Port(0, 0, PortName.LOCAL, Direction.IN)
        state = NetworkState.empty(mesh, capacity=1,
                                   capacities={special: 5})
        assert state[special].buffer.capacity == 5
        other = Port(1, 1, PortName.LOCAL, Direction.IN)
        assert state[other].buffer.capacity == 1

    def test_accept_and_release(self, state):
        port = Port(0, 0, PortName.EAST, Direction.OUT)
        flit = Flit(7, 0, FlitKind.HEADER)
        state.accept_flit(port, flit)
        assert state.total_flits() == 1
        assert not state.is_available(port)  # owned
        assert state.accepts(port, 7)
        assert not state.accepts(port, 8)
        assert state.release_flit(port) == flit
        assert state.is_empty()

    def test_unavailable_ports(self, state):
        port = Port(0, 0, PortName.EAST, Direction.OUT)
        state.accept_flit(port, Flit(7, 0, FlitKind.HEADER))
        assert state.unavailable_ports() == [port]
        assert state.occupied_ports() == [port]

    def test_flits_of(self, state):
        port = Port(0, 0, PortName.EAST, Direction.OUT)
        state.accept_flit(port, Flit(7, 0, FlitKind.HEADER))
        state.accept_flit(port, Flit(7, 1, FlitKind.TAIL))
        found = state.flits_of(7)
        assert len(found) == 2
        assert all(p == port for p, _ in found)
        assert state.flits_of(99) == []

    def test_occupancy_map(self, state):
        port = Port(1, 1, PortName.LOCAL, Direction.IN)
        state.accept_flit(port, Flit(3, 0, FlitKind.HEADER))
        occupancy = state.occupancy_map()
        assert occupancy[port] == 1
        assert sum(occupancy.values()) == 1

    def test_copy_is_deep(self, state):
        port = Port(0, 0, PortName.EAST, Direction.OUT)
        state.accept_flit(port, Flit(7, 0, FlitKind.HEADER))
        clone = state.copy()
        clone.release_flit(port)
        assert state.total_flits() == 1
        assert clone.total_flits() == 0

    def test_contains_and_iteration(self, mesh, state):
        assert Port(0, 0, PortName.EAST, Direction.OUT) in state
        assert Port(5, 5, PortName.EAST, Direction.OUT) not in state
        assert set(state.ports) == set(mesh.ports)

    def test_str_of_empty_state(self, state):
        assert "empty" in str(state)


class TestConfiguration:
    def test_initial_configuration(self, mesh, state):
        travel = _travel(mesh, (0, 0), (1, 1))
        config = initial_configuration([travel], state)
        assert config.pending_count == 1
        assert config.arrived_count == 0
        assert not config.is_finished()
        assert config.T == [travel]
        assert config.A == []
        assert config.ST is state

    def test_duplicate_travel_ids_rejected(self, mesh, state):
        travels = [_travel(mesh, (0, 0), (1, 1), travel_id=1),
                   _travel(mesh, (1, 1), (0, 0), travel_id=1)]
        with pytest.raises(ValueError):
            initial_configuration(travels, state)

    def test_travel_by_id(self, mesh, state):
        travel = _travel(mesh, (0, 0), (1, 1), travel_id=5)
        config = initial_configuration([travel], state)
        assert config.travel_by_id(5) is travel
        with pytest.raises(KeyError):
            config.travel_by_id(6)

    def test_all_routed(self, mesh, state):
        travel = _travel(mesh, (0, 0), (1, 1))
        config = initial_configuration([travel], state)
        assert not config.all_routed()

    def test_is_finished_when_empty(self, state):
        config = Configuration(travels=[], state=state, arrived=[])
        assert config.is_finished()

    def test_copy_is_deep(self, mesh, state):
        travel = _travel(mesh, (0, 0), (1, 1))
        config = initial_configuration([travel], state)
        clone = config.copy()
        clone.travels.clear()
        assert config.pending_count == 1

    def test_consistency_check_detects_mismatch(self, mesh, state):
        # A routed travel whose progress claims a flit at a port where the
        # state has none.
        source = mesh.node_at(0, 0).local_in
        dest = mesh.node_at(1, 0).local_out
        route = (source, Port(0, 0, PortName.EAST, Direction.OUT),
                 Port(1, 0, PortName.WEST, Direction.IN), dest)
        travel = Travel(travel_id=1, source=source, destination=dest,
                        num_flits=1, route=route)
        record = TravelProgress.initial(travel)
        record.positions[0] = 1  # claims the flit is at the E out-port
        config = Configuration(travels=[travel], state=state, arrived=[],
                               progress={1: record})
        with pytest.raises(AssertionError):
            config.check_consistency()

    def test_consistency_check_passes_for_matching_state(self, mesh, state):
        source = mesh.node_at(0, 0).local_in
        dest = mesh.node_at(1, 0).local_out
        route = (source, Port(0, 0, PortName.EAST, Direction.OUT),
                 Port(1, 0, PortName.WEST, Direction.IN), dest)
        travel = Travel(travel_id=1, source=source, destination=dest,
                        num_flits=1, route=route)
        record = TravelProgress.initial(travel)
        record.positions[0] = 1
        state.accept_flit(route[1], travel.flits()[0])
        config = Configuration(travels=[travel], state=state, arrived=[],
                               progress={1: record})
        config.check_consistency()  # should not raise

    def test_str(self, mesh, state):
        travel = _travel(mesh, (0, 0), (1, 1))
        config = initial_configuration([travel], state)
        assert "T=1" in str(config)
