"""Tests for the graph algorithms of the checking substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checking.graphs import (
    DirectedGraph,
    check_rank_certificate,
    find_cycle_dfs,
    has_cycle,
    is_acyclic,
    is_acyclic_by_networkx,
    is_acyclic_by_scc,
    is_acyclic_by_toposort,
    longest_path_length,
    strongly_connected_components,
    topological_sort,
)


def graph_from_edges(edges, vertices=None):
    return DirectedGraph.from_edges(edges, vertices=vertices)


@st.composite
def random_digraph(draw):
    n = draw(st.integers(1, 8))
    possible_edges = [(a, b) for a in range(n) for b in range(n)]
    edges = draw(st.lists(st.sampled_from(possible_edges), max_size=20))
    return DirectedGraph.from_edges(edges, vertices=range(n))


class TestDirectedGraph:
    def test_add_edge_adds_vertices(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        assert set(graph.vertices) == {"a", "b"}
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_counts(self):
        graph = graph_from_edges([(1, 2), (2, 3), (1, 3)])
        assert graph.vertex_count == 3
        assert graph.edge_count == 3
        assert graph.out_degree(1) == 2
        assert graph.in_degrees()[3] == 2

    def test_isolated_vertices(self):
        graph = graph_from_edges([], vertices=[1, 2, 3])
        assert graph.vertex_count == 3
        assert graph.edge_count == 0

    def test_subgraph(self):
        graph = graph_from_edges([(1, 2), (2, 3), (3, 1)])
        sub = graph.subgraph([1, 2])
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)
        assert sub.vertex_count == 2

    def test_reverse(self):
        graph = graph_from_edges([(1, 2)])
        reversed_graph = graph.reverse()
        assert reversed_graph.has_edge(2, 1)
        assert not reversed_graph.has_edge(1, 2)

    def test_to_networkx(self):
        graph = graph_from_edges([(1, 2), (2, 3)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 2


class TestCycleSearch:
    def test_empty_graph_is_acyclic(self):
        assert is_acyclic(DirectedGraph())

    def test_dag_is_acyclic(self):
        graph = graph_from_edges([(1, 2), (2, 3), (1, 3)])
        result = find_cycle_dfs(graph)
        assert result.acyclic
        assert result.cycle is None
        assert result.visited == 3

    def test_triangle_cycle_found(self):
        graph = graph_from_edges([(1, 2), (2, 3), (3, 1)])
        result = find_cycle_dfs(graph)
        assert not result.acyclic
        assert sorted(result.cycle) == [1, 2, 3]

    def test_self_loop_is_a_cycle(self):
        graph = graph_from_edges([(1, 1)])
        assert has_cycle(graph)
        assert find_cycle_dfs(graph).cycle == [1]

    def test_cycle_vertices_form_a_real_cycle(self):
        graph = graph_from_edges([(1, 2), (2, 3), (3, 4), (4, 2), (4, 5)])
        cycle = find_cycle_dfs(graph).cycle
        assert cycle is not None
        for index, vertex in enumerate(cycle):
            assert graph.has_edge(vertex, cycle[(index + 1) % len(cycle)])

    def test_disconnected_components(self):
        graph = graph_from_edges([(1, 2), (3, 4), (4, 3)])
        assert has_cycle(graph)

    @given(random_digraph())
    @settings(max_examples=100, deadline=None)
    def test_all_methods_agree(self, graph):
        dfs = find_cycle_dfs(graph).acyclic
        assert dfs == is_acyclic_by_scc(graph)
        assert dfs == is_acyclic_by_toposort(graph)
        assert dfs == is_acyclic_by_networkx(graph)

    @given(random_digraph())
    @settings(max_examples=100, deadline=None)
    def test_reported_cycle_is_valid(self, graph):
        result = find_cycle_dfs(graph)
        if result.cycle is not None:
            cycle = result.cycle
            for index, vertex in enumerate(cycle):
                assert graph.has_edge(vertex, cycle[(index + 1) % len(cycle)])


class TestSCC:
    def test_scc_of_dag_are_singletons(self):
        graph = graph_from_edges([(1, 2), (2, 3)])
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_scc_finds_the_cycle_component(self):
        graph = graph_from_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
        components = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3]

    def test_scc_partition_covers_all_vertices(self):
        graph = graph_from_edges([(1, 2), (2, 1), (3, 4), (4, 5), (5, 3)])
        components = strongly_connected_components(graph)
        union = sorted(v for component in components for v in component)
        assert union == [1, 2, 3, 4, 5]

    @given(random_digraph())
    @settings(max_examples=100, deadline=None)
    def test_scc_is_a_partition(self, graph):
        components = strongly_connected_components(graph)
        flattened = [v for component in components for v in component]
        assert sorted(flattened) == sorted(graph.vertices)
        assert len(flattened) == len(set(flattened))


class TestTopologicalSort:
    def test_order_respects_edges(self):
        graph = graph_from_edges([(1, 2), (1, 3), (3, 4), (2, 4)])
        order = topological_sort(graph)
        position = {vertex: index for index, vertex in enumerate(order)}
        for source, target in graph.edges():
            assert position[source] < position[target]

    def test_cyclic_graph_has_no_order(self):
        graph = graph_from_edges([(1, 2), (2, 1)])
        assert topological_sort(graph) is None

    def test_longest_path(self):
        graph = graph_from_edges([(1, 2), (2, 3), (3, 4), (1, 4)])
        assert longest_path_length(graph) == 3

    def test_longest_path_rejects_cycles(self):
        graph = graph_from_edges([(1, 2), (2, 1)])
        with pytest.raises(ValueError):
            longest_path_length(graph)

    def test_longest_path_of_empty_graph(self):
        assert longest_path_length(DirectedGraph()) == 0


class TestRankCertificate:
    def test_valid_certificate(self):
        graph = graph_from_edges([(1, 2), (2, 3)])
        rank = {1: (2,), 2: (1,), 3: (0,)}
        assert check_rank_certificate(graph, rank) == []

    def test_violating_edge_reported(self):
        graph = graph_from_edges([(1, 2)])
        rank = {1: (0,), 2: (1,)}
        assert check_rank_certificate(graph, rank) == [(1, 2)]

    def test_sink_exemption(self):
        graph = graph_from_edges([(1, 2)])
        rank = {1: (0,), 2: (5,)}
        assert check_rank_certificate(graph, rank, sinks={2}) == []

    def test_sink_with_outgoing_edges_is_a_violation(self):
        graph = graph_from_edges([(2, 1)])
        rank = {1: (0,), 2: (5,)}
        violations = check_rank_certificate(graph, rank, sinks={2})
        assert (2, 2) in violations
