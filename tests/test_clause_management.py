"""Tests for the flat-array CDCL core's clause management.

Covers what the object-clause engine never had: LBD ("glue") computation
at learning time, LBD-first learned-clause retention, arena garbage
collection with watcher/reason remapping, the one-sided comparator
ladder the acyclicity oracles encode edges with, and a randomized
brute-force fuzz over the incremental API.  The acceptance contract of
the rewrite -- verdict/escape-edge identity with the pre-rewrite engine
on the PR-4 scenario matrix -- is pinned against a committed fixture.
"""

import json
import os
import random

import pytest

from repro.checking.cnf import CNF
from repro.checking.encodings import bit_name, encode_numbering_constraint
from repro.checking.sat import (
    LBD_HISTOGRAM_CAP,
    IncrementalSatSolver,
    SatSolver,
    brute_force_satisfiable,
)
from repro.checking.tseitin import TseitinEncoder

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "data")


def _solver_with_learnts(specs):
    """A solver holding manufactured learned clauses.

    ``specs`` is a list of ``(literals, lbd, activity)``; variables are
    allocated to cover every literal.  Returns the solver and the clause
    ids in ``specs`` order.
    """
    solver = IncrementalSatSolver()
    top = max(abs(lit) for literals, _, _ in specs for lit in literals)
    solver.ensure_vars(top)
    cids = []
    for literals, lbd, activity in specs:
        cid = solver._new_clause(list(literals), learned=True)
        solver._clbd[cid] = lbd
        solver._cact[cid] = activity
        cids.append(cid)
    return solver, cids


class TestLbdComputation:
    def test_learned_clauses_record_lbd(self):
        """Drive a small UNSAT-ish search and check every learned clause's
        recorded LBD is a plausible decision-level count."""
        solver = IncrementalSatSolver()
        rng = random.Random(11)
        solver.ensure_vars(30)
        for _ in range(120):
            clause = rng.sample(range(1, 31), 3)
            solver.add_clause([var if rng.random() < 0.5 else -var
                               for var in clause])
        solver.solve()
        stats = solver.stats
        assert stats["learned"] > 0
        histogram = solver.lbd_histogram()
        assert sum(histogram.values()) == stats["learned"]
        assert all(1 <= bucket <= LBD_HISTOGRAM_CAP for bucket in histogram)
        for cid in solver._learnt_cids:
            lbd = solver._clbd[cid]
            assert 1 <= lbd <= len(solver.clause_literals(cid))

    def test_histogram_is_surfaced_in_stats(self):
        solver = IncrementalSatSolver()
        rng = random.Random(5)
        solver.ensure_vars(25)
        for _ in range(110):
            clause = rng.sample(range(1, 26), 3)
            solver.add_clause([var if rng.random() < 0.5 else -var
                               for var in clause])
        solver.solve()
        stats = solver.stats
        lbd_keys = [key for key in stats if key.startswith("lbd_")]
        assert lbd_keys, "stats must carry the LBD histogram"
        assert sum(stats[key] for key in lbd_keys) == stats["learned"]


class TestReduceDbRetention:
    def test_glue_binary_and_low_lbd_survive(self):
        """LBD-first retention: high-LBD low-activity clauses go first;
        binary and glue (LBD <= 2) clauses are immortal."""
        specs = [
            ([1, 2], 5, 0.0),          # binary: immortal
            ([1, 2, 3], 2, 0.0),       # glue: immortal
            ([1, 2, 4], 9, 0.0),       # worst: highest LBD, lowest act
            ([1, 3, 4], 9, 5.0),       # same LBD, higher activity
            ([2, 3, 4], 3, 1.0),       # lowest deletable LBD
            ([1, 2, 5], 7, 0.0),
        ]
        solver, cids = _solver_with_learnts(specs)
        solver._reduce_db()
        survivors = set(solver._learnt_cids)
        literals = {tuple(solver.clause_literals(cid)) for cid in survivors}
        assert (1, 2) in literals, "binary clause must survive"
        assert (1, 2, 3) in literals, "glue clause must survive"
        # Half of the six learnts are deleted, worst-first:
        # (lbd=9, act=0), (lbd=9, act=5), (lbd=7, act=0).
        assert solver.stats["deleted"] == 3
        assert (1, 2, 4) not in literals
        assert (1, 3, 4) not in literals
        assert (1, 2, 5) not in literals
        assert (2, 3, 4) in literals

    def test_retention_ranking_is_lbd_then_activity(self):
        specs = [
            ([1, 2, 3], 4, 9.0),   # lower LBD beats higher activity
            ([1, 2, 4], 8, 99.0),
            ([1, 3, 4], 8, 1.0),   # same LBD: lower activity goes first
            ([2, 3, 4], 8, 2.0),
        ]
        solver, cids = _solver_with_learnts(specs)
        solver._reduce_db()
        literals = {tuple(solver.clause_literals(cid))
                    for cid in solver._learnt_cids}
        assert solver.stats["deleted"] == 2
        assert (1, 2, 3) in literals        # best LBD survives
        assert (1, 2, 4) in literals        # highest activity among LBD-8
        assert (1, 3, 4) not in literals    # worst two deleted
        assert (2, 3, 4) not in literals


class TestArenaCompaction:
    def test_watchers_and_reasons_survive_gc(self):
        specs = [
            ([1, 2, 3], 8, 0.0),
            ([1, 2, 4], 8, 1.0),
            ([2, 3, 4], 8, 2.0),
            ([3, 4, 5], 8, 3.0),
        ]
        solver, _ = _solver_with_learnts(specs)
        solver.add_clause([1, 2])          # a problem clause for company
        before = solver.stats
        solver._reduce_db()
        after = solver.stats
        assert after["arena_gcs"] == before["arena_gcs"] + 1
        assert after["arena_reclaimed"] > 0
        assert solver.check_watch_invariants() == []
        # The arena is gap-free: offsets are cumulative sizes.
        offset = 0
        for cid in range(len(solver._coff)):
            assert solver._coff[cid] == offset
            offset += solver._csize[cid]
        assert offset == len(solver._arena)

    def test_solver_still_correct_after_gc(self):
        """Force deletions during a real search, then check invariants and
        cross-check the verdict on a fresh solver."""
        rng = random.Random(7)
        cnf = CNF()
        for _ in range(480):
            variables = rng.sample(range(1, 121), 3)
            cnf.add_clause([var if rng.random() < 0.5 else -var
                            for var in variables])
        # Knobs off: the default chronological backtracking finds a model
        # in too few conflicts to reach reduce-db on this workload, and the
        # test is specifically about deletions + GC during search.
        solver = SatSolver(cnf, solver_options={"chrono": 0, "vivify": False})
        result = solver.solve()
        stats = solver.engine.stats
        assert stats["deleted"] > 0, "workload must trigger reduce_db"
        assert stats["arena_gcs"] > 0
        assert solver.engine.check_watch_invariants() == []
        if result.satisfiable:
            assert cnf.evaluate({var: result.model.get(var, False)
                                 for var in cnf.variables()})
        # Still usable incrementally after GC.
        assert solver.solve([1]).satisfiable or solver.solve([-1]).satisfiable


class TestComparatorLadder:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_ladder_means_strictly_less_than(self, width):
        """Assuming the ladder root plus fixed bit values is satisfiable
        exactly when target < source as integers."""
        for target_value in range(2 ** width):
            for source_value in range(2 ** width):
                encoder = TseitinEncoder()
                root = encode_numbering_constraint(encoder, 0, 1, width)
                cnf = encoder.cnf
                for bit in range(width):
                    for index, value in ((0, target_value),
                                         (1, source_value)):
                        literal = cnf.var(bit_name(index, bit))
                        cnf.add_unit(literal if (value >> bit) & 1
                                     else -literal)
                cnf.add_unit(root)
                expected = target_value < source_value
                assert brute_force_satisfiable(cnf) == expected, \
                    (width, target_value, source_value)

    def test_ladder_is_assertable_without_bit_units(self):
        """One-sided encoding: the root can always be asserted when the
        comparison is possible (width permitting two distinct values)."""
        for width in (1, 2, 3):
            encoder = TseitinEncoder()
            root = encode_numbering_constraint(encoder, 0, 1, width)
            encoder.cnf.add_unit(root)
            assert brute_force_satisfiable(encoder.cnf)


class TestRandomizedBruteForceFuzz:
    def test_solver_agrees_with_brute_force_on_200_instances(self):
        """The tier-1 randomized cross-check: 200 seeded random CNFs,
        solved one-shot, under assumptions, and after incremental clause
        addition -- every verdict against the exponential evaluator."""
        rng = random.Random(2010)
        for instance in range(200):
            num_vars = rng.randint(1, 8)
            num_clauses = rng.randint(1, 24)
            cnf = CNF()
            for _ in range(num_clauses):
                width = rng.randint(1, 4)
                cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, num_vars)
                                for _ in range(width)])
            solver = SatSolver(cnf.copy(), seed=instance)
            assert solver.solve().satisfiable \
                == brute_force_satisfiable(cnf), f"instance {instance}"
            # A couple of assumption queries on the same solver.
            for _ in range(2):
                count = rng.randint(0, num_vars)
                assumptions = [rng.choice([1, -1]) * var for var in
                               rng.sample(range(1, num_vars + 1), count)]
                reference = cnf.copy()
                for literal in assumptions:
                    reference.add_unit(literal)
                assert solver.solve(assumptions).satisfiable \
                    == brute_force_satisfiable(reference), \
                    f"instance {instance} assumptions {assumptions}"
            # Strengthen incrementally and re-check.
            extra = [rng.choice([1, -1]) * rng.randint(1, num_vars)
                     for _ in range(rng.randint(1, 3))]
            cnf.add_clause(extra)
            solver.add_clause(extra)
            assert solver.solve().satisfiable \
                == brute_force_satisfiable(cnf), \
                f"instance {instance} after addition"

    #: Every heuristic knob on at once: EMA restarts, aggressive
    #: chronological backtracking, vivification and inprocessing.
    ALL_KNOBS = {"restart_policy": "ema", "chrono": 2,
                 "vivify": True, "inprocess": True}

    def test_all_knobs_agree_with_brute_force_and_knobs_off(self):
        """The knobs-on engine (EMA restarts + chrono + vivification +
        inprocessing) against brute force AND the knobs-off engine, over
        incremental clause batches with assumption queries in between.

        Instances are sized so the inprocessing trigger actually fires
        (>= 64 problem clauses) and bounded variable elimination, model
        reconstruction and the elimination-stack revive paths all get
        exercised; the final stats assert that the techniques ran."""
        knobs_off = {"restart_policy": "luby", "chrono": 0,
                     "vivify": False, "inprocess": False}
        rng = random.Random(88)
        totals = {"inprocessings": 0, "eliminated_vars": 0, "subsumed": 0,
                  "vivified_clauses": 0, "chrono_backtracks": 0}
        for instance in range(60):
            num_vars = rng.randint(8, 13)
            on = IncrementalSatSolver(seed=instance, **self.ALL_KNOBS)
            off = IncrementalSatSolver(seed=instance, **knobs_off)
            cnf = CNF()
            for batch in range(3):
                batch_clauses = []
                for _ in range(rng.randint(30, 45)):
                    width = rng.randint(2, 3)
                    clause = [rng.choice([1, -1]) * var for var in
                              rng.sample(range(1, num_vars + 1), width)]
                    batch_clauses.append(clause)
                    cnf.add_clause(clause)
                on.add_clauses(batch_clauses)
                off.add_clauses(batch_clauses)
                count = rng.randint(0, 3)
                assumptions = [rng.choice([1, -1]) * var for var in
                               rng.sample(range(1, num_vars + 1), count)]
                reference = cnf.copy()
                for literal in assumptions:
                    reference.add_unit(literal)
                expected = brute_force_satisfiable(reference)
                result_on = on.solve(assumptions)
                result_off = off.solve(assumptions)
                context = f"instance {instance} batch {batch} {assumptions}"
                assert result_on.satisfiable == expected, context
                assert result_off.satisfiable == expected, context
                if result_on.satisfiable:
                    # The model must cover eliminated variables too
                    # (reconstruction) and satisfy every original clause.
                    model = result_on.model
                    for literal in assumptions:
                        assert model.get(abs(literal)) == (literal > 0), \
                            context
                    for clause in cnf.clauses:
                        assert any(model.get(abs(lit)) == (lit > 0)
                                   for lit in clause), (context, clause)
                else:
                    core = result_on.core or []
                    assert set(core) <= set(assumptions), context
                    reference = cnf.copy()
                    for literal in core:
                        reference.add_unit(literal)
                    assert not brute_force_satisfiable(reference), \
                        (context, core)
            for key in totals:
                totals[key] += on.stats[key]
        # The inprocessing techniques must actually have run across the
        # campaign (chrono/vivify need deeper searches; see below).
        assert totals["inprocessings"] > 0, totals
        assert totals["eliminated_vars"] > 0, totals
        assert totals["subsumed"] > 0, totals
        # Chrono backtracking and vivification trigger on searches with
        # real backjump depth and reduce-db pressure; cross-check them on
        # phase-transition 3-SAT instances (too big for brute force --
        # compared against the knobs-off engine instead).
        deep = {"chrono_backtracks": 0, "vivified_clauses": 0}
        rng = random.Random(3)
        for instance in range(6):
            clauses = []
            for _ in range(int(60 * 4.26)):
                variables = rng.sample(range(1, 61), 3)
                clauses.append([rng.choice([1, -1]) * var
                                for var in variables])
            on = IncrementalSatSolver(seed=instance, **self.ALL_KNOBS)
            off = IncrementalSatSolver(seed=instance, **knobs_off)
            on.add_clauses(clauses)
            off.add_clauses(clauses)
            assert on.solve().satisfiable == off.solve().satisfiable, \
                f"hard instance {instance}"
            for key in deep:
                deep[key] += on.stats[key]
        assert deep["chrono_backtracks"] > 0, deep
        assert deep["vivified_clauses"] > 0, deep


ACCEPTANCE_MATRIX = (
    "mesh:3x3, routing=[xy,yx,west-first,north-last,negative-first,"
    "adaptive,zigzag], switching=wormhole; "
    "mesh:3x3, routing=xy, switching=vct; "
    "mesh:4x4, routing=[xy,yx], switching=wormhole; "
    "ring:4, routing=chain; ring:4, routing=clockwise, buffers=1; "
    "vc-mesh:3x3, vcs=1..4; vc-torus:4x4, vcs=1..4; vc-ring:4, vcs=1..4"
)


class TestEngineAcceptanceFixture:
    """The rewrite's acceptance contract against the pre-rewrite engine.

    ``tests/data/acceptance_pr4_verdicts.json`` was generated by the
    object-clause engine this PR replaced, on the PR-4 acceptance matrix.
    The flat-array engine must reproduce every verdict, escape-edge set,
    edge count and condition *bit for bit*.  Cycle cores are asserted to
    be genuine cycle witnesses over the scenario's own edges; the
    one-sided comparator encoding makes the solver's UNSAT cores tighter
    than the old engine's on a handful of scenarios (strictly smaller
    witness sets), so cores are pinned semantically, not byte-wise --
    see docs/solver.md.
    """

    @pytest.fixture(scope="class")
    def reports(self):
        from repro.core.portfolio import (
            merge_shard_reports,
            run_portfolio,
            scenarios_from_specs,
        )
        from repro.core.spec import expand_matrix

        scenarios = scenarios_from_specs(expand_matrix(ACCEPTANCE_MATRIX))
        full = run_portfolio(scenarios)
        weighted = merge_shard_reports(
            [run_portfolio(scenarios, shard=(index, 2),
                           shard_balance="weighted")
             for index in range(2)])
        return full, weighted

    def test_everything_but_cores_matches_the_pre_rewrite_engine(
            self, reports):
        full, _ = reports
        with open(os.path.join(FIXTURE_DIR,
                               "acceptance_pr4_verdicts.json")) as handle:
            fixture = json.load(handle)
        payload = full.comparable_dict()
        del payload["session_stats"]
        for entry in payload["scenarios"]:
            del entry["solver"]
            del entry["cycle_core"]
        for entry in fixture["scenarios"]:
            del entry["cycle_core"]
        assert payload == fixture

    def test_cycle_cores_are_genuine_and_no_looser_than_before(self, reports):
        """Every prone scenario's core must contain a cycle, and the cores
        must stay at least as tight as the pre-rewrite engine's: per
        scenario at most 1.5x the old witness (the observed cores are a
        strict subset-size on 4 of 5 divergent scenarios and +1 edge on
        the fifth), and strictly smaller in aggregate.  A future engine
        change that degrades cores to sloppy supersets fails here."""
        from repro.checking.graphs import DirectedGraph, find_cycle_dfs

        full, _ = reports
        with open(os.path.join(FIXTURE_DIR,
                               "acceptance_pr4_verdicts.json")) as handle:
            fixture = json.load(handle)
        old_cores = {entry["scenario"]: entry["cycle_core"]
                     for entry in fixture["scenarios"]}
        prone = [verdict for verdict in full.verdicts
                 if not verdict.deadlock_free]
        assert prone, "the acceptance matrix must contain prone scenarios"
        new_total = old_total = 0
        for verdict in prone:
            assert verdict.cycle_core, verdict.scenario
            old_size = len(old_cores[verdict.scenario])
            new_total += len(verdict.cycle_core)
            old_total += old_size
            assert len(verdict.cycle_core) <= 1.5 * old_size, \
                verdict.scenario
            witness = DirectedGraph()
            for source, target in verdict.cycle_core:
                witness.add_vertex(source)
                witness.add_vertex(target)
            for source, target in verdict.cycle_core:
                witness.add_edge(source, target)
            assert not find_cycle_dfs(witness).acyclic, verdict.scenario
        assert new_total <= old_total, (new_total, old_total)

    def test_merged_weighted_shards_equal_the_unsharded_run(self, reports):
        full, weighted = reports
        assert weighted.comparable_dict() == full.comparable_dict()

    @pytest.mark.parametrize("opts", [
        "restart_policy=luby,chrono=0,vivify=0,inprocess=0",
        "restart_policy=ema,chrono=2,vivify=1,inprocess=1",
    ], ids=["knobs-off", "all-knobs-on"])
    def test_knob_settings_leave_acceptance_verdicts_identical(
            self, reports, opts, monkeypatch):
        """Verdict byte-identity across solver heuristics: the acceptance
        matrix run with every technique off, and with every technique on
        (EMA restarts, chrono, vivification, inprocessing), must equal the
        default-knob run scenario for scenario -- heuristics may only move
        work counters, never answers, escape sets or conditions."""
        from repro.core.portfolio import run_portfolio, scenarios_from_specs
        from repro.core.spec import expand_matrix

        full, _ = reports
        monkeypatch.setenv("REPRO_SOLVER_OPTS", opts)
        report = run_portfolio(
            scenarios_from_specs(expand_matrix(ACCEPTANCE_MATRIX)))
        expected = full.comparable_dict()
        actual = report.comparable_dict()
        del expected["session_stats"]
        del actual["session_stats"]
        for entry in expected["scenarios"] + actual["scenarios"]:
            # Work counters and cores legitimately vary across heuristics;
            # verdicts, escape edges, conditions and edge counts may not.
            entry.pop("solver", None)
            entry.pop("cycle_core", None)
        assert actual == expected


class TestWeightedSharding:
    def test_lpt_assignment_is_deterministic_and_balanced(self):
        from repro.core.portfolio import weighted_shard_assignment

        costs = {"huge": 100.0, "big": 60.0, "mid": 40.0,
                 "small": 10.0, "tiny": 5.0}
        first = weighted_shard_assignment(costs, 2)
        second = weighted_shard_assignment(dict(reversed(list(costs.items()))),
                                           2)
        assert first == second, "assignment must not depend on dict order"
        # LPT: 'huge' alone on shard 0; everything else fits shard 1
        # (60 + 40 + 10 + 5 = 115 vs 100).
        assert first["huge"] == 0
        loads = [0.0, 0.0]
        for key, shard in first.items():
            loads[shard] += costs[key]
        assert max(loads) / sum(loads) < 0.6, loads

    def test_scenario_cost_grows_with_dims_and_vcs(self):
        from repro.core.portfolio import Scenario, scenario_cost
        from repro.core.spec import ScenarioSpec

        small = Scenario.from_spec(ScenarioSpec(kind="mesh", dims=(3, 3)))
        large = Scenario.from_spec(ScenarioSpec(kind="mesh", dims=(8, 8)))
        vc = Scenario.from_spec(ScenarioSpec(kind="vc-mesh", dims=(3, 3),
                                             num_vcs=4))
        assert scenario_cost(large) > scenario_cost(small)
        assert scenario_cost(vc) > scenario_cost(small)

    def test_unknown_balance_policy_is_rejected(self):
        from repro.core.portfolio import run_portfolio, standard_portfolio

        scenarios = standard_portfolio(mesh_sizes=(2,), ring_sizes=())
        with pytest.raises(ValueError, match="shard_balance"):
            run_portfolio(scenarios, shard=(0, 2), shard_balance="fair")
