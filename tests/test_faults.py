"""Tests for the fault model (:mod:`repro.network.faults`), the
fault-aware routing repair (:mod:`repro.routing.fault_aware`), the
``faults=k, seed=n`` scenario grammar, and the shard-merge invariant over
a fault matrix.
"""

import pytest

from repro.core.errors import RoutingError, SpecificationError
from repro.core.spec import ScenarioSpec, expand_matrix, fault_suffix
from repro.network.faults import (
    FaultSpec,
    FaultyMesh2D,
    FaultyRing,
    FaultyTorus2D,
    link_key,
    node_adjacency,
    sample_fault_spec,
    surviving_graph_connected,
)
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.network.ring import Ring
from repro.network.torus import Torus2D
from repro.routing.fault_aware import (
    FaultAwareRouting,
    fault_aware_mesh_routing,
    fault_aware_ring_routing,
)


def local_in(x, y):
    return Port(x, y, PortName.LOCAL, Direction.IN)


def local_out(x, y):
    return Port(x, y, PortName.LOCAL, Direction.OUT)


class TestFaultSpec:
    def test_links_are_canonically_ordered_and_sorted(self):
        spec = FaultSpec(dead_links=(((1, 0), (0, 0)), ((2, 2), (1, 2))))
        assert spec.dead_links == (((0, 0), (1, 0)), ((1, 2), (2, 2)))
        assert spec.is_dead_link((0, 0), (1, 0))
        assert spec.is_dead_link((1, 0), (0, 0))
        assert not spec.is_dead_link((0, 0), (0, 1))

    def test_describe_is_deterministic(self):
        spec = FaultSpec(dead_links=(((0, 0), (1, 0)),),
                         dead_routers=((2, 2),))
        assert spec.describe() == "L(0,0)-(1,0)+R(2,2)"
        assert FaultSpec().describe() == "none"
        assert spec.count == 2

    def test_connectivity_check_rejects_disconnections(self):
        adjacency = node_adjacency(Ring(4, bidirectional=True))
        # Any one ring link leaves a chain: still connected.
        assert surviving_graph_connected(
            adjacency, [link_key((0, 0), (1, 0))], [])
        # Two links cut the ring in two.
        assert not surviving_graph_connected(
            adjacency, [link_key((0, 0), (1, 0)),
                        link_key((2, 0), (3, 0))], [])


class TestFaultSampling:
    def test_sampling_is_deterministic(self):
        mesh = Mesh2D(3, 3)
        a = sample_fault_spec(mesh, 2, 7)
        b = sample_fault_spec(Mesh2D(3, 3), 2, 7)
        assert a == b
        assert a.count == 2
        assert a != sample_fault_spec(mesh, 2, 8) or True  # seeds may tie

    @pytest.mark.parametrize("seed", range(12))
    def test_sampled_fabrics_stay_connected(self, seed):
        mesh = Mesh2D(3, 3)
        adjacency = node_adjacency(mesh)
        spec = sample_fault_spec(mesh, 2, seed)
        assert surviving_graph_connected(adjacency, spec.dead_links,
                                         spec.dead_routers)

    def test_router_kills_can_be_disallowed(self):
        for seed in range(10):
            spec = sample_fault_spec(Ring(6, bidirectional=True), 1, seed,
                                     allow_routers=False)
            assert not spec.dead_routers

    def test_impossible_placements_raise(self):
        # A 2-node ring cannot lose a link pair and stay connected (the
        # wrap pair collapses onto one undirected key), nor can any
        # topology lose all its routers but one.
        with pytest.raises(SpecificationError):
            sample_fault_spec(Ring(2, bidirectional=True), 1, 0,
                              allow_routers=False)


class TestFaultyTopologies:
    def test_dead_link_removes_both_port_names(self):
        spec = FaultSpec(dead_links=(((0, 0), (1, 0)),))
        mesh = FaultyMesh2D(3, 3, spec)
        assert not mesh.has_port(Port(0, 0, PortName.EAST, Direction.OUT))
        assert not mesh.has_port(Port(1, 0, PortName.WEST, Direction.IN))
        # The untouched opposite-side link survives.
        assert mesh.has_port(Port(1, 0, PortName.EAST, Direction.OUT))
        mesh.validate()

    def test_dead_router_removes_the_node_and_its_links(self):
        spec = FaultSpec(dead_routers=((1, 1),))
        mesh = FaultyMesh2D(3, 3, spec)
        assert not mesh.has_node(1, 1)
        # The neighbours lose the port name pointing at the dead router.
        assert not mesh.has_port(Port(0, 1, PortName.EAST, Direction.OUT))
        assert not mesh.has_port(Port(1, 0, PortName.SOUTH, Direction.OUT))
        mesh.validate()
        assert str(mesh).endswith("~R(1,1)")

    def test_faulty_torus_and_ring_validate(self):
        torus = FaultyTorus2D(3, 3, sample_fault_spec(Torus2D(3, 3), 2, 1))
        torus.validate()
        ring = FaultyRing(6, sample_fault_spec(
            Ring(6, bidirectional=True), 1, 1, allow_routers=False))
        ring.validate()


class TestFaultAwareRouting:
    def _faulty_mesh(self, seed=1, faults=2):
        spec = sample_fault_spec(Mesh2D(3, 3), faults, seed)
        return FaultyMesh2D(3, 3, spec)

    @pytest.mark.parametrize("token", ["xy", "yx", "west-first",
                                       "north-last", "negative-first",
                                       "odd-even", "adaptive", "zigzag"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_pairs_route_and_terminate(self, token, seed):
        mesh = self._faulty_mesh(seed=seed)
        routing = fault_aware_mesh_routing(token, mesh)
        nodes = [node.coordinates for node in mesh.nodes]
        for source in nodes:
            for target in nodes:
                route = routing.compute_route(local_in(*source),
                                              local_out(*target))
                assert route[-1] == local_out(*target)
                # Every hop is a port of the surviving fabric.
                assert all(mesh.has_port(port) for port in route)

    def test_deterministic_variants_give_single_hops(self):
        mesh = self._faulty_mesh()
        routing = fault_aware_mesh_routing("xy", mesh)
        assert routing.is_deterministic
        for source in [n.coordinates for n in mesh.nodes]:
            for target in [n.coordinates for n in mesh.nodes]:
                if source == target:
                    continue
                hops = routing.next_hops(local_in(*source),
                                         local_out(*target))
                assert len(hops) == 1

    def test_routes_take_shortest_surviving_paths(self):
        # Kill the (0,0)-(1,0) link: the East route from (0,0) to (2,0)
        # must detour through row 1 -- 4 hops instead of 2.
        mesh = FaultyMesh2D(3, 3, FaultSpec(dead_links=(((0, 0), (1, 0)),)))
        routing = fault_aware_mesh_routing("xy", mesh)
        route = routing.compute_route(local_in(0, 0), local_out(2, 0))
        hops = sum(1 for a, b in zip(route, route[1:]) if a.node != b.node)
        assert hops == 4

    def test_adaptive_variant_is_not_deterministic(self):
        mesh = self._faulty_mesh()
        routing = fault_aware_mesh_routing("adaptive", mesh)
        assert not routing.is_deterministic

    def test_unknown_token_raises(self):
        with pytest.raises(RoutingError, match="no fault-aware variant"):
            fault_aware_mesh_routing("bogus", self._faulty_mesh())
        with pytest.raises(RoutingError, match="no fault-aware variant"):
            fault_aware_ring_routing("bogus", Ring(4, bidirectional=True))

    def test_ring_tokens_keep_their_character_on_ties(self):
        # On a healthy even ring the antipodal distance ties; clockwise
        # breaks the tie East, chain breaks it West.
        ring = Ring(4, bidirectional=True)
        clockwise = fault_aware_ring_routing("clockwise", ring)
        chain = fault_aware_ring_routing("chain", ring)
        east = clockwise.next_hops(local_in(0, 0), local_out(2, 0))
        west = chain.next_hops(local_in(0, 0), local_out(2, 0))
        assert east == [Port(0, 0, PortName.EAST, Direction.OUT)]
        assert west == [Port(0, 0, PortName.WEST, Direction.OUT)]

    def test_unreachable_destination_raises(self):
        mesh = self._faulty_mesh()
        routing = FaultAwareRouting(mesh, "xy")
        with pytest.raises(RoutingError):
            routing.next_hops(local_in(0, 0), Port(9, 9, PortName.LOCAL,
                                                   Direction.OUT))


class TestFaultSpecGrammar:
    def test_fault_fields_round_trip(self):
        spec = ScenarioSpec(kind="mesh", dims=(3, 3), routing="xy",
                            switching="wormhole", faults=2, fault_seed=5)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert fault_suffix(spec) == "/f2s5"
        assert fault_suffix(ScenarioSpec(kind="mesh", dims=(3, 3))) == ""

    def test_matrix_expands_fault_and_seed_axes(self):
        specs = expand_matrix("mesh:3x3, routing=xy, faults=0..2, seed=0..1")
        assert [(s.faults, s.fault_seed) for s in specs] == [
            (0, 0), (0, 0), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_healthy_specs_collapse_their_seed(self):
        specs = expand_matrix("mesh:3x3, routing=xy, faults=0, seed=0..5")
        assert all(spec.fault_seed == 0 for spec in specs)
        assert len(set(specs)) == 1

    def test_underscore_routing_aliases_normalize(self):
        specs = expand_matrix("mesh:3x3, routing=[west_first,odd_even]")
        assert [spec.routing for spec in specs] == ["west-first", "odd-even"]

    def test_faulty_specs_name_with_the_fault_suffix(self):
        spec = expand_matrix("mesh:3x3, routing=xy, faults=1, seed=3")[0]
        assert spec.scenario_name() == "mesh-3x3/Rxy/Swh/f1s3"

    def test_negative_faults_are_rejected(self):
        with pytest.raises(SpecificationError, match="non-negative"):
            ScenarioSpec(kind="mesh", dims=(3, 3), routing="xy",
                         faults=-1).normalized()

    @pytest.mark.parametrize("kind,dims", [
        ("mesh", (3, 3)), ("ring", (5,)), ("vc-mesh", (3, 3)),
        ("vc-torus", (3, 3)), ("vc-ring", (5,)),
    ])
    def test_every_kind_builds_its_fault_variant(self, kind, dims):
        spec = ScenarioSpec(kind=kind, dims=dims, faults=1, fault_seed=0,
                            num_vcs=2 if kind.startswith("vc-") else 1)
        instance = spec.normalized().build()
        instance.topology.validate() if not kind.startswith("vc-") else None
        assert "~" in str(instance.topology) or "~" in instance.name


FAULT_MATRIX = (
    "mesh:3x3, routing=[west_first,north_last,negative_first,odd_even], "
    "faults=0..2, seed=0..1; "
    "ring:4, routing=[chain,clockwise], faults=0..1, seed=0..1; "
    "vc-mesh:3x3, vcs=2, faults=0..1, seed=0..1"
)


class TestFaultMatrixSharding:
    """Satellite invariant: merged shard reports over a fault matrix are
    byte-identical to the unsharded run, for both balance policies."""

    @pytest.fixture(scope="class")
    def full_report(self):
        from repro.core.portfolio import run_portfolio, scenarios_from_specs

        scenarios = scenarios_from_specs(expand_matrix(FAULT_MATRIX))
        assert len(scenarios) >= 24
        return scenarios, run_portfolio(scenarios, cross_check=True)

    @pytest.mark.parametrize("balance", ["hash", "weighted"])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_merged_shards_equal_the_unsharded_run(self, full_report,
                                                   balance, shards):
        from repro.core.portfolio import (
            merge_shard_reports,
            run_portfolio,
            scenarios_from_specs,
        )

        scenarios, full = full_report
        merged = merge_shard_reports(
            [run_portfolio(scenarios, shard=(index, shards),
                           shard_balance=balance)
             for index in range(shards)])
        assert merged.comparable_dict() == full.comparable_dict()

    def test_fault_verdicts_depend_on_the_fault_set(self, full_report):
        """The sweep must contain genuinely fault-broken designs: at least
        one turn-model scenario flips to prone under some fault set while
        its healthy base stays free."""
        _, report = full_report
        verdicts = {v.scenario: v.deadlock_free for v in report.verdicts}
        healthy_free = [name for name, free in verdicts.items()
                        if free and "/f" not in name]
        faulty_prone = [name for name, free in verdicts.items()
                        if not free and "/f" in name]
        assert healthy_free and faulty_prone


FAULT_ACCEPTANCE_MATRIX = (
    "mesh:3x3, routing=[west_first,north_last,negative_first,odd_even], "
    "faults=0..2, seed=0..1; "
    "ring:4, routing=[chain,clockwise], faults=0..1, seed=0; "
    "vc-mesh:3x3, vcs=1..2, faults=0..1, seed=0; "
    "vc-torus:3x3, vcs=2, faults=1, seed=0..1; "
    "vc-ring:4, vcs=2, faults=1, seed=0"
)


class TestFaultAcceptanceFixture:
    """Pinned verdicts for the turn-model / fault family.

    ``tests/data/acceptance_faults.json`` byte-pins the portfolio report
    of :data:`FAULT_ACCEPTANCE_MATRIX` -- the fault sampler, the faulty
    topologies, the fault-aware reroutes and the verdict engine all feed
    into it, so any future rewrite of any of those layers must reproduce
    these verdicts bit for bit (pattern of
    ``acceptance_pr4_verdicts.json``).  Cycle cores are pinned
    semantically, not byte-wise: each must be a genuine cycle witness.
    """

    @pytest.fixture(scope="class")
    def report(self):
        from repro.core.portfolio import run_portfolio, scenarios_from_specs

        scenarios = scenarios_from_specs(
            expand_matrix(FAULT_ACCEPTANCE_MATRIX))
        return run_portfolio(scenarios)

    def test_verdicts_match_the_pinned_fixture(self, report):
        import json
        import os

        fixture_path = os.path.join(os.path.dirname(__file__), "data",
                                    "acceptance_faults.json")
        with open(fixture_path, encoding="utf-8") as handle:
            fixture = json.load(handle)
        payload = report.comparable_dict()
        del payload["session_stats"]
        for entry in payload["scenarios"]:
            del entry["solver"]
            del entry["cycle_core"]
        for entry in fixture["scenarios"]:
            del entry["cycle_core"]
        assert payload == fixture

    def test_prone_cores_are_genuine_cycle_witnesses(self, report):
        from repro.checking.graphs import DirectedGraph, find_cycle_dfs

        prone = [v for v in report.verdicts if not v.deadlock_free]
        assert prone, "the fault matrix must contain prone scenarios"
        for verdict in prone:
            assert verdict.cycle_core, verdict.scenario
            witness = DirectedGraph()
            for source, target in verdict.cycle_core:
                witness.add_edge(source, target)
            assert not find_cycle_dfs(witness).acyclic, verdict.scenario
