"""Tests for travels and travel progress records."""

import pytest

from repro.core.configuration import NOT_INJECTED, TravelProgress
from repro.core.travel import Travel, check_unique_ids, fresh_travel_id, make_travel
from repro.network.flit import FlitKind
from repro.network.port import Direction, Port, PortName


def _ports(*specs):
    return tuple(Port(x, y, name, direction) for x, y, name, direction in specs)


SOURCE = Port(0, 0, PortName.LOCAL, Direction.IN)
DEST = Port(1, 0, PortName.LOCAL, Direction.OUT)
ROUTE = _ports((0, 0, PortName.LOCAL, Direction.IN),
               (0, 0, PortName.EAST, Direction.OUT),
               (1, 0, PortName.WEST, Direction.IN),
               (1, 0, PortName.LOCAL, Direction.OUT))


class TestTravel:
    def test_make_travel_allocates_fresh_ids(self):
        a = make_travel(SOURCE, DEST)
        b = make_travel(SOURCE, DEST)
        assert a.travel_id != b.travel_id

    def test_fresh_travel_id_monotone(self):
        assert fresh_travel_id() < fresh_travel_id()

    def test_num_flits_validated(self):
        with pytest.raises(ValueError):
            Travel(travel_id=1, source=SOURCE, destination=DEST, num_flits=0)

    def test_with_route(self):
        travel = Travel(travel_id=1, source=SOURCE, destination=DEST,
                        num_flits=2)
        routed = travel.with_route(ROUTE)
        assert routed.has_route
        assert routed.route_length == 4
        assert not travel.has_route  # original unchanged (immutable)

    def test_with_route_checks_endpoints(self):
        travel = Travel(travel_id=1, source=SOURCE, destination=DEST)
        with pytest.raises(ValueError):
            travel.with_route(ROUTE[1:])
        with pytest.raises(ValueError):
            travel.with_route(ROUTE[:-1])
        with pytest.raises(ValueError):
            travel.with_route(())

    def test_route_length_requires_route(self):
        travel = Travel(travel_id=1, source=SOURCE, destination=DEST)
        with pytest.raises(ValueError):
            _ = travel.route_length

    def test_flits(self):
        travel = Travel(travel_id=9, source=SOURCE, destination=DEST,
                        num_flits=3)
        flits = travel.flits()
        assert len(flits) == 3
        assert flits[0].kind is FlitKind.HEADER
        assert all(f.travel_id == 9 for f in flits)

    def test_str_mentions_flits(self):
        travel = Travel(travel_id=1, source=SOURCE, destination=DEST,
                        num_flits=5)
        assert "5 flits" in str(travel)

    def test_check_unique_ids(self):
        a = Travel(travel_id=1, source=SOURCE, destination=DEST)
        b = Travel(travel_id=1, source=SOURCE, destination=DEST)
        with pytest.raises(ValueError):
            check_unique_ids([a, b])
        check_unique_ids([a])


class TestTravelProgress:
    def _routed(self, num_flits=3):
        return Travel(travel_id=1, source=SOURCE, destination=DEST,
                      num_flits=num_flits, route=ROUTE)

    def test_initial_positions(self):
        record = TravelProgress.initial(self._routed())
        assert record.positions == [NOT_INJECTED] * 3
        assert not record.is_started
        assert not record.is_arrived
        assert record.header_port is None

    def test_initial_requires_route(self):
        unrouted = Travel(travel_id=1, source=SOURCE, destination=DEST)
        with pytest.raises(ValueError):
            TravelProgress.initial(unrouted)

    def test_header_port(self):
        record = TravelProgress.initial(self._routed())
        record.positions[0] = 1
        assert record.header_port == ROUTE[1]

    def test_is_arrived(self):
        record = TravelProgress.initial(self._routed(num_flits=2))
        record.positions[:] = [4, 4]
        assert record.is_arrived
        assert record.header_port is None

    def test_remaining_route_length(self):
        record = TravelProgress.initial(self._routed())
        assert record.remaining_route_length == 4  # full route before injection
        record.positions[0] = 0
        assert record.remaining_route_length == 4
        record.positions[0] = 2
        assert record.remaining_route_length == 2
        record.positions[0] = 4
        assert record.remaining_route_length == 0

    def test_remaining_flit_hops_counts_every_move(self):
        record = TravelProgress.initial(self._routed(num_flits=2))
        # Each flit: 4 hops along the route + 1 injection = 5 moves.
        assert record.remaining_flit_hops() == 10
        record.positions[0] = 0
        assert record.remaining_flit_hops() == 9
        record.positions[:] = [4, 4]
        assert record.remaining_flit_hops() == 0

    def test_flits_in_network_and_ejected(self):
        record = TravelProgress.initial(self._routed())
        record.positions[:] = [4, 2, NOT_INJECTED]
        assert record.flits_in_network == 1
        assert record.flits_ejected == 1

    def test_occupied_route_indices(self):
        record = TravelProgress.initial(self._routed())
        record.positions[:] = [3, 2, 2]
        assert record.occupied_route_indices() == [2, 3]

    def test_flit_order_check(self):
        record = TravelProgress.initial(self._routed())
        record.positions[:] = [1, 2, 0]
        with pytest.raises(AssertionError):
            record.check_flit_order()
        record.positions[:] = [2, 2, 1]
        record.check_flit_order()

    def test_copy_is_independent(self):
        record = TravelProgress.initial(self._routed())
        clone = record.copy()
        clone.positions[0] = 3
        assert record.positions[0] == NOT_INJECTED
