"""Property-based tests of the wormhole model's structural invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.measure import flit_hop_measure, route_length_measure
from repro.hermes import build_hermes_instance
from repro.switching.wormhole import WormholeSwitching


@st.composite
def workload(draw):
    """A random mesh size, buffer depth and message list."""
    width = draw(st.integers(2, 3))
    height = draw(st.integers(2, 3))
    capacity = draw(st.integers(1, 3))
    instance = build_hermes_instance(width, height, buffer_capacity=capacity)
    nodes = [(x, y) for x in range(width) for y in range(height)]
    count = draw(st.integers(1, 6))
    travels = []
    for _ in range(count):
        source = draw(st.sampled_from(nodes))
        target = draw(st.sampled_from(nodes))
        if source == target:
            continue
        flits = draw(st.integers(1, 4))
        travels.append(instance.make_travel(source, target, num_flits=flits))
    return instance, travels


def run_with_invariant(instance, travels, invariant):
    """Run to completion, calling ``invariant(config)`` after every step."""
    config = instance.routing.route_configuration(
        instance.initial_configuration(travels))
    switching = instance.switching
    steps = 0
    while config.travels and steps < 500:
        config = switching.step(config)
        invariant(config)
        steps += 1
    assert not config.travels, "workload did not evacuate within 500 steps"
    return config


class TestWormInvariants:
    @given(workload())
    @settings(max_examples=40, deadline=None)
    def test_state_and_progress_stay_consistent(self, data):
        instance, travels = data
        if not travels:
            return
        run_with_invariant(instance, travels,
                           lambda config: config.check_consistency())

    @given(workload())
    @settings(max_examples=40, deadline=None)
    def test_worm_contiguity(self, data):
        """Consecutive flits are never more than one route hop apart.

        This is the invariant that makes the port-level deadlock analysis
        sound: a port stays owned by a worm from header entry to tail exit.
        """
        instance, travels = data
        if not travels:
            return

        def contiguous(config):
            for record in config.progress.values():
                positions = [p for p in record.positions]
                for earlier, later in zip(positions, positions[1:]):
                    if later == record.ejected_position:
                        continue
                    if later < 0 or earlier < 0:
                        continue
                    if earlier == record.ejected_position:
                        continue
                    assert earlier - later <= 1

        run_with_invariant(instance, travels, contiguous)

    @given(workload())
    @settings(max_examples=40, deadline=None)
    def test_flit_order_never_violated(self, data):
        instance, travels = data
        if not travels:
            return

        def ordered(config):
            for record in config.progress.values():
                record.check_flit_order()

        run_with_invariant(instance, travels, ordered)

    @given(workload())
    @settings(max_examples=40, deadline=None)
    def test_refined_measure_strictly_decreases(self, data):
        instance, travels = data
        if not travels:
            return
        config = instance.routing.route_configuration(
            instance.initial_configuration(travels))
        switching = instance.switching
        previous = flit_hop_measure(config)
        steps = 0
        while config.travels and steps < 500:
            config = switching.step(config)
            current = flit_hop_measure(config)
            assert current < previous
            previous = current
            steps += 1

    @given(workload())
    @settings(max_examples=40, deadline=None)
    def test_paper_measure_is_monotone(self, data):
        instance, travels = data
        if not travels:
            return
        config = instance.routing.route_configuration(
            instance.initial_configuration(travels))
        switching = instance.switching
        previous = route_length_measure(config)
        steps = 0
        while config.travels and steps < 500:
            config = switching.step(config)
            current = route_length_measure(config)
            assert current <= previous
            previous = current
            steps += 1

    @given(workload())
    @settings(max_examples=40, deadline=None)
    def test_every_message_arrives_exactly_once(self, data):
        instance, travels = data
        if not travels:
            return
        result = instance.run(travels, max_steps=1000)
        assert result.evacuated
        arrived = [t.travel_id for t in result.final.arrived]
        assert sorted(arrived) == sorted(t.travel_id for t in travels)
        assert len(set(arrived)) == len(arrived)

    @given(workload())
    @settings(max_examples=30, deadline=None)
    def test_single_travel_steps_commute_with_arrivals(self, data):
        """Advancing travels one at a time also evacuates everything."""
        instance, travels = data
        if not travels:
            return
        config = instance.routing.route_configuration(
            instance.initial_configuration(travels))
        switching = instance.switching
        rng = random.Random(0)
        steps = 0
        while config.travels and steps < 3000:
            movable = switching.movable_travels(config)
            assert movable, "XY routing must never deadlock"
            chosen = rng.choice(movable)
            config = switching.advance_travel(config, chosen)
            steps += 1
        assert not config.travels
