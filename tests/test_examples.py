"""Smoke tests: every example script runs to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {script}"
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        output = capsys.readouterr().out
        assert "CorrThm   : holds" in output
        assert "EvacThm   : holds" in output

    def test_verify_hermes_small(self, capsys):
        run_example("verify_hermes.py", ["3"])
        output = capsys.readouterr().out
        assert "all hold" in output
        assert "(C-3) holds for all mesh sizes: True" in output
        assert "Overall" in output

    def test_deadlock_demo(self, capsys):
        run_example("deadlock_demo.py")
        output = capsys.readouterr().out
        assert "VIOLATED" in output
        assert "deadlock reachable" in output
        assert "constructed configuration is a deadlock: True" in output

    def test_custom_noc(self, capsys):
        run_example("custom_noc.py")
        output = capsys.readouterr().out
        assert "VERDICT: verified" in output
        assert "evacuation: True" in output

    def test_dependency_graph_figure(self, capsys):
        run_example("dependency_graph_figure.py", ["2", "2"])
        output = capsys.readouterr().out
        assert "acyclic (all methods agree): True" in output
        assert "statistics" in output
