"""Tests for the declarative scenario-spec layer (`repro.core.spec`):
round-trip serialisation, the builder registry, deterministic matrix
expansion, group-stable sharding, and the bit-identical equivalence of
spec-driven portfolios with the legacy hand-built construction."""

import json

import pytest

from repro.core.errors import SpecificationError
from repro.core.portfolio import (
    Scenario,
    merge_shard_reports,
    run_portfolio,
    scenarios_from_specs,
    shard_index_of,
    standard_matrix,
    standard_portfolio,
    vc_escape_matrix,
)
from repro.core.spec import (
    ScenarioSpec,
    expand_matrix,
    spec_registry,
)

SPEC_SAMPLES = [
    ScenarioSpec(kind="mesh", dims=(3, 3), routing="xy",
                 switching="wormhole"),
    ScenarioSpec(kind="mesh", dims=(4, 2), routing="zigzag",
                 switching="saf", buffers=3),
    ScenarioSpec(kind="ring", dims=(5,), routing="clockwise", buffers=1),
    ScenarioSpec(kind="vc-mesh", dims=(3, 3), num_vcs=4, escape="xy",
                 route_policy="spread"),
    ScenarioSpec(kind="vc-torus", dims=(4, 4), num_vcs=2,
                 escape="dateline"),
    ScenarioSpec(kind="vc-ring", dims=(6,), num_vcs=3, label="my-ring",
                 group="my-group"),
]


class TestScenarioSpecRoundTrip:
    @pytest.mark.parametrize("spec", SPEC_SAMPLES,
                             ids=lambda s: f"{s.kind}-{s.dims_text()}")
    def test_to_dict_from_dict_is_exact(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", SPEC_SAMPLES,
                             ids=lambda s: f"{s.kind}-{s.dims_text()}")
    def test_survives_json_serialisation(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_specs_are_hashable_cache_keys(self):
        spec = ScenarioSpec(kind="mesh", dims=(3, 3), routing="xy")
        twin = ScenarioSpec.from_dict(spec.to_dict())
        assert hash(spec) == hash(twin)
        assert {spec: 1}[twin] == 1

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecificationError, match="unknown spec fields"):
            ScenarioSpec.from_dict({"kind": "mesh", "dims": [3, 3],
                                    "routering": "xy"})

    def test_from_dict_requires_kind_and_dims(self):
        with pytest.raises(SpecificationError, match="dims"):
            ScenarioSpec.from_dict({"kind": "mesh"})

    def test_label_and_group_override_derived_names(self):
        spec = SPEC_SAMPLES[-1]
        assert spec.scenario_name() == "my-ring"
        assert spec.group_key() == "my-group"


class TestSpecRegistry:
    def test_all_shipped_kinds_are_registered(self):
        assert set(spec_registry().kinds()) == {
            "mesh", "ring", "vc-mesh", "vc-torus", "vc-ring"}

    def test_unknown_kind_is_a_specification_error(self):
        with pytest.raises(SpecificationError, match="unknown scenario kind"):
            ScenarioSpec(kind="hypercube", dims=(3,)).build()

    def test_unsupported_routing_is_rejected(self):
        with pytest.raises(SpecificationError, match="routing"):
            ScenarioSpec(kind="mesh", dims=(3, 3),
                         routing="clockwise").normalized()

    def test_port_level_kinds_reject_extra_vcs(self):
        with pytest.raises(SpecificationError, match="vc-"):
            ScenarioSpec(kind="ring", dims=(4,), num_vcs=2).normalized()

    def test_escape_style_mismatch_is_rejected(self):
        with pytest.raises(SpecificationError, match="escape"):
            ScenarioSpec(kind="vc-mesh", dims=(3, 3), num_vcs=2,
                         escape="dateline").normalized()

    def test_normalized_fills_kind_defaults(self):
        spec = ScenarioSpec(kind="mesh", dims=(3, 3)).normalized()
        assert spec.routing == "xy"
        assert spec.switching == "wormhole"
        vc = ScenarioSpec(kind="vc-torus", dims=(4, 4)).normalized()
        assert vc.escape == "dateline"

    def test_build_is_the_single_construction_path(self):
        instance = ScenarioSpec(kind="mesh", dims=(3, 3), routing="yx",
                                switching="vct").build()
        assert instance.name == "HERMES-3x3"
        assert instance.routing.name() == "Ryx"
        assert instance.switching.name() == "Svct"
        ring = ScenarioSpec(kind="vc-ring", dims=(4,), num_vcs=2).build()
        assert ring.name == "VC-ring-4-2vc"
        assert ring.num_vcs == 2

    def test_instance_cache_memoises_spec_builds(self):
        from repro.core.cache import reset_instance_cache

        cache = reset_instance_cache()
        spec = ScenarioSpec(kind="mesh", dims=(2, 2), routing="xy",
                            switching="wormhole")
        first = cache.instance_for(spec)
        again = cache.instance_for(ScenarioSpec.from_dict(spec.to_dict()))
        assert first is again
        assert cache.stats()["instances"] == 1
        reset_instance_cache()
        assert cache.stats()["instances"] == 0


class TestMatrixExpansion:
    def test_same_grid_same_ordered_specs(self):
        grid = ("mesh:2..4x2..4, routing=[xy,adaptive], switching=wormhole; "
                "vc-mesh:3x3, vcs=1..4; ring:4..6, routing=chain")
        first = expand_matrix(grid)
        second = expand_matrix(grid)
        assert first == second
        assert [spec.scenario_name() for spec in first] \
            == [spec.scenario_name() for spec in second]
        assert len(first) == 9 * 2 + 4 + 3

    def test_expansion_order_is_pinned(self):
        specs = expand_matrix(
            "mesh:2x2..3, routing=[yx,xy]; vc-ring:4, vcs=[2,1]")
        assert [spec.scenario_name() for spec in specs] == [
            "mesh-2x2/Ryx/Swh",
            "mesh-2x2/Rxy/Swh",
            "mesh-2x3/Ryx/Swh",
            "mesh-2x3/Rxy/Swh",
            "vc-ring-4/Rshortest-ring+esc-dateline/2vc",
            "vc-ring-4/Rshortest-ring+esc-dateline/1vc",
        ]

    def test_dims_alternatives_and_ranges(self):
        specs = expand_matrix("mesh:2x2|3..4x3, routing=xy")
        assert [spec.dims for spec in specs] == [(2, 2), (3, 3), (4, 3)]

    def test_list_of_expressions_concatenates_in_order(self):
        specs = expand_matrix(["ring:4, routing=chain",
                               "ring:4, routing=clockwise"])
        assert [spec.routing for spec in specs] == ["chain", "clockwise"]

    def test_parameters_expand_in_declaration_order(self):
        specs = expand_matrix("vc-torus:4x4, vcs=[4,2,1]")
        assert [spec.num_vcs for spec in specs] == [4, 2, 1]

    def test_vcs_range_and_buffers(self):
        specs = expand_matrix("vc-mesh:3x3, vcs=1..3, buffers=4")
        assert [spec.num_vcs for spec in specs] == [1, 2, 3]
        assert all(spec.buffers == 4 for spec in specs)

    def test_group_override_applies_to_the_term(self):
        specs = expand_matrix("ring:4, routing=[chain,clockwise], group=G")
        assert all(spec.group_key() == "G" for spec in specs)

    @pytest.mark.parametrize("bad, fragment", [
        ("mesh", "does not match"),
        ("mesh:", "does not match"),
        ("mesh:3x3, routing=", "key=value"),
        ("mesh:3x3, colour=red", "unknown matrix key"),
        ("mesh:3x3, routing=[xy", "unbalanced"),
        ("mesh:5..3, routing=xy", "empty range"),
        ("mesh:3x3, routing=xy, routing=yx", "duplicate"),
        ("warp:3x3", "unknown scenario kind"),
        ("mesh:3x3, vcs=2", "vc-"),
        ("mesh:3x3x3, routing=xy", "dimension"),
    ])
    def test_invalid_grids_fail_eagerly(self, bad, fragment):
        with pytest.raises(SpecificationError, match=fragment):
            expand_matrix(bad)

    def test_standard_matrix_reproduces_legacy_names(self):
        specs = expand_matrix(standard_matrix(mesh_sizes=(3,),
                                              ring_sizes=(4,)))
        assert [spec.scenario_name() for spec in specs] == [
            "mesh-3x3/Rxy/Swh", "mesh-3x3/Ryx/Swh",
            "mesh-3x3/Rwest-first/Swh", "mesh-3x3/Rnorth-last/Swh",
            "mesh-3x3/Rnegative-first/Swh", "mesh-3x3/Rodd-even/Swh",
            "mesh-3x3/Radaptive/Swh",
            "mesh-3x3/Rzigzag/Swh", "mesh-3x3/Rxy/Svct",
            "ring-4/chain", "ring-4/clockwise",
        ]


class TestSharding:
    def _groups(self):
        specs = expand_matrix(standard_matrix(mesh_sizes=(2, 3, 4),
                                              ring_sizes=(4, 8))
                              + vc_escape_matrix(mesh_sizes=(3,),
                                                 torus_sizes=(4,),
                                                 vc_counts=(1, 2)))
        return specs, sorted({spec.group_key() for spec in specs})

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_partition_is_complete_and_disjoint(self, shards):
        specs, groups = self._groups()
        assignment = {group: shard_index_of(group, shards)
                      for group in groups}
        assert set(assignment.values()) <= set(range(shards))
        # Completeness: every group lands on exactly one shard; the union
        # of the per-shard group sets is the whole matrix.
        shard_sets = [{group for group, shard in assignment.items()
                       if shard == index} for index in range(shards)]
        union = set().union(*shard_sets)
        assert union == set(groups)
        assert sum(len(shard_set) for shard_set in shard_sets) == len(groups)

    def test_assignment_is_stable_across_calls(self):
        _, groups = self._groups()
        for group in groups:
            assert shard_index_of(group, 4) == shard_index_of(group, 4)

    def test_sharded_runs_merge_to_the_unsharded_report(self):
        scenarios = scenarios_from_specs(expand_matrix(
            "mesh:3x3, routing=[xy,zigzag]; ring:4, routing=[chain,clockwise];"
            "vc-torus:4x4, vcs=1..2"))
        full = run_portfolio(scenarios)
        reports = [run_portfolio(scenarios, shard=(index, 2))
                   for index in range(2)]
        # This matrix genuinely splits: both shards carry work.
        assert all(report.verdicts for report in reports)
        for index, report in enumerate(reports):
            assert report.shard == (index, 2)
            for verdict in report.verdicts:
                assert verdict.shard == (index, 2)
        names = [{verdict.scenario for verdict in report.verdicts}
                 for report in reports]
        assert not names[0] & names[1]
        merged = merge_shard_reports(reports)
        assert merged.comparable_dict() == full.comparable_dict()

    def test_shards_never_split_a_session_group(self):
        scenarios = scenarios_from_specs(expand_matrix(
            "vc-mesh:3x3, vcs=1..4; vc-torus:4x4, vcs=1..2"))
        group_names = {}
        for scenario in scenarios:
            group_names.setdefault(scenario.group_key(),
                                   set()).add(scenario.name)
        for index in range(2):
            report = run_portfolio(scenarios, shard=(index, 2),
                                   analyse_failures=False)
            shard_names = {verdict.scenario for verdict in report.verdicts}
            for group, names in group_names.items():
                # A group is either fully on this shard or fully elsewhere.
                assert shard_names & names in (names, set())

    def test_out_of_range_shard_is_rejected(self):
        scenarios = standard_portfolio(mesh_sizes=(2,), ring_sizes=())
        with pytest.raises(ValueError):
            run_portfolio(scenarios, shard=(2, 2))
        with pytest.raises(ValueError):
            run_portfolio(scenarios, shard=(0, 0))

    def test_merge_rejects_overlapping_reports(self):
        scenarios = standard_portfolio(mesh_sizes=(2,), ring_sizes=())
        report = run_portfolio(scenarios)
        with pytest.raises(ValueError, match="overlap"):
            merge_shard_reports([report, report])

    def test_merge_rejects_an_incomplete_shard_set(self):
        """A lost shard artifact must not masquerade as a full run."""
        scenarios = standard_portfolio(mesh_sizes=(2,), ring_sizes=(4,))
        half = run_portfolio(scenarios, shard=(0, 2))
        with pytest.raises(ValueError, match="missing shard"):
            merge_shard_reports([half])

    def test_merge_rejects_mismatched_shard_counts(self):
        scenarios = standard_portfolio(mesh_sizes=(2,), ring_sizes=(4,))
        with pytest.raises(ValueError, match="shard count"):
            merge_shard_reports([run_portfolio(scenarios, shard=(0, 2)),
                                 run_portfolio(scenarios, shard=(1, 3))])


def _legacy_acceptance_scenarios():
    """The >= 24-scenario grid, hand-built through the legacy builders.

    This is the historical construction path -- direct ``build_*`` calls
    with explicitly pickled instances -- kept here verbatim as the
    reference the declarative layer must reproduce bit for bit.
    """
    from repro.hermes import build_hermes_instance
    from repro.network.mesh import Mesh2D
    from repro.ringnoc import (
        build_chain_ring_instance,
        build_clockwise_ring_instance,
    )
    from repro.routing.adaptive import (
        FullyAdaptiveMinimalRouting,
        ZigZagRouting,
    )
    from repro.routing.turn_model import (
        NegativeFirstRouting,
        NorthLastRouting,
        WestFirstRouting,
    )
    from repro.routing.xy import XYRouting
    from repro.routing.yx import YXRouting
    from repro.switching.virtual_cut_through import VirtualCutThroughSwitching
    from repro.vcnoc import (
        build_vc_mesh_instance,
        build_vc_ring_instance,
        build_vc_torus_instance,
    )

    scenarios = []
    mesh = Mesh2D(3, 3)
    for routing in [XYRouting(mesh), YXRouting(mesh), WestFirstRouting(mesh),
                    NorthLastRouting(mesh), NegativeFirstRouting(mesh),
                    FullyAdaptiveMinimalRouting(mesh), ZigZagRouting(mesh)]:
        scenarios.append(Scenario(
            name=f"mesh-3x3/{routing.name()}/Swh",
            instance=build_hermes_instance(3, 3, routing=routing),
            group="mesh-3x3"))
    scenarios.append(Scenario(
        name="mesh-3x3/Rxy/Svct",
        instance=build_hermes_instance(
            3, 3, routing=XYRouting(mesh),
            switching=VirtualCutThroughSwitching()),
        group="mesh-3x3"))
    mesh4 = Mesh2D(4, 4)
    for routing in [XYRouting(mesh4), YXRouting(mesh4)]:
        scenarios.append(Scenario(
            name=f"mesh-4x4/{routing.name()}/Swh",
            instance=build_hermes_instance(4, 4, routing=routing),
            group="mesh-4x4"))
    scenarios.append(Scenario(
        name="ring-4/chain", instance=build_chain_ring_instance(4),
        group="ring-4"))
    scenarios.append(Scenario(
        name="ring-4/clockwise", instance=build_clockwise_ring_instance(4),
        group="ring-4"))
    for vcs in (1, 2, 3, 4):
        scenarios.append(Scenario(
            name=f"vc-mesh-3x3/Radaptive+esc-xy/{vcs}vc",
            instance=build_vc_mesh_instance(3, 3, num_vcs=vcs),
            group="vc-mesh-3x3"))
    for vcs in (1, 2, 3, 4):
        scenarios.append(Scenario(
            name=f"vc-torus-4x4/Rxy-torus+esc-dateline/{vcs}vc",
            instance=build_vc_torus_instance(4, 4, num_vcs=vcs),
            group="vc-torus-4x4"))
    for vcs in (1, 2, 3, 4):
        scenarios.append(Scenario(
            name=f"vc-ring-4/Rshortest-ring+esc-dateline/{vcs}vc",
            instance=build_vc_ring_instance(4, num_vcs=vcs),
            group="vc-ring-4"))
    return scenarios


ACCEPTANCE_MATRIX = (
    "mesh:3x3, routing=[xy,yx,west-first,north-last,negative-first,"
    "adaptive,zigzag], switching=wormhole; "
    "mesh:3x3, routing=xy, switching=vct; "
    "mesh:4x4, routing=[xy,yx], switching=wormhole; "
    "ring:4, routing=chain; ring:4, routing=clockwise, buffers=1; "
    "vc-mesh:3x3, vcs=1..4; vc-torus:4x4, vcs=1..4; vc-ring:4, vcs=1..4"
)


class TestSpecPortfolioEquivalence:
    """The PR's acceptance contract: a matrix-expanded sweep of >= 24
    mesh/torus/ring x routing x 1-4 VC scenarios produces verdicts
    bit-identical to the same scenarios built via the legacy builders,
    sharded or not."""

    def test_matrix_run_matches_legacy_builders_bit_for_bit(self):
        legacy = _legacy_acceptance_scenarios()
        matrix = scenarios_from_specs(expand_matrix(ACCEPTANCE_MATRIX))
        assert len(matrix) >= 24
        assert [s.name for s in matrix] == [s.name for s in legacy]
        legacy_report = run_portfolio(legacy)
        matrix_report = run_portfolio(matrix)
        assert matrix_report.comparable_dict() \
            == legacy_report.comparable_dict()
        # And the union of the two shard halves equals the unsharded run.
        merged = merge_shard_reports(
            [run_portfolio(matrix, shard=(index, 2)) for index in range(2)])
        assert merged.comparable_dict() == matrix_report.comparable_dict()
