#!/usr/bin/env python
"""Regenerate the paper's Fig. 3 (port dependency graph of a 2x2 mesh) and
Fig. 4 (flows) as text.

Run with::

    python examples/dependency_graph_figure.py [width] [height]
"""

from __future__ import annotations

import sys

from repro.core import check_acyclicity, graph_statistics
from repro.hermes import analyse_flows, build_exy_graph
from repro.hermes.flows import Flow, flow_of, hermes_rank
from repro.network.mesh import Mesh2D


def main(width: int = 2, height: int = 2) -> None:
    mesh = Mesh2D(width, height)
    graph = build_exy_graph(mesh)

    print(f"Port dependency graph Exy_dep of a {width}x{height} mesh "
          f"(paper Fig. 3)")
    print("statistics:", graph_statistics(graph))
    report = check_acyclicity(graph, methods=("dfs", "scc", "toposort",
                                              "networkx"))
    print("acyclic (all methods agree):", report.acyclic)
    print()
    print("edges:")
    for source, target in sorted(graph.edges(), key=lambda e: (str(e[0]),
                                                                str(e[1]))):
        print(f"  {source} -> {target}")

    print()
    print(f"Flows of the {width}x{height} mesh (paper Fig. 4)")
    analysis = analyse_flows(mesh)
    for flow in Flow:
        members = analysis.members[flow]
        print(f"  {flow.value:<10} {len(members):>3} ports   "
              f"internal edges: {analysis.internal_edges[flow]:>3}   "
              f"escapes: { {k.value: v for k, v in analysis.escapes[flow].items()} }")
    print("  vertical flows escape only to sinks:",
          analysis.vertical_flows_escape_only_to_sinks)
    print("  horizontal flows escape only to vertical flows or sinks:",
          analysis.horizontal_flows_escape_only_to_vertical_or_sinks)

    print()
    print("Rank certificate (every edge strictly decreases the rank):")
    for source, target in sorted(graph.edges(), key=lambda e: (str(e[0]),
                                                                str(e[1])))[:12]:
        r_source = hermes_rank(source, width, height)
        r_target = hermes_rank(target, width, height)
        print(f"  rank{r_source} {source} -> rank{r_target} {target}")
    print("  ... (first 12 edges shown)")


if __name__ == "__main__":
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(width, height)
