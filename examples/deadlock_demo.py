#!/usr/bin/env python
"""Both directions of Theorem 1, demonstrated on deadlock-prone designs.

The paper's Theorem 1 says a deterministic routing function is deadlock-free
iff its port dependency graph is acyclic.  This example exhibits the negative
side on two designs that *do* have cycles:

* a ring routed strictly clockwise through the wrap-around link, and
* a deterministic "zig-zag" mesh routing that mixes XY and YX order.

For each design it

1. finds a cycle in the dependency graph (obligation (C-3) fails);
2. constructs a concrete deadlock configuration from the cycle (the
   sufficiency construction) and confirms with the switching policy that no
   message can move;
3. re-extracts a cycle from that deadlock configuration (the necessity
   construction);
4. explores the full state space of a small workload and shows that a
   deadlock is actually *reachable* from an empty network.

Run with::

    python examples/deadlock_demo.py
"""

from __future__ import annotations

from repro.checking.bmc import explore_configuration_space
from repro.checking.graphs import find_cycle_dfs
from repro.core import (
    check_c3_routing_induced,
    routing_dependency_graph,
    verify_witness_roundtrip,
)
from repro.hermes import build_hermes_instance
from repro.hermes.ports import witness_destination
from repro.network.mesh import Mesh2D
from repro.ringnoc import build_clockwise_ring_instance, ring_witness_destination
from repro.routing.adaptive import ZigZagRouting


def demo_clockwise_ring() -> None:
    print("-" * 72)
    print("Design 1: 4-node ring, strictly clockwise routing")
    print("-" * 72)
    instance = build_clockwise_ring_instance(4)

    # 1. (C-3) fails: the dependency graph has a cycle.
    c3 = check_c3_routing_induced(instance.routing)
    print(f"(C-3) on the routing-induced dependency graph: "
          f"{'holds' if c3.holds else 'VIOLATED'}")
    cycle = find_cycle_dfs(routing_dependency_graph(instance.routing)).cycle
    print("cycle:", " -> ".join(str(p) for p in cycle))

    # 2+3. Sufficiency and necessity: cycle -> deadlock -> cycle.
    roundtrip = verify_witness_roundtrip(
        cycle, instance.routing, instance.switching,
        ring_witness_destination(instance.topology), capacity=1)
    print(f"constructed configuration is a deadlock: {roundtrip.is_deadlock}")
    print(f"cycle recovered from the deadlock: "
          f"{len(roundtrip.recovered_cycle or [])} ports")

    # 4. The deadlock is reachable from an empty network.
    travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=3)
               for i in range(4)]
    search = explore_configuration_space(instance, travels, capacity=1)
    print(f"state-space search: {search}")
    print()


def demo_zigzag_mesh() -> None:
    print("-" * 72)
    print("Design 2: 3x3 mesh, deterministic zig-zag (mixed XY/YX) routing")
    print("-" * 72)
    mesh = Mesh2D(3, 3)
    routing = ZigZagRouting(mesh)
    c3 = check_c3_routing_induced(routing)
    print(f"(C-3) on the routing-induced dependency graph: "
          f"{'holds' if c3.holds else 'VIOLATED'}")
    cycle = find_cycle_dfs(routing_dependency_graph(routing)).cycle
    print("cycle:", " -> ".join(str(p) for p in cycle))

    # For comparison: the same mesh with the paper's XY routing is clean.
    hermes = build_hermes_instance(3, 3)
    c3_xy = check_c3_routing_induced(hermes.routing)
    print(f"same mesh with XY routing, (C-3): "
          f"{'holds' if c3_xy.holds else 'VIOLATED'}")
    print()


def main() -> None:
    demo_clockwise_ring()
    demo_zigzag_mesh()


if __name__ == "__main__":
    main()
