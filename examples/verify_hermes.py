#!/usr/bin/env python
"""The Fig. 2 pipeline: discharge the proof obligations and conclude the theorems.

This example reproduces the paper's methodology end to end for the HERMES
instantiation:

1. discharge obligations (C-1) ... (C-5) for a family of mesh sizes
   (exhaustively per size, plus the parametric rank-certificate argument for
   (C-3));
2. conclude the Deadlock and Evacuation theorems from the obligations;
3. print the verification-effort table (the analogue of the paper's
   Table I).

Run with::

    python examples/verify_hermes.py [max_size]
"""

from __future__ import annotations

import sys

from repro.core.theorems import check_deadlock_freedom
from repro.hermes import build_hermes_instance, discharge_all
from repro.hermes.flows import check_rank_case_analysis, parametric_c3_holds
from repro.reporting import build_effort_table


def main(max_size: int = 4) -> None:
    print("=" * 72)
    print("HERMES / GeNoC verification pipeline (paper Fig. 2)")
    print("=" * 72)

    for size in range(2, max_size + 1):
        report = discharge_all(size, size)
        print()
        for line in report.summary_lines():
            print(line)
        instance = build_hermes_instance(size, size)
        deadlock = check_deadlock_freedom(instance)
        print(f"  DeadThm (from C-1..C-3): "
              f"{'holds' if deadlock.holds else 'VIOLATED'}")

    print()
    print("Parametric (arbitrary-size) discharge of (C-3) via the flows/rank")
    print("certificate (paper Fig. 4):")
    cases = check_rank_case_analysis()
    for case in cases:
        status = "ok" if (case.decreases and case.coordinate_independent) \
            else "FAILED"
        print(f"  {case.description:<28} {status}")
    print(f"  => (C-3) holds for all mesh sizes: {parametric_c3_holds(cases)}")

    print()
    print("Verification-effort table (analogue of the paper's Table I):")
    table = build_effort_table(max_size, max_size)
    print(table.formatted())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
