#!/usr/bin/env python
"""Quickstart: build a HERMES mesh, send messages, watch them evacuate.

This example exercises the public API end to end:

1. build the HERMES instantiation (``GeNoC2D``) for a 4x4 mesh with two
   1-flit buffers per port (Fig. 1 of the paper);
2. generate a workload of messages;
3. run the GeNoC interpreter until every message has left the network;
4. check the Correctness and Evacuation theorems on the run;
5. discharge the Deadlock theorem *incrementally*: the dependency graph is
   SAT-encoded once in a :class:`~repro.core.deadlock.DeadlockQuerySession`
   and every further question (full condition, restricted port subsets) is
   a solve under assumptions on the same solver;
6. repair a deadlock-prone adaptive design with **virtual channels**: the
   3x3 mesh with fully-adaptive minimal routing has dependency cycles, but
   with 2 VCs and an XY escape class it is proved deadlock-free -- by the
   explicit (V-1)/(V-2) checker and by the incremental CDCL path -- and
   then simulated on the VC-aware wormhole switching.

For sweeping many designs at once, see the batch driver::

    python -m repro batch --mesh-sizes 3 4 --ring-sizes 4

(programmatically: ``repro.core.portfolio.run_portfolio``).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.deadlock import DeadlockQuerySession
from repro.core.theorems import check_correctness, check_evacuation
from repro.hermes import build_hermes_instance
from repro.simulation import Simulator, uniform_random_traffic
from repro.simulation.workloads import transpose_traffic


def main() -> None:
    # 1. The HERMES instantiation: 4x4 mesh, XY routing, wormhole switching,
    #    immediate injection, 2 buffers per port.
    instance = build_hermes_instance(width=4, height=4, buffer_capacity=2)
    print("Instance:", instance.describe())
    print(instance.mesh.ascii_art())
    print()

    # 2. A workload: 24 random messages of 4 flits each, plus the transpose
    #    pattern (every node (x, y) sends to (y, x)).
    random_load = uniform_random_traffic(instance, num_messages=24,
                                         num_flits=4, seed=2010)
    transpose_load = transpose_traffic(instance, num_flits=4)

    # 3. Run GeNoC on both workloads.
    simulator = Simulator(instance, record_trace=True)
    for workload in (random_load, transpose_load):
        result = simulator.run(workload)
        metrics = result.metrics
        print(f"Workload {workload.describe()}")
        print(f"  evacuated : {metrics.evacuated}")
        print(f"  steps     : {metrics.steps}")
        print(f"  avg route : {metrics.average_route_length:.2f} hops")
        print(f"  peak flits in flight: {metrics.peak_flits_in_network}")

        # 4. The theorems, checked on the concrete run.
        original = instance.initial_configuration(list(workload.travels))
        genoc_result = instance.engine().run(original.copy())
        correctness = check_correctness(instance, original, genoc_result)
        evacuation = check_evacuation(instance, original, genoc_result)
        print(f"  CorrThm   : {'holds' if correctness.holds else 'VIOLATED'}")
        print(f"  EvacThm   : {'holds' if evacuation.holds else 'VIOLATED'}")
        print()

    # 5. The Deadlock theorem, incrementally: encode the dependency-edge
    #    universe once, then re-query under assumptions.
    session = DeadlockQuerySession.for_instance(instance)
    print(f"DeadThm (incremental session over {session.edge_count} edges)")
    print(f"  full condition      : "
          f"{'holds' if session.is_deadlock_free() else 'VIOLATED'}")
    west_half = [port for port in instance.topology.ports
                 if port.node[0] < instance.mesh.width // 2]
    print(f"  restricted to P'    : "
          f"{'holds' if session.is_deadlock_free_for(west_half) else 'VIOLATED'}"
          f"  ({len(west_half)} ports, same solver, no re-encoding)")
    print(f"  incremental queries : {session.queries}")
    print()

    # 6. Virtual channels: repair a deadlock-prone adaptive design with an
    #    escape VC class, prove it free both ways, then simulate it.
    from repro.core.theorems import (
        check_deadlock_freedom_vc,
        check_deadlock_freedom_vc_incremental,
    )
    from repro.vcnoc import build_vc_mesh_instance

    prone = build_vc_mesh_instance(3, 3, num_vcs=1)
    fixed = build_vc_mesh_instance(3, 3, num_vcs=2, route_policy="spread")
    print("Virtual-channel escape repair (3x3 mesh, adaptive routing)")
    print(f"  1 VC  (no escape)   : "
          f"{'free' if check_deadlock_freedom_vc(prone.relation).holds else 'DEADLOCK-PRONE'}")
    explicit = check_deadlock_freedom_vc(fixed.relation)
    incremental = check_deadlock_freedom_vc_incremental(fixed.relation)
    print(f"  2 VCs (XY escape)   : "
          f"{'free' if explicit.holds else 'DEADLOCK-PRONE'} (explicit), "
          f"{'free' if incremental.holds else 'DEADLOCK-PRONE'} (incremental, "
          f"{incremental.details['incremental_queries']} queries)")
    vc_run = Simulator(fixed).run(
        uniform_random_traffic(fixed, num_messages=16, num_flits=4,
                               seed=2010))
    print(f"  VC wormhole run     : {vc_run.summary()} "
          f"(CorrThm {'holds' if vc_run.correctness_ok else 'VIOLATED'}, "
          f"EvacThm {'holds' if vc_run.evacuation_ok else 'VIOLATED'})")


if __name__ == "__main__":
    main()
