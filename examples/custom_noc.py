#!/usr/bin/env python
"""Instantiating GeNoC on your own NoC design.

The GeNoC methodology is generic: supply the constituents (injection,
routing, switching), a dependency graph and a witness function, and the
framework discharges the obligations and concludes the theorems.  This
example builds two instantiations that are *not* the paper's HERMES case
study:

* a 5-node bidirectional ring routed as a chain (never using the wrap-around
  link) -- a second deadlock-free design;
* a 4x4 mesh with YX routing and store-and-forward switching -- an ablation
  of the HERMES design (same topology, different constituents).

Run with::

    python examples/custom_noc.py
"""

from __future__ import annotations

from repro.core import check_c3_routing_induced
from repro.core.pipeline import verify_instance
from repro.hermes import build_hermes_instance
from repro.ringnoc import build_chain_ring_instance
from repro.routing.yx import YXRouting
from repro.simulation import Simulator, uniform_random_traffic
from repro.switching.store_and_forward import StoreAndForwardSwitching


def demo_chain_ring() -> None:
    print("-" * 72)
    print("Custom instantiation 1: 5-node ring, chain routing")
    print("-" * 72)
    instance = build_chain_ring_instance(5, buffer_capacity=2)
    workloads = [
        [instance.make_travel((0, 0), (4, 0), num_flits=3),
         instance.make_travel((4, 0), (0, 0), num_flits=3),
         instance.make_travel((2, 0), (3, 0), num_flits=2)],
        [instance.make_travel((index, 0), ((index + 1) % 5, 0), num_flits=2)
         for index in range(4)],
    ]
    report = verify_instance(instance, workloads=workloads)
    print(report.summary())
    print()


def demo_yx_store_and_forward() -> None:
    print("-" * 72)
    print("Custom instantiation 2: 4x4 mesh, YX routing, store-and-forward")
    print("-" * 72)
    from repro.network.mesh import Mesh2D

    mesh_size = 4
    packet_flits = 3
    instance = build_hermes_instance(
        mesh_size, mesh_size,
        # Store-and-forward needs ports deep enough for a whole packet.
        buffer_capacity=packet_flits,
        routing=YXRouting(Mesh2D(mesh_size, mesh_size)),
        switching=StoreAndForwardSwitching())
    print("Instance:", instance.describe())

    # YX routing has no declared Exy_dep (that graph is XY-specific), so
    # check (C-3) on the routing-induced dependency graph instead.
    c3 = check_c3_routing_induced(instance.routing)
    print(f"(C-3) on the routing-induced graph: "
          f"{'holds' if c3.holds else 'VIOLATED'}")

    workload = uniform_random_traffic(instance, num_messages=20,
                                      num_flits=packet_flits, seed=42)
    result = Simulator(instance).run(workload)
    print(result.summary())
    print(f"correctness: {result.correctness_ok}, "
          f"evacuation: {result.evacuation_ok}")
    print()


def main() -> None:
    demo_chain_ring()
    demo_yx_store_and_forward()


if __name__ == "__main__":
    main()
