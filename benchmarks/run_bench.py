#!/usr/bin/env python
"""Write a ``BENCH_<date>.json`` perf-trajectory report.

Standalone runner around :mod:`repro.core.bench` (the CLI equivalent is
``repro bench --json``)::

    PYTHONPATH=src python benchmarks/run_bench.py                 # smoke
    PYTHONPATH=src python benchmarks/run_bench.py --profile extended-8 \
        --jobs 1 4 --out BENCH_$(date +%F).json
    PYTHONPATH=src python benchmarks/run_bench.py \
        --reference BENCH_2026-07-30.json     # speedups vs a previous report

The report is validated against the bench schema before it is written;
schema violations exit non-zero (the CI ``bench-smoke`` job relies on
this).
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="smoke",
                        choices=["tiny", "smoke", "extended-8", "extended"],
                        help="portfolio size (default: smoke)")
    parser.add_argument("--jobs", type=int, nargs="+", default=[1],
                        help="job counts to run the portfolio at "
                             "(default: 1; e.g. --jobs 1 4)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="microbench repetitions, best-of (default 3)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_<date>.json)")
    parser.add_argument("--reference", default=None,
                        help="a previous BENCH_*.json (or a reference "
                             "measurement file) to compute speedups against")
    parser.add_argument("--notes", default=None,
                        help="free-form provenance note stored in the report")
    args = parser.parse_args(argv)

    from repro.core.bench import (
        bench_report_path,
        format_bench_summary,
        run_benchmark,
        write_bench_report,
    )

    reference = None
    if args.reference:
        with open(args.reference, encoding="utf-8") as handle:
            reference = json.load(handle)

    report = run_benchmark(profile=args.profile, jobs_list=args.jobs,
                           repeat=args.repeat, reference=reference,
                           notes=args.notes)
    path = args.out or bench_report_path()
    write_bench_report(report, path)
    print(format_bench_summary(report))
    print(f"bench report written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
