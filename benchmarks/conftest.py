"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one artefact of the paper's evaluation
(Table I, Fig. 1-4, and the two theorem-validation experiments).  Besides the
pytest-benchmark timings, each module prints the regenerated rows/series with
``report()`` so that running::

    pytest benchmarks/ --benchmark-only -s

shows the tables next to the timing statistics.  EXPERIMENTS.md records the
paper-reported values next to representative measured outputs.
"""

from __future__ import annotations

import pytest


def report(title: str, text: str) -> None:
    """Print a benchmark artefact in a recognisable block."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{text}\n")


@pytest.fixture(scope="session")
def hermes_3x3():
    from repro.hermes import build_hermes_instance

    return build_hermes_instance(3, 3, buffer_capacity=2)


@pytest.fixture(scope="session")
def hermes_4x4():
    from repro.hermes import build_hermes_instance

    return build_hermes_instance(4, 4, buffer_capacity=2)
