"""Theorem 1 validation: deadlock-freedom iff no dependency cycle.

The paper proves the equivalence; this benchmark validates both directions
executably and measures the cost of the involved analyses:

* positive designs (HERMES/XY, chain-routed ring): the dependency condition
  holds and exhaustive exploration of every message interleaving finds no
  reachable deadlock;
* negative designs (clockwise ring, zig-zag mesh routing): the condition
  fails, the cycle is converted into a concrete deadlock configuration
  (sufficiency), a cycle is re-extracted from it (necessity), and a deadlock
  is reachable in the state space / reached by the deterministic run.
"""

import pytest

from benchmarks.conftest import report
from repro.checking.bmc import explore_configuration_space
from repro.checking.graphs import find_cycle_dfs
from repro.core import (
    check_c3_routing_induced,
    routing_dependency_graph,
    verify_witness_roundtrip,
)
from repro.hermes import build_hermes_instance
from repro.hermes.ports import witness_destination
from repro.network.mesh import Mesh2D
from repro.reporting.tables import format_table
from repro.ringnoc import (
    build_chain_ring_instance,
    build_clockwise_ring_instance,
    ring_witness_destination,
)
from repro.routing.adaptive import FullyAdaptiveMinimalRouting, ZigZagRouting
from repro.routing.turn_model import (
    NegativeFirstRouting,
    NorthLastRouting,
    WestFirstRouting,
)
from repro.routing.xy import XYRouting
from repro.routing.yx import YXRouting
from repro.switching.wormhole import WormholeSwitching


def test_bench_condition_across_routing_functions(benchmark):
    """The dependency condition (C-3) across the routing-function library."""

    def sweep():
        mesh = Mesh2D(4, 4)
        rows = []
        for routing in (XYRouting(mesh), YXRouting(mesh),
                        WestFirstRouting(mesh), NorthLastRouting(mesh),
                        NegativeFirstRouting(mesh),
                        FullyAdaptiveMinimalRouting(mesh),
                        ZigZagRouting(mesh)):
            result = check_c3_routing_induced(routing)
            rows.append([routing.name(), result.holds,
                         result.details["edges"],
                         f"{result.elapsed_seconds * 1000:.1f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("(C-3) across routing functions (4x4 mesh)",
           format_table(["routing", "deadlock-free", "dep edges", "ms"],
                        rows))
    verdicts = {row[0]: row[1] for row in rows}
    assert verdicts["Rxy"] and verdicts["Ryx"]
    assert verdicts["Rwest-first"] and verdicts["Rnorth-last"]
    assert verdicts["Rnegative-first"]
    assert not verdicts["Radaptive"]
    assert not verdicts["Rzigzag"]


@pytest.mark.parametrize("size", [4, 6, 8])
def test_bench_sufficiency_witness_on_ring(benchmark, size):
    """cycle -> deadlock configuration -> cycle, on rings of growing size."""
    instance = build_clockwise_ring_instance(size)
    cycle = find_cycle_dfs(routing_dependency_graph(instance.routing)).cycle

    def roundtrip():
        return verify_witness_roundtrip(
            cycle, instance.routing, instance.switching,
            ring_witness_destination(instance.topology), capacity=1)

    result = benchmark(roundtrip)
    assert result.success
    report(f"Theorem 1 witness round trip, ring of {size}",
           f"cycle length {len(cycle)}, deadlock confirmed: "
           f"{result.is_deadlock}, recovered cycle length "
           f"{len(result.recovered_cycle or [])}")


def test_bench_sufficiency_witness_on_zigzag_mesh(benchmark):
    mesh = Mesh2D(3, 3)
    routing = ZigZagRouting(mesh)
    cycle = find_cycle_dfs(routing_dependency_graph(routing)).cycle

    def roundtrip():
        return verify_witness_roundtrip(
            cycle, routing, WormholeSwitching(),
            lambda s, t: witness_destination(s, t, mesh), capacity=1)

    result = benchmark(roundtrip)
    assert result.success


def test_bench_exhaustive_search_positive_hermes(benchmark):
    """No reachable deadlock for HERMES/XY, all interleavings explored."""
    instance = build_hermes_instance(2, 2, buffer_capacity=1)
    travels = [instance.make_travel((0, 0), (1, 1), num_flits=2),
               instance.make_travel((1, 1), (0, 0), num_flits=2),
               instance.make_travel((1, 0), (0, 1), num_flits=2)]

    result = benchmark(explore_configuration_space, instance, travels, 1)
    report("State-space search, HERMES 2x2 / XY", str(result))
    assert result.complete
    assert not result.deadlock_found


def test_bench_exhaustive_search_positive_chain_ring(benchmark):
    instance = build_chain_ring_instance(4, buffer_capacity=1)
    travels = [instance.make_travel((0, 0), (3, 0), num_flits=2),
               instance.make_travel((3, 0), (0, 0), num_flits=2),
               instance.make_travel((1, 0), (3, 0), num_flits=2)]
    result = benchmark(explore_configuration_space, instance, travels, 1)
    report("State-space search, chain ring of 4", str(result))
    assert result.complete
    assert not result.deadlock_found


def test_bench_exhaustive_search_negative_ring(benchmark):
    """A deadlock is reachable on the clockwise ring."""
    instance = build_clockwise_ring_instance(4)
    travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=3)
               for i in range(4)]
    result = benchmark(explore_configuration_space, instance, travels, 1)
    report("State-space search, clockwise ring of 4", str(result))
    assert result.deadlock_found


def test_bench_deterministic_run_reaches_deadlock(benchmark):
    """The plain GeNoC run on the cyclic design also deadlocks (and the
    deadlock analysis recovers a dependency cycle from it)."""
    from repro.core.deadlock import analyse_deadlock

    instance = build_clockwise_ring_instance(4)
    travels = [instance.make_travel((i, 0), ((i + 2) % 4, 0), num_flits=4)
               for i in range(4)]

    def run_and_analyse():
        result = instance.run(travels, capacity=1)
        analysis = analyse_deadlock(result.final, instance.switching)
        return result, analysis

    result, analysis = benchmark(run_and_analyse)
    report("Deterministic run into deadlock (clockwise ring of 4)",
           f"deadlocked after {result.steps} steps; recovered cycle: "
           + " -> ".join(str(p) for p in (analysis.cycle or [])))
    assert result.deadlocked
    assert analysis.has_cycle
