"""Fig. 4: the Northern and Western flows and the parametric (C-3) proof.

Fig. 4 of the paper illustrates the flows used to prove that ``Exy_dep`` has
no cycle for meshes of arbitrary size: vertical flows monotonically change
the y-coordinate and can only be left through a local out-port; horizontal
flows can additionally escape into a vertical flow.  This benchmark

* extracts the flows of concrete meshes and checks the escape properties,
* checks the rank certificate edge-by-edge (the per-instance form of the
  argument) and times it against the plain DFS cycle search,
* evaluates the size-independent case analysis (the parametric form).
"""

import pytest

from benchmarks.conftest import report
from repro.checking.graphs import find_cycle_dfs
from repro.hermes import analyse_flows, build_exy_graph
from repro.hermes.flows import (
    Flow,
    check_rank_case_analysis,
    check_rank_certificate_on_mesh,
    parametric_c3_holds,
)
from repro.network.mesh import Mesh2D
from repro.reporting.tables import format_table


@pytest.mark.parametrize("size", [2, 4, 6, 8])
def test_bench_flow_extraction(benchmark, size):
    mesh = Mesh2D(size, size)
    analysis = benchmark(analyse_flows, mesh)
    sizes = analysis.flow_sizes()
    rows = [[flow.value, sizes[flow], analysis.internal_edges[flow],
             {k.value: v for k, v in analysis.escapes[flow].items()}]
            for flow in Flow]
    report(f"Flows of the {size}x{size} mesh (Fig. 4)",
           format_table(["flow", "ports", "internal edges", "escapes"], rows))
    assert analysis.vertical_flows_escape_only_to_sinks
    assert analysis.horizontal_flows_escape_only_to_vertical_or_sinks
    # The paper's Northern flow (southbound ports) has one in/out pair per
    # vertical adjacency column segment.
    assert sizes[Flow.NORTHWARD] == sizes[Flow.SOUTHWARD]


@pytest.mark.parametrize("size", [2, 4, 8, 12])
def test_bench_rank_certificate_vs_cycle_search(benchmark, size):
    """The per-instance rank-certificate check (linear in the edges)."""
    mesh = Mesh2D(size, size)
    violations = benchmark(check_rank_certificate_on_mesh, mesh)
    assert violations == []
    # Cross-check with the plain cycle search.
    assert find_cycle_dfs(build_exy_graph(mesh)).acyclic


def test_bench_parametric_case_analysis(benchmark):
    """The size-independent case analysis (constant work, any mesh size)."""
    cases = benchmark(check_rank_case_analysis)
    rows = [[case.description, case.node_offset, case.decreases,
             case.coordinate_independent] for case in cases]
    report("Parametric (C-3) case analysis (21 edge kinds)",
           format_table(["edge kind", "node offset", "decreases",
                         "size-independent"], rows))
    assert parametric_c3_holds(cases)
    assert len(cases) == 21


def test_bench_parametric_vs_bounded_cost(benchmark):
    """Shape check: the parametric argument's cost does not grow with the
    mesh, while the bounded check's cost does."""
    import time

    def measure():
        rows = []
        for size in (2, 6, 10, 14):
            mesh = Mesh2D(size, size)
            start = time.perf_counter()
            check_rank_certificate_on_mesh(mesh)
            bounded = time.perf_counter() - start
            start = time.perf_counter()
            check_rank_case_analysis()
            parametric = time.perf_counter() - start
            rows.append([f"{size}x{size}", f"{bounded * 1000:.2f}",
                         f"{parametric * 1000:.2f}"])
        return rows

    rows = benchmark.pedantic(measure, rounds=2, iterations=1)
    report("Bounded vs parametric (C-3) check cost (ms)",
           format_table(["mesh", "bounded rank check", "parametric cases"],
                        rows))
    bounded_costs = [float(row[1]) for row in rows]
    assert bounded_costs[-1] > bounded_costs[0]
