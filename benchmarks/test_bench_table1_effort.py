"""Table I: verification effort per proof-development component.

The paper's Table I reports, for the ACL2 development, the lines/theorems/
functions/CPU-minutes/human-days per component (Rxy, Iid/(C-4), Swh/(C-5),
(C-1)xy, (C-2)xy, (C-3)xy, the generic definitions, CorrThm and
Dead/EvacThm).  This benchmark regenerates the analogous table for the Python
reproduction: per component, the number of automated checks discharged, the
implementing source lines/functions, and the wall-clock time, for HERMES
meshes of several sizes.

Shape expectations reproduced from the paper:
* every obligation holds (the table is only meaningful because the
  instantiation verifies);
* (C-1)/(C-2) are dominated by many mechanical case distinctions;
* (C-3) carries the largest structural effort (it is the only obligation
  needing the parametric flows argument);
* only the upper (instance-specific) part of the table changes with the
  instantiation -- the generic rows are constant.
"""

import pytest

from benchmarks.conftest import report
from repro.hermes.proofs import discharge_all
from repro.reporting import build_effort_table
from repro.reporting.tables import format_table


@pytest.mark.parametrize("size", [2, 3, 4, 5])
def test_bench_discharge_all_obligations(benchmark, size):
    """Time the full obligation discharge (the 'CPU' column) per mesh size."""
    result = benchmark(discharge_all, size, size)
    assert result.all_hold
    rows = [[name, res.checks, f"{res.elapsed_seconds:.4f}"]
            for name, res in sorted(result.results.items())]
    report(f"Table I (obligation checks), HERMES {size}x{size}",
           format_table(["Obligation", "Checks", "Seconds"], rows))


def test_bench_effort_table_4x4(benchmark):
    """Assemble the full Table I analogue for a 4x4 mesh."""
    table = benchmark.pedantic(build_effort_table, args=(4, 4), rounds=3,
                               iterations=1)
    report("Table I analogue (HERMES 4x4)", table.formatted())
    # Shape: instance-specific rows carry checks; generic rows measure the
    # framework only.
    assert table.row("(C-1)xy").checks > 0
    assert table.row("(C-3)xy").checks > table.row("Iid, (C-4)").checks
    assert table.row("Generic Defs").lines > 0


def test_bench_effort_scaling_with_mesh_size(benchmark):
    """The instance-specific check counts grow with the mesh; the generic
    part does not (the paper: 'Only the upper part of table I is
    instantiation-specific')."""

    def build_two():
        return discharge_all(2, 2), discharge_all(5, 5)

    small, large = benchmark.pedantic(build_two, rounds=1, iterations=1)
    rows = []
    for name in sorted(small.results):
        rows.append([name, small.results[name].checks,
                     large.results[name].checks])
    report("Obligation checks: 2x2 vs 5x5",
           format_table(["Obligation", "2x2", "5x5"], rows))
    assert large.results["C-1"].checks > small.results["C-1"].checks
    assert large.results["C-2"].checks > small.results["C-2"].checks
    assert large.results["C-3"].checks > small.results["C-3"].checks
