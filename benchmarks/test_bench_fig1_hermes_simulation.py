"""Fig. 1: the HERMES 2D-mesh NoC and its executable specification.

Fig. 1 of the paper shows the HERMES architecture (2D mesh, switch with five
bidirectional ports, 2 one-flit buffers per port).  The paper's model is
executable; this benchmark exercises exactly that executability: GeNoC2D runs
arbitrary initial message lists on meshes of several sizes and buffer depths,
and the evacuation time (switching steps) is reported.

Shape expectations:
* every workload evacuates (XY routing is deadlock-free);
* evacuation time grows with mesh size and message count;
* deeper buffers never make evacuation slower (and usually make it faster
  under contention).
"""

import pytest

from benchmarks.conftest import report
from repro.hermes import build_hermes_instance
from repro.reporting.tables import format_table
from repro.simulation import Simulator, uniform_random_traffic
from repro.simulation.workloads import (
    bit_complement_traffic,
    transpose_traffic,
)


@pytest.mark.parametrize("size", [2, 4, 6, 8])
def test_bench_mesh_construction(benchmark, size):
    """Building the parametric topology + instantiation (Fig. 1a)."""
    instance = benchmark(build_hermes_instance, size, size)
    info = instance.describe()
    report(f"HERMES {size}x{size} structure", str(info))
    assert info["nodes"] == size * size
    assert info["ports"] == instance.mesh.expected_port_count()


@pytest.mark.parametrize("size,messages", [(2, 8), (4, 32), (6, 72), (8, 128)])
def test_bench_random_traffic_simulation(benchmark, size, messages):
    """GeNoC2D on uniform random traffic across mesh sizes."""
    instance = build_hermes_instance(size, size, buffer_capacity=2)
    workload = uniform_random_traffic(instance, num_messages=messages,
                                      num_flits=4, seed=2010)
    simulator = Simulator(instance, verify=False)

    result = benchmark(simulator.run, workload)
    metrics = result.metrics
    report(f"HERMES {size}x{size}, {messages} random messages",
           format_table(["metric", "value"],
                        list(metrics.as_dict().items())))
    assert metrics.evacuated
    assert metrics.steps >= 1


def test_bench_evacuation_steps_vs_buffer_depth(benchmark):
    """Fig. 1b parameter: number of 1-flit buffers per port."""
    rows = []

    def sweep():
        local_rows = []
        for capacity in (1, 2, 3, 4):
            instance = build_hermes_instance(4, 4, buffer_capacity=capacity)
            workload = bit_complement_traffic(instance, num_flits=4)
            result = Simulator(instance, verify=False).run(workload)
            local_rows.append([capacity, result.metrics.steps,
                               result.metrics.peak_flits_in_network,
                               result.metrics.evacuated])
        return local_rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("Evacuation vs buffer depth (4x4, bit-complement, 4-flit packets)",
           format_table(["buffers/port", "steps", "peak flits", "evacuated"],
                        rows))
    steps = [row[1] for row in rows]
    assert all(row[3] for row in rows)          # everything evacuates
    assert steps[-1] <= steps[0]                # deeper buffers never hurt


def test_bench_evacuation_steps_vs_message_count(benchmark):
    """Evacuation time as the initial message list grows (arbitrary size)."""

    def sweep():
        instance = build_hermes_instance(4, 4, buffer_capacity=2)
        local_rows = []
        for count in (8, 16, 32, 64, 128):
            workload = uniform_random_traffic(instance, num_messages=count,
                                              num_flits=3, seed=7)
            result = Simulator(instance, verify=False).run(workload)
            local_rows.append([count, result.metrics.steps,
                               result.metrics.evacuated])
        return local_rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("Evacuation vs message count (4x4 mesh)",
           format_table(["messages", "steps", "evacuated"], rows))
    assert all(row[2] for row in rows)
    assert rows[-1][1] >= rows[0][1]  # more messages take at least as long


def test_bench_transpose_traffic_scaling(benchmark):
    """A fixed pattern (transpose) across mesh sizes."""

    def sweep():
        local_rows = []
        for size in (2, 3, 4, 5, 6):
            instance = build_hermes_instance(size, size, buffer_capacity=2)
            workload = transpose_traffic(instance, num_flits=4)
            result = Simulator(instance, verify=False).run(workload)
            local_rows.append([f"{size}x{size}", len(workload),
                               result.metrics.steps,
                               result.metrics.evacuated])
        return local_rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("Transpose traffic across mesh sizes",
           format_table(["mesh", "messages", "steps", "evacuated"], rows))
    assert all(row[3] for row in rows)
    assert rows[-1][2] > rows[0][2]
