"""Theorem 2 validation: evacuation (``GeNoC(σ).A = σ.T``) and obligation (C-5).

The paper proves that, given (C-1)-(C-5), every injected message eventually
leaves the network, using the measure ``μxy`` (the sum of the remaining route
lengths).  This benchmark

* runs GeNoC on the standard workload suite across mesh sizes and confirms
  complete evacuation with the arrived set equal to the sent set,
* measures the cost of discharging (C-5) (the measure decreases on every
  non-deadlocked step) for both the refined flit-hop measure (strict
  decrease) and the paper's route-length measure (non-increase in the
  flit-accurate model),
* compares the evacuation behaviour of the three switching policies
  (wormhole / virtual cut-through / store-and-forward) -- the paper notes
  (C-5) is proven "nearly generically".
"""

import pytest

from benchmarks.conftest import report
from repro.core.measure import flit_hop_measure, route_length_measure
from repro.core.obligations import check_c5
from repro.core.theorems import check_evacuation
from repro.hermes import build_hermes_instance
from repro.reporting.tables import format_table
from repro.simulation import Simulator
from repro.simulation.workloads import standard_suite
from repro.switching.store_and_forward import StoreAndForwardSwitching
from repro.switching.virtual_cut_through import VirtualCutThroughSwitching
from repro.switching.wormhole import WormholeSwitching


@pytest.mark.parametrize("size", [3, 4, 6])
def test_bench_evacuation_of_standard_suite(benchmark, size):
    instance = build_hermes_instance(size, size, buffer_capacity=2)
    suite = standard_suite(instance, num_flits=3, seed=0)
    simulator = Simulator(instance, verify=False)

    def run_all():
        return [simulator.run(workload) for workload in suite]

    results = benchmark.pedantic(run_all, rounds=2, iterations=1)
    rows = [[r.workload.name, r.metrics.messages, r.metrics.steps,
             r.metrics.evacuated] for r in results]
    report(f"Evacuation of the standard suite, {size}x{size}",
           format_table(["workload", "messages", "steps", "evacuated"], rows))
    assert all(r.metrics.evacuated for r in results)


@pytest.mark.parametrize("size", [3, 4])
def test_bench_evacuation_theorem_check(benchmark, size):
    """The runtime EvacThm check itself (A = T, empty state, measure)."""
    instance = build_hermes_instance(size, size, buffer_capacity=2)
    travels = list(standard_suite(instance, num_flits=4, seed=1)[0].travels)
    original = instance.initial_configuration(travels)
    result = instance.engine().run(original.copy())

    theorem = benchmark(check_evacuation, instance, original, result)
    assert theorem.holds


@pytest.mark.parametrize("measure,strict,expected", [
    (flit_hop_measure, True, True),
    (route_length_measure, False, True),
    (route_length_measure, True, False),
])
def test_bench_c5_discharge(benchmark, hermes_3x3, measure, strict, expected):
    """(C-5) for the refined and the paper measure."""
    instance = hermes_3x3
    workloads = standard_suite(instance, num_flits=3, seed=2)[:2]
    configurations = [
        instance.routing.route_configuration(
            instance.initial_configuration(list(spec.travels)))
        for spec in workloads]

    result = benchmark.pedantic(
        check_c5, args=(instance.switching, measure, configurations),
        kwargs={"strict": strict}, rounds=2, iterations=1)
    assert result.holds == expected


def test_bench_evacuation_across_switching_policies(benchmark):
    """Ablation: (C-5)/evacuation holds for every shipped switching policy."""

    def sweep():
        rows = []
        policies = [("wormhole", WormholeSwitching(), 2),
                    ("virtual cut-through", VirtualCutThroughSwitching(), 3),
                    ("store-and-forward", StoreAndForwardSwitching(), 4)]
        for name, policy, capacity in policies:
            instance = build_hermes_instance(4, 4, buffer_capacity=capacity,
                                             switching=policy)
            workload = standard_suite(instance, num_flits=3, seed=3)[0]
            result = Simulator(instance, verify=False).run(workload)
            rows.append([name, result.metrics.steps,
                         result.metrics.evacuated])
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("Evacuation across switching policies (4x4, transpose)",
           format_table(["policy", "steps", "evacuated"], rows))
    assert all(row[2] for row in rows)


def test_bench_measure_trajectory(benchmark, hermes_4x4):
    """The measure decreases monotonically to zero (the Theorem 2 argument)."""
    instance = hermes_4x4
    travels = list(standard_suite(instance, num_flits=4, seed=5)[0].travels)

    def run():
        return instance.run(travels)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.evacuated
    measures = result.measures
    assert all(later < earlier for earlier, later in zip(measures,
                                                         measures[1:]))
    assert measures[-1] == 0
    report("Measure trajectory (4x4, transpose, 4-flit packets)",
           f"initial μ = {measures[0]}, steps = {result.steps}, "
           f"final μ = {measures[-1]}")
