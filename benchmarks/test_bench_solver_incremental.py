"""The CDCL engine and the incremental-vs-from-scratch ablation.

Three measurements around the solver that now backs the deadlock
machinery:

* raw CDCL performance on the acyclicity encodings of the Fig. 3
  dependency graphs (the workload `is_acyclic_by_sat` runs);
* *incremental* deadlock queries -- one
  :class:`~repro.core.deadlock.DeadlockQuerySession` answering a sweep of
  subset/escape queries -- against rebuilding the CNF per query;
* the portfolio batch driver on the standard scenario sweep.
"""

import pytest

from benchmarks.conftest import report
from repro.checking.encodings import encode_acyclicity, is_acyclic_by_sat
from repro.checking.incremental import AcyclicityOracle
from repro.checking.sat import SatSolver, solve_cnf
from repro.core.deadlock import DeadlockQuerySession
from repro.core.portfolio import run_portfolio, standard_portfolio
from repro.hermes import build_exy_graph, build_hermes_instance
from repro.network.mesh import Mesh2D
from repro.reporting.tables import format_table
from repro.ringnoc import build_clockwise_ring_instance


@pytest.mark.parametrize("size", [2, 3])
def test_bench_cdcl_acyclicity(benchmark, size):
    """One-shot CDCL solve of the Fig. 3 acyclicity encoding."""
    graph = build_exy_graph(Mesh2D(size, size))
    acyclic = benchmark(is_acyclic_by_sat, graph)
    assert acyclic


def test_bench_incremental_vs_rebuild(benchmark):
    """A sweep of subset queries: one live session vs. a CNF per query."""
    graph = build_exy_graph(Mesh2D(2, 2))
    edges = [tuple(edge) for edge in graph.edges()]

    def incremental_sweep():
        oracle = AcyclicityOracle(graph)
        verdicts = [oracle.is_acyclic()]
        for step in (2, 3, 4):
            verdicts.append(oracle.is_acyclic(edges[::step]))
        for edge in edges[:8]:
            verdicts.append(oracle.is_acyclic_without([edge]))
        return verdicts

    verdicts = benchmark(incremental_sweep)
    assert all(verdicts)

    import time

    from repro.checking.graphs import DirectedGraph

    start = time.perf_counter()
    subsets = [edges] + [edges[::step] for step in (2, 3, 4)] \
        + [[e for e in edges if e != edge] for edge in edges[:8]]
    for subset in subsets:
        subgraph = DirectedGraph()
        for vertex in graph.vertices:
            subgraph.add_vertex(vertex)
        for source, target in subset:
            subgraph.add_edge(source, target)
        assert is_acyclic_by_sat(subgraph)
    rebuild_elapsed = time.perf_counter() - start
    report("Incremental vs. rebuild (13 subset queries, Fig. 3 graph)",
           f"rebuild-per-query reference: {rebuild_elapsed * 1000:.1f} ms "
           f"for {len(subsets)} queries")


def test_bench_deadlock_session_escape_analysis(benchmark):
    """Escape analysis on the clockwise ring: encode once, query per edge."""
    instance = build_clockwise_ring_instance(8)

    def analyse():
        session = DeadlockQuerySession.for_instance(instance)
        free = session.is_deadlock_free()
        escapes = session.escape_edges()
        return free, escapes, session.queries

    free, escapes, queries = benchmark(analyse)
    assert not free
    assert escapes
    report("Escape analysis, clockwise ring of 8",
           f"{len(escapes)} single-edge fixes found with {queries} "
           f"incremental solves")


def test_bench_portfolio_driver(benchmark):
    """The standard portfolio sweep through shared incremental sessions."""

    def sweep():
        return run_portfolio(
            standard_portfolio(mesh_sizes=(3,), ring_sizes=(4,)))

    result = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("Portfolio sweep (3x3 mesh x 9 scenarios + ring pair)",
           result.formatted() + "\n" + result.summary())
    assert result.deadlock_free_count == 8
    assert len(result.verdicts) == 11


def test_bench_solver_reuse_on_repeated_queries(benchmark):
    """Re-querying one SatSolver vs. fresh solves of the same CNF."""
    graph = build_exy_graph(Mesh2D(2, 2))
    cnf, _ = encode_acyclicity(graph)
    solver = SatSolver(cnf)
    solver.solve()  # warm up: learn clauses once

    def requery():
        return solver.solve().satisfiable

    assert benchmark(requery)
