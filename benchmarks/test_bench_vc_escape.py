"""Incremental VC-deadlock queries across VC counts, mesh and torus.

The virtual-channel subsystem turns one topology into a family of designs
(1, 2, 4 VCs with an escape class); this benchmark measures the pattern
the portfolio driver relies on: **one solver session per topology** whose
vertex universe is the largest VC count's channel set, answering the
(V-2) escape-class queries of every VC count incrementally -- clauses
learned deciding the 1-VC design speed up the 2- and 4-VC queries.

Also times the relation side (building the channel dependency graph, the
explicit (V-1)/(V-2) check) and the VC wormhole simulation.
"""

import pytest

from benchmarks.conftest import report
from repro.checking.graphs import DirectedGraph
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import channel_dependency_graph
from repro.core.portfolio import run_portfolio, vc_escape_portfolio
from repro.core.theorems import (
    check_deadlock_freedom_vc,
    check_deadlock_freedom_vc_incremental,
)
from repro.network.mesh import Mesh2D
from repro.network.torus import Torus2D
from repro.network.vc import VCTopology
from repro.routing.escape import mesh_escape_routing, torus_escape_routing
from repro.simulation import Simulator, uniform_random_traffic
from repro.vcnoc import build_vc_mesh_instance

VC_COUNTS = (1, 2, 4)

#: The expected verdict pattern: deadlock-prone on one channel, proved
#: free by the escape condition at every higher VC count.
EXPECTED = {1: False, 2: True, 4: True}


def _session_for(base_topology) -> DeadlockQuerySession:
    """One session whose universe hosts every VC count's channels."""
    universe = DirectedGraph()
    for channel in VCTopology(base_topology, max(VC_COUNTS)).ports:
        universe.add_vertex(channel)
    return DeadlockQuerySession(universe, name=str(base_topology))


@pytest.fixture(scope="module")
def mesh_relations():
    mesh = Mesh2D(3, 3)
    return mesh, {vcs: mesh_escape_routing(mesh, num_vcs=vcs)
                  for vcs in VC_COUNTS}


@pytest.fixture(scope="module")
def torus_relations():
    torus = Torus2D(4, 4)
    return torus, {vcs: torus_escape_routing(torus, num_vcs=vcs)
                   for vcs in VC_COUNTS}


def test_bench_vc_queries_mesh_shared_session(benchmark, mesh_relations):
    """1/2/4-VC escape queries on the 3x3 mesh through one session."""
    mesh, relations = mesh_relations
    graphs = {vcs: channel_dependency_graph(relation)
              for vcs, relation in relations.items()}

    def sweep():
        session = _session_for(mesh)
        verdicts = {}
        for vcs, relation in relations.items():
            for source, target in graphs[vcs].edges():
                session.add_edge(source, target)
            verdicts[vcs] = (
                check_deadlock_freedom_vc_incremental(
                    relation, session=session).holds)
        return verdicts, session

    verdicts, session = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert verdicts == EXPECTED
    stats = session.solver_stats
    report("VC escape queries, 3x3 mesh, one session for 1/2/4 VCs",
           f"verdicts {verdicts}; {session.queries} incremental queries, "
           f"{stats['solves']} solves, {stats['learned']} clauses learned, "
           f"{session.edge_count} edges encoded")


def test_bench_vc_queries_torus_shared_session(benchmark, torus_relations):
    """1/2/4-VC dateline queries on the 4x4 torus through one session."""
    torus, relations = torus_relations
    graphs = {vcs: channel_dependency_graph(relation)
              for vcs, relation in relations.items()}

    def sweep():
        session = _session_for(torus)
        verdicts = {}
        for vcs, relation in relations.items():
            for source, target in graphs[vcs].edges():
                session.add_edge(source, target)
            verdicts[vcs] = (
                check_deadlock_freedom_vc_incremental(
                    relation, session=session).holds)
        return verdicts, session

    verdicts, session = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert verdicts == EXPECTED
    report("VC dateline queries, 4x4 torus, one session for 1/2/4 VCs",
           f"verdicts {verdicts}; {session.queries} incremental queries, "
           f"{session.edge_count} edges encoded")


@pytest.mark.parametrize("vcs", VC_COUNTS)
def test_bench_vc_channel_graph_construction(benchmark, mesh_relations,
                                             vcs):
    """Enumerating the (port, vc) dependency graph of the escape relation."""
    mesh, _ = mesh_relations
    relation = mesh_escape_routing(mesh, num_vcs=vcs)
    graph = benchmark(channel_dependency_graph, relation)
    assert graph.vertex_count == relation.topology.port_count


def test_bench_vc_explicit_check(benchmark, mesh_relations):
    """The explicit (V-1)/(V-2) checker on the repaired 2-VC mesh."""
    _, relations = mesh_relations
    result = benchmark(check_deadlock_freedom_vc, relations[2])
    assert result.holds


def test_bench_vc_portfolio_sweep(benchmark):
    """The VC escape portfolio slice of the batch driver."""

    def sweep():
        return run_portfolio(vc_escape_portfolio(
            mesh_sizes=(3,), torus_sizes=(), vc_counts=(1, 2)))

    result = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("VC escape portfolio (3x3 mesh, 1 and 2 VCs)",
           result.formatted() + "\n" + result.summary())
    assert [v.deadlock_free for v in result.verdicts] == [False, True]


def test_bench_vc_wormhole_simulation(benchmark):
    """VC wormhole switching (credits + link arbitration), 2-VC mesh."""
    instance = build_vc_mesh_instance(3, 3, num_vcs=2,
                                      route_policy="spread")
    workload = uniform_random_traffic(instance, num_messages=24,
                                      num_flits=4, seed=2010)

    def run():
        return Simulator(instance, max_steps=2000, verify=False).run(
            workload)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.genoc_result.evacuated
    report("VC wormhole simulation, 3x3 mesh, 2 VCs, spread policy",
           result.summary())
