"""Fig. 3: the port dependency graph of a 2x2 mesh (and larger).

Fig. 3 of the paper draws ``Exy_dep`` for a 2x2 mesh.  This benchmark
regenerates the graph's structure (24 ports for 2x2, with the local in-ports
as sources and the local out-ports as sinks), checks its acyclicity with four
independent graph-algorithmic methods plus the SAT encoding, and reports how
the graph and the check cost scale with the mesh size -- the paper notes that
for a fixed-size instance "a simple search for a cycle suffices.  This search
can be performed in linear time"; the SAT route is the heavyweight
alternative included for the ablation.
"""

import pytest

from benchmarks.conftest import report
from repro.checking.encodings import encode_acyclicity, is_acyclic_by_sat
from repro.core import check_acyclicity, graph_statistics
from repro.hermes import build_exy_graph
from repro.network.mesh import Mesh2D
from repro.reporting.tables import format_table


@pytest.mark.parametrize("size", [2, 3, 4, 6, 8])
def test_bench_build_exy_dep(benchmark, size):
    """Constructing the declared dependency graph."""
    mesh = Mesh2D(size, size)
    graph = benchmark(build_exy_graph, mesh)
    stats = graph_statistics(graph)
    report(f"Exy_dep of a {size}x{size} mesh (Fig. 3)",
           format_table(["statistic", "value"], list(stats.items())))
    assert stats["vertices"] == mesh.expected_port_count()
    assert stats["sources"] == size * size   # local in-ports
    assert stats["sinks"] == size * size     # local out-ports
    if size == 2:
        assert stats["vertices"] == 24       # the Fig. 3 instance


@pytest.mark.parametrize("method", ["dfs", "scc", "toposort", "networkx"])
@pytest.mark.parametrize("size", [2, 4, 8])
def test_bench_acyclicity_methods(benchmark, method, size):
    """Ablation: the linear-time cycle checks on the concrete graph."""
    graph = build_exy_graph(Mesh2D(size, size))
    result = benchmark(check_acyclicity, graph, (method,))
    assert result.acyclic


@pytest.mark.parametrize("size", [2, 3])
def test_bench_acyclicity_by_sat(benchmark, size):
    """Ablation: the SAT-encoding route (orders of magnitude slower)."""
    graph = build_exy_graph(Mesh2D(size, size))
    acyclic = benchmark(is_acyclic_by_sat, graph)
    assert acyclic


def test_bench_sat_encoding_size(benchmark):
    """Size of the acyclicity CNF for the Fig. 3 instance and larger."""

    def encode_all():
        rows = []
        for size in (2, 3, 4):
            graph = build_exy_graph(Mesh2D(size, size))
            cnf, _ = encode_acyclicity(graph)
            rows.append([f"{size}x{size}", graph.vertex_count,
                         graph.edge_count, cnf.num_vars, cnf.num_clauses])
        return rows

    rows = benchmark.pedantic(encode_all, rounds=2, iterations=1)
    report("Acyclicity SAT encodings",
           format_table(["mesh", "ports", "edges", "variables", "clauses"],
                        rows))
    assert rows[0][1] == 24


def test_bench_scaling_summary(benchmark):
    """How the dependency graph and its check scale with mesh size."""
    import time

    def sweep():
        rows = []
        for size in (2, 4, 6, 8, 10):
            mesh = Mesh2D(size, size)
            graph = build_exy_graph(mesh)
            start = time.perf_counter()
            result = check_acyclicity(graph, methods=("dfs",))
            elapsed = time.perf_counter() - start
            rows.append([f"{size}x{size}", graph.vertex_count,
                         graph.edge_count, f"{elapsed * 1000:.2f}",
                         result.acyclic])
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("Dependency-graph scaling",
           format_table(["mesh", "ports", "edges", "DFS check (ms)",
                         "acyclic"], rows))
    assert all(row[4] for row in rows)
