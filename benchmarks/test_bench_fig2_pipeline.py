"""Fig. 2: the specification-method overview.

Fig. 2 summarises the methodology: the user supplies the constituents
(I, R, S), discharges the proof obligations, and obtains the three global
theorems (CorrThm, DeadThm, EvacThm) plus an executable specification.  This
benchmark runs that full pipeline -- obligations, theorem derivation and
workload runs with runtime verification -- for the HERMES instantiation and
for the second (ring) instantiation, demonstrating the genericity that is the
point of the figure.
"""

import pytest

from benchmarks.conftest import report
from repro.core.pipeline import verify_instance
from repro.hermes import build_hermes_instance
from repro.ringnoc import build_chain_ring_instance
from repro.simulation.workloads import standard_suite


@pytest.mark.parametrize("size", [3, 4])
def test_bench_full_pipeline_hermes(benchmark, size):
    instance = build_hermes_instance(size, size, buffer_capacity=2)
    workloads = [list(spec.travels)
                 for spec in standard_suite(instance, num_flits=3, seed=0)[:3]]

    result = benchmark.pedantic(verify_instance, args=(instance, workloads),
                                rounds=3, iterations=1)
    report(f"Fig. 2 pipeline, HERMES {size}x{size}", result.summary())
    assert result.verified
    assert set(result.theorems) == {"DeadThm", "CorrThm", "EvacThm"}
    assert all(run.evacuated for run in result.runs)


def test_bench_full_pipeline_ring(benchmark):
    """The same pipeline on a different instantiation (genericity)."""
    instance = build_chain_ring_instance(6, buffer_capacity=2)
    workloads = [
        [instance.make_travel((0, 0), (5, 0), num_flits=3),
         instance.make_travel((5, 0), (0, 0), num_flits=3),
         instance.make_travel((2, 0), (4, 0), num_flits=2)],
        [instance.make_travel((index, 0), (5 - index, 0), num_flits=2)
         for index in range(5) if index != 5 - index],
    ]

    result = benchmark.pedantic(verify_instance, args=(instance, workloads),
                                rounds=3, iterations=1)
    report("Fig. 2 pipeline, chain-routed ring of 6", result.summary())
    assert result.verified


def test_bench_obligations_only_vs_full_pipeline(benchmark, hermes_4x4):
    """How much of the pipeline cost is obligation discharge vs simulation."""
    from repro.core.pipeline import discharge_obligations

    workloads = [list(spec.travels)
                 for spec in standard_suite(hermes_4x4, num_flits=3)[:2]]
    results = benchmark(discharge_obligations, hermes_4x4, workloads)
    assert all(result.holds for result in results.values())
