"""Setuptools shim (the metadata lives in pyproject.toml).

Kept so that the package can be installed in environments whose pip/setuptools
combination lacks wheel support for PEP 660 editable installs.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
