"""The HERMES injection method ``Iid``.

All messages are assumed to be injected at time 0 (paper Section V.2), so
the injection method is the identity function; obligation (C-4) is immediate.
"""

from __future__ import annotations

from repro.core.constituents import IdentityInjection


class Iid(IdentityInjection):
    """The identity injection method of the HERMES instantiation."""

    def name(self) -> str:
        return "Iid"
