"""Flows and the parametric acyclicity argument for ``Exy_dep`` (Fig. 4).

The paper proves obligation (C-3) -- no cycle in the dependency graph -- for
meshes of *arbitrary* size with the notion of **flows**: a flow is a sequence
of ports which continually increases or decreases one coordinate, and a cycle
would have to both leave and re-enter a flow, which is impossible:

* the *Northern flow* consists of South-in and North-out ports and
  continually decreases the y-coordinate; its only escape is a local
  out-port (a sink);
* symmetrically for the Southern flow;
* the *Western/Eastern (horizontal) flows* consist of the horizontal ports;
  they can only escape into a local out-port or into a vertical flow,
  which in turn cannot escape.

This module makes that argument executable in two complementary ways:

1. **Flow extraction and escape analysis** (:func:`analyse_flows`): classify
   every port of a concrete mesh into its flow and check the escape
   properties above edge-by-edge.
2. **Rank certificate** (:func:`hermes_rank`,
   :func:`check_rank_certificate_on_mesh`,
   :func:`check_rank_case_analysis`): a numeric rank over ports --
   lexicographically (phase, progress) where vertical flows have a lower
   phase than horizontal flows and progress counts remaining hops within the
   flow -- that strictly decreases along *every* edge of ``Exy_dep``.  The
   per-instance check walks all edges of a bounded mesh; the case analysis
   checks the finitely many *edge kinds* with symbolic coordinate offsets,
   which is the size-independent (parametric) form of the proof.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.checking.graphs import check_rank_certificate
from repro.hermes.dependency import ExyDependencySpec, build_exy_graph
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName


class Flow(str, enum.Enum):
    """The four flows of the paper's Fig. 4, plus the local port classes."""

    #: South-in / North-out ports: movement towards decreasing y
    #: (the paper's "Northern flow").
    NORTHWARD = "northward"
    #: North-in / South-out ports: movement towards increasing y.
    SOUTHWARD = "southward"
    #: West-in / East-out ports: movement towards increasing x.
    EASTWARD = "eastward"
    #: East-in / West-out ports: movement towards decreasing x
    #: (the paper's "Western flow").
    WESTWARD = "westward"
    #: Local in-ports (injection).
    LOCAL_IN = "local-in"
    #: Local out-ports (delivery sinks).
    LOCAL_OUT = "local-out"


#: Phases of the rank certificate: sinks < vertical flows < horizontal
#: flows < injection ports.
_PHASE = {
    Flow.LOCAL_OUT: 0,
    Flow.NORTHWARD: 1,
    Flow.SOUTHWARD: 1,
    Flow.EASTWARD: 2,
    Flow.WESTWARD: 2,
    Flow.LOCAL_IN: 3,
}


def flow_of(port: Port) -> Flow:
    """The flow a port belongs to."""
    if port.name is PortName.LOCAL:
        return Flow.LOCAL_IN if port.is_input else Flow.LOCAL_OUT
    if port.is_input:
        return {
            PortName.SOUTH: Flow.NORTHWARD,
            PortName.NORTH: Flow.SOUTHWARD,
            PortName.WEST: Flow.EASTWARD,
            PortName.EAST: Flow.WESTWARD,
        }[port.name]
    return {
        PortName.NORTH: Flow.NORTHWARD,
        PortName.SOUTH: Flow.SOUTHWARD,
        PortName.EAST: Flow.EASTWARD,
        PortName.WEST: Flow.WESTWARD,
    }[port.name]


def hermes_rank(port: Port, width: int, height: int) -> Tuple[int, int]:
    """The rank certificate of the XY dependency graph.

    The first component is the flow phase (sinks lowest, then vertical
    flows, then horizontal flows, then injection ports); the second counts
    the remaining progress within the flow, with in-ports ranked just above
    the out-port of the same node so that every single edge of ``Exy_dep``
    strictly decreases the pair lexicographically.
    """
    flow = flow_of(port)
    phase = _PHASE[flow]
    if flow is Flow.LOCAL_OUT or flow is Flow.LOCAL_IN:
        return (phase, 0)
    is_in = 1 if port.is_input else 0
    if flow is Flow.NORTHWARD:
        return (phase, 2 * port.y + is_in)
    if flow is Flow.SOUTHWARD:
        return (phase, 2 * (height - 1 - port.y) + is_in)
    if flow is Flow.EASTWARD:
        return (phase, 2 * (width - 1 - port.x) + is_in)
    # Westward flow.
    return (phase, 2 * port.x + is_in)


# ---------------------------------------------------------------------------
# Flow extraction and escape analysis (the Fig. 4 benchmark)
# ---------------------------------------------------------------------------

@dataclass
class FlowAnalysis:
    """Classification of a mesh's ports into flows plus escape statistics."""

    mesh: Mesh2D
    members: Dict[Flow, List[Port]] = field(default_factory=dict)
    #: For every flow: the edges that leave the flow, grouped by the flow
    #: (or local class) they escape into.
    escapes: Dict[Flow, Dict[Flow, int]] = field(default_factory=dict)
    #: Edges that stay inside their flow.
    internal_edges: Dict[Flow, int] = field(default_factory=dict)

    @property
    def vertical_flows_escape_only_to_sinks(self) -> bool:
        """Paper: the only escape from a vertical flow is a local out-port."""
        for flow in (Flow.NORTHWARD, Flow.SOUTHWARD):
            for target_flow, count in self.escapes.get(flow, {}).items():
                if count and target_flow is not Flow.LOCAL_OUT:
                    return False
        return True

    @property
    def horizontal_flows_escape_only_to_vertical_or_sinks(self) -> bool:
        """Paper: horizontal flows escape only into vertical flows or sinks."""
        allowed = {Flow.LOCAL_OUT, Flow.NORTHWARD, Flow.SOUTHWARD}
        for flow in (Flow.EASTWARD, Flow.WESTWARD):
            for target_flow, count in self.escapes.get(flow, {}).items():
                if count and target_flow not in allowed:
                    return False
        return True

    def flow_sizes(self) -> Dict[Flow, int]:
        return {flow: len(ports) for flow, ports in self.members.items()}


def analyse_flows(mesh: Mesh2D) -> FlowAnalysis:
    """Classify all ports of ``mesh`` into flows and analyse flow escapes."""
    spec = ExyDependencySpec(mesh)
    analysis = FlowAnalysis(mesh=mesh)
    for flow in Flow:
        analysis.members[flow] = []
        analysis.escapes[flow] = {}
        analysis.internal_edges[flow] = 0
    for port in mesh.ports:
        analysis.members[flow_of(port)].append(port)
    for source, target in spec.edges():
        source_flow = flow_of(source)
        target_flow = flow_of(target)
        if source_flow is target_flow:
            analysis.internal_edges[source_flow] += 1
        else:
            bucket = analysis.escapes[source_flow]
            bucket[target_flow] = bucket.get(target_flow, 0) + 1
    return analysis


def coordinate_monotone_along_flow(mesh: Mesh2D, flow: Flow) -> bool:
    """Check the paper's "continually decreases/increases a coordinate".

    Every ``Exy_dep`` edge that stays inside ``flow`` must move the flow's
    coordinate strictly in the flow's direction (at the rank granularity
    used by :func:`hermes_rank`).
    """
    spec = ExyDependencySpec(mesh)
    for source, target in spec.edges():
        if flow_of(source) is not flow or flow_of(target) is not flow:
            continue
        source_rank = hermes_rank(source, mesh.width, mesh.height)
        target_rank = hermes_rank(target, mesh.width, mesh.height)
        if not target_rank < source_rank:
            return False
    return True


# ---------------------------------------------------------------------------
# Rank certificate: per-instance check and parametric case analysis
# ---------------------------------------------------------------------------

def check_rank_certificate_on_mesh(mesh: Mesh2D) -> List[Tuple[Port, Port]]:
    """Check the rank certificate on every edge of a concrete mesh.

    Returns the violating edges (empty list = certificate holds, hence the
    dependency graph is acyclic).
    """
    graph = build_exy_graph(mesh)
    rank = {port: hermes_rank(port, mesh.width, mesh.height)
            for port in graph.vertices}
    return check_rank_certificate(graph, rank, sinks=set())


@dataclass
class RankCase:
    """One symbolic edge kind of ``Exy_dep`` and its rank delta."""

    description: str
    source_kind: Tuple[PortName, Direction]
    target_kind: Tuple[PortName, Direction]
    #: (dx, dy) offset of the target port's node relative to the source's.
    node_offset: Tuple[int, int]
    #: The lexicographic rank delta observed (must be negative and identical
    #: at every sampled coordinate).
    decreases: bool
    coordinate_independent: bool


def _edge_kinds() -> List[Tuple[Tuple[PortName, Direction],
                                Tuple[PortName, Direction],
                                Tuple[int, int]]]:
    """The finitely many edge kinds of ``Exy_dep`` (independent of mesh size)."""
    kinds = []
    # In-port -> out-ports of the same node, following next_outs.
    in_successors = {
        PortName.LOCAL: [PortName.LOCAL, PortName.WEST, PortName.EAST,
                         PortName.NORTH, PortName.SOUTH],
        PortName.WEST: [PortName.LOCAL, PortName.EAST, PortName.NORTH,
                        PortName.SOUTH],
        PortName.EAST: [PortName.LOCAL, PortName.WEST, PortName.NORTH,
                        PortName.SOUTH],
        PortName.NORTH: [PortName.LOCAL, PortName.SOUTH],
        PortName.SOUTH: [PortName.LOCAL, PortName.NORTH],
    }
    for in_name, out_names in in_successors.items():
        for out_name in out_names:
            kinds.append(((in_name, Direction.IN), (out_name, Direction.OUT),
                          (0, 0)))
    # Cardinal out-port -> in-port of the neighbouring node (next_in).
    neighbour = {
        PortName.EAST: (PortName.WEST, (1, 0)),
        PortName.WEST: (PortName.EAST, (-1, 0)),
        PortName.NORTH: (PortName.SOUTH, (0, -1)),
        PortName.SOUTH: (PortName.NORTH, (0, 1)),
    }
    for out_name, (in_name, offset) in neighbour.items():
        kinds.append(((out_name, Direction.OUT), (in_name, Direction.IN),
                      offset))
    return kinds


def check_rank_case_analysis(samples: Sequence[Tuple[int, int, int, int]] = (
        (3, 3, 8, 8), (1, 5, 9, 7), (4, 2, 6, 11), (2, 2, 5, 5),
        (5, 1, 12, 6))) -> List[RankCase]:
    """The parametric (size-independent) form of the (C-3) proof.

    For each of the finitely many *edge kinds* of ``Exy_dep`` -- in-port to
    out-port within a node, and out-port to the neighbouring in-port -- the
    rank delta is evaluated at several interior coordinates ``(x, y)`` and
    mesh sizes ``(w, h)``.  The delta must (a) be strictly decreasing and
    (b) not depend on the coordinates; together with the fact that the edge
    kinds cover every edge of ``Exy_dep`` on any mesh, this establishes
    acyclicity for arbitrary mesh sizes.

    Returns one :class:`RankCase` per edge kind; the proof succeeds iff every
    case has ``decreases`` and ``coordinate_independent`` set.
    """
    cases: List[RankCase] = []
    for (src_name, src_dir), (dst_name, dst_dir), offset in _edge_kinds():
        phase_deltas = set()
        distance_deltas = set()
        decreasing = True
        for x, y, width, height in samples:
            source = Port(x, y, src_name, src_dir)
            target = Port(x + offset[0], y + offset[1], dst_name, dst_dir)
            source_rank = hermes_rank(source, width, height)
            target_rank = hermes_rank(target, width, height)
            phase_deltas.add(target_rank[0] - source_rank[0])
            distance_deltas.add(target_rank[1] - source_rank[1])
            if not target_rank < source_rank:
                decreasing = False
        # The decrease is established coordinate-independently when either the
        # phase strictly drops (phases depend only on the port kind, never on
        # coordinates), or the phase is unchanged and the within-flow distance
        # drops by the same constant at every sampled coordinate.
        phase_delta = phase_deltas.pop() if len(phase_deltas) == 1 else None
        if phase_delta is None:
            coordinate_independent = False
        elif phase_delta < 0:
            coordinate_independent = True
        else:
            coordinate_independent = (
                phase_delta == 0
                and len(distance_deltas) == 1
                and next(iter(distance_deltas)) < 0)
        cases.append(RankCase(
            description=(f"{src_name.value}-{src_dir.value} -> "
                         f"{dst_name.value}-{dst_dir.value}"),
            source_kind=(src_name, src_dir),
            target_kind=(dst_name, dst_dir),
            node_offset=offset,
            decreases=decreasing,
            coordinate_independent=coordinate_independent,
        ))
    return cases


def parametric_c3_holds(cases: Optional[List[RankCase]] = None) -> bool:
    """Does the parametric case analysis establish (C-3) for all mesh sizes?"""
    if cases is None:
        cases = check_rank_case_analysis()
    return all(case.decreases and case.coordinate_independent for case in cases)
