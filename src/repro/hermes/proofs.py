"""Discharging the proof obligations for the HERMES instantiation.

The paper's Section VI discharges (C-1)xy, (C-2)xy, (C-3)xy, (C-4) and
(C-5)wh in ACL2.  This module provides the automated counterparts:

* :func:`discharge_c1_xy`, :func:`discharge_c2_xy`, :func:`discharge_c3_xy`
  -- exhaustive checks on a bounded mesh (plus, for C-3, the parametric
  rank-certificate case analysis of :mod:`repro.hermes.flows`);
* :func:`discharge_c4_iid`, :func:`discharge_c5_wh` -- extensional checks
  over a family of workloads;
* :func:`discharge_all` -- the full "user input, part II" bundle, returning
  a :class:`HermesProofReport` that the Table I benchmark converts into the
  verification-effort table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.configuration import Configuration
from repro.core.obligations import (
    ObligationResult,
    check_c1,
    check_c2,
    check_c3,
    check_c4,
    check_c5,
)
from repro.core.travel import Travel
from repro.hermes.flows import (
    check_rank_case_analysis,
    check_rank_certificate_on_mesh,
    parametric_c3_holds,
)
from repro.hermes.instantiation import HermesInstance, build_hermes_instance


def discharge_c1_xy(instance: HermesInstance) -> ObligationResult:
    """(C-1)xy: every XY hop for a reachable destination is an ``Exy_dep`` edge."""
    assert instance.dependency_spec is not None
    return check_c1(instance.routing, instance.dependency_spec)


def discharge_c2_xy(instance: HermesInstance) -> ObligationResult:
    """(C-2)xy: every ``Exy_dep`` edge is witnessed by ``find_dest``."""
    assert instance.dependency_spec is not None
    return check_c2(instance.routing, instance.dependency_spec,
                    instance.witness_destination)


def discharge_c3_xy(instance: HermesInstance,
                    methods: Sequence[str] = ("dfs", "scc", "toposort"),
                    include_parametric: bool = True) -> ObligationResult:
    """(C-3)xy: no cycle in ``Exy_dep``.

    The bounded check runs the requested cycle-search methods on the concrete
    mesh; when ``include_parametric`` is set, the rank certificate is also
    checked edge-by-edge on the mesh and the size-independent case analysis
    is evaluated, mirroring the paper's arbitrary-size proof.
    """
    assert instance.dependency_spec is not None
    start = time.perf_counter()
    bounded = check_c3(instance.dependency_spec, methods=methods)
    result = ObligationResult(
        name="C-3", holds=bounded.holds, checks=bounded.checks,
        counterexamples=list(bounded.counterexamples),
        details=dict(bounded.details))
    if include_parametric:
        violations = check_rank_certificate_on_mesh(instance.mesh)
        cases = check_rank_case_analysis()
        result.checks += (instance.dependency_spec.to_graph().edge_count
                          + len(cases))
        result.details["rank_certificate_violations"] = len(violations)
        result.details["parametric_cases"] = len(cases)
        result.details["parametric_holds"] = parametric_c3_holds(cases)
        if violations:
            result.holds = False
            result.counterexamples.append(
                f"rank certificate violated on {len(violations)} edges")
        if not parametric_c3_holds(cases):
            result.holds = False
            result.counterexamples.append(
                "parametric rank case analysis failed")
    result.elapsed_seconds = time.perf_counter() - start
    return result


def discharge_c4_iid(instance: HermesInstance,
                     workloads: Sequence[Sequence[Travel]]) -> ObligationResult:
    """(C-4): ``Iid(σ) = σ`` on the given workloads' initial configurations."""
    configurations = [
        instance.routing.route_configuration(
            instance.initial_configuration(workload))
        for workload in workloads]
    return check_c4(instance.injection, configurations)


def discharge_c5_wh(instance: HermesInstance,
                    workloads: Sequence[Sequence[Travel]],
                    strict: bool = True) -> ObligationResult:
    """(C-5)wh: the measure decreases on every non-deadlocked wormhole step."""
    configurations = [
        instance.routing.route_configuration(
            instance.initial_configuration(workload))
        for workload in workloads]
    return check_c5(instance.switching, instance.measure, configurations,
                    strict=strict)


@dataclass
class HermesProofReport:
    """All obligations discharged for one HERMES instance."""

    instance: HermesInstance
    results: Dict[str, ObligationResult] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def all_hold(self) -> bool:
        return all(result.holds for result in self.results.values())

    @property
    def total_checks(self) -> int:
        return sum(result.checks for result in self.results.values())

    def summary_lines(self) -> List[str]:
        lines = [f"Proof obligations for {self.instance.name}"]
        for name, result in sorted(self.results.items()):
            status = "holds" if result.holds else "VIOLATED"
            lines.append(f"  {name:<5} {status:<9} {result.checks:>7} checks"
                         f"  {result.elapsed_seconds:8.3f}s")
        lines.append(f"  total: {self.total_checks} checks in "
                     f"{self.elapsed_seconds:.3f}s -> "
                     f"{'all hold' if self.all_hold else 'VIOLATIONS FOUND'}")
        return lines


def discharge_all(width: int, height: int,
                  workloads: Optional[Sequence[Sequence[Travel]]] = None,
                  buffer_capacity: int = 2,
                  c3_methods: Sequence[str] = ("dfs", "scc", "toposort"),
                  ) -> HermesProofReport:
    """Discharge (C-1) ... (C-5) for a ``width x height`` HERMES mesh.

    When no workloads are supplied, a small default family (one message per
    node to the opposite corner, plus a transpose-like pattern) is used for
    the extensional obligations (C-4) and (C-5).
    """
    start = time.perf_counter()
    instance = build_hermes_instance(width, height,
                                     buffer_capacity=buffer_capacity)
    if workloads is None:
        workloads = default_workloads(instance)
    report = HermesProofReport(instance=instance)
    report.results["C-1"] = discharge_c1_xy(instance)
    report.results["C-2"] = discharge_c2_xy(instance)
    report.results["C-3"] = discharge_c3_xy(instance, methods=c3_methods)
    report.results["C-4"] = discharge_c4_iid(instance, workloads)
    report.results["C-5"] = discharge_c5_wh(instance, workloads)
    report.elapsed_seconds = time.perf_counter() - start
    return report


def default_workloads(instance: HermesInstance,
                      num_flits: int = 3) -> List[List[Travel]]:
    """A small deterministic workload family used for (C-4)/(C-5).

    * every node sends one message to the diagonally opposite node;
    * every node sends one message to its transposed coordinate (when it
      exists).
    """
    mesh = instance.mesh
    opposite: List[Travel] = []
    transpose: List[Travel] = []
    for x in range(mesh.width):
        for y in range(mesh.height):
            target = (mesh.width - 1 - x, mesh.height - 1 - y)
            if target != (x, y):
                opposite.append(instance.make_travel((x, y), target,
                                                     num_flits=num_flits))
            if mesh.in_bounds(y, x) and (y, x) != (x, y):
                transpose.append(instance.make_travel((x, y), (y, x),
                                                      num_flits=num_flits))
    workloads = [workload for workload in (opposite, transpose) if workload]
    return workloads
