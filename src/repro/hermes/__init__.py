"""The HERMES instantiation of GeNoC (paper Sections II, V and VI).

This package is the "user input" of the methodology for a parametric 2D-mesh
NoC inspired by HERMES:

* :mod:`repro.hermes.ports` -- the port algebra: ``next_outs`` and
  ``find_dest`` (Sections V.6 and VI-A).
* :mod:`repro.hermes.routing` -- re-exports the XY routing function ``Rxy``.
* :mod:`repro.hermes.injection` -- the identity injection method ``Iid``.
* :mod:`repro.hermes.dependency` -- the declared dependency graph
  ``Exy_dep``.
* :mod:`repro.hermes.flows` -- the flows of Fig. 4 and the rank certificate
  that discharges (C-3) parametrically.
* :mod:`repro.hermes.proofs` -- the discharge of (C-1) ... (C-5) for
  concrete mesh sizes plus the parametric certificate.
* :mod:`repro.hermes.instantiation` -- ``GeNoC2D``: bundling everything into
  a :class:`~repro.core.instance.NoCInstance`.
"""

from repro.hermes.ports import next_outs, find_dest
from repro.hermes.injection import Iid
from repro.hermes.dependency import ExyDependencySpec, build_exy_graph
from repro.hermes.flows import (
    Flow,
    FlowAnalysis,
    analyse_flows,
    hermes_rank,
    check_rank_certificate_on_mesh,
    check_rank_case_analysis,
)
from repro.hermes.instantiation import (
    HermesInstance,
    build_hermes_instance,
    GeNoC2D,
)
from repro.hermes.proofs import (
    discharge_c1_xy,
    discharge_c2_xy,
    discharge_c3_xy,
    discharge_c4_iid,
    discharge_c5_wh,
    discharge_all,
    HermesProofReport,
)
from repro.routing.xy import XYRouting as Rxy

__all__ = [
    "next_outs",
    "find_dest",
    "Iid",
    "ExyDependencySpec",
    "build_exy_graph",
    "Flow",
    "FlowAnalysis",
    "analyse_flows",
    "hermes_rank",
    "check_rank_certificate_on_mesh",
    "check_rank_case_analysis",
    "HermesInstance",
    "build_hermes_instance",
    "GeNoC2D",
    "discharge_c1_xy",
    "discharge_c2_xy",
    "discharge_c3_xy",
    "discharge_c4_iid",
    "discharge_c5_wh",
    "discharge_all",
    "HermesProofReport",
    "Rxy",
]
