"""The HERMES port algebra: ``next_outs`` and ``find_dest``.

``next_outs(p)`` (paper Section V.6) returns the set of out-ports an in-port
may depend on -- it encodes which turns XY routing can take at a switch:

* the local out-port (delivery) is always possible;
* the West out-port is possible only for packets arriving from the East or
  from the local core (XY routing never turns back West after going East,
  North or South);
* the East out-port is possible only for packets arriving from the West or
  the local core;
* the North out-port is possible for every arrival except from the North
  (no U-turn) -- note that arrivals from the East/West may turn North, but
  arrivals from the North never do;
* symmetrically for the South out-port.

``find_dest(p)`` (paper Section VI-A) returns the nearest destination port
reachable from ``p`` and is the witness function for obligation (C-2).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.network.mesh import Mesh2D
from repro.network.port import (
    Direction,
    Port,
    PortName,
    next_in,
    trans,
)


def next_outs(port: Port, mesh: Optional[Mesh2D] = None) -> Set[Port]:
    """The set of out-ports connected to an in-port by ``Exy_dep``.

    When a ``mesh`` is given, out-ports that do not exist on that mesh
    (because the node is on the boundary) are filtered out.
    """
    if port.direction is not Direction.IN:
        raise ValueError(f"next_outs is defined on in-ports, got {port}")
    result: Set[Port] = {trans(port, PortName.LOCAL, Direction.OUT)}
    if port.name in (PortName.EAST, PortName.LOCAL):
        result.add(trans(port, PortName.WEST, Direction.OUT))
    if port.name in (PortName.WEST, PortName.LOCAL):
        result.add(trans(port, PortName.EAST, Direction.OUT))
    if port.name is not PortName.NORTH:
        result.add(trans(port, PortName.NORTH, Direction.OUT))
    if port.name is not PortName.SOUTH:
        result.add(trans(port, PortName.SOUTH, Direction.OUT))
    if mesh is not None:
        result = {candidate for candidate in result if mesh.has_port(candidate)}
    return result


def find_dest(port: Port, mesh: Optional[Mesh2D] = None) -> Port:
    """The nearest destination (local out-port) reachable from ``port``.

    * for an in-port, the local out-port of the same node;
    * for a cardinal out-port, the local out-port of the neighbouring node it
      feeds;
    * for a local out-port, the port itself (it already is a destination).
    """
    if port.direction is Direction.IN:
        return trans(port, PortName.LOCAL, Direction.OUT)
    if port.name is PortName.LOCAL:
        return port
    neighbour = next_in(port)
    if mesh is not None and not mesh.has_port(neighbour):
        raise ValueError(
            f"out-port {port} points outside the mesh; it has no destination")
    return trans(neighbour, PortName.LOCAL, Direction.OUT)


def witness_destination(edge_source: Port, edge_target: Port,
                        mesh: Optional[Mesh2D] = None) -> Port:
    """The (C-2) witness for a dependency edge ``(p0, p1)``.

    Following the paper (Section VI-A), the witness is the nearest
    destination reachable from the *target* port ``p1``: messages in ``p0``
    destined there take ``p1`` as their next hop.
    """
    return find_dest(edge_target, mesh)
