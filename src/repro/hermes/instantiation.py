"""``GeNoC2D``: the complete HERMES instantiation as a :class:`NoCInstance`.

The paper's Section V.5 defines ``GeNoC2D`` as the instantiation of the
generic ``GeNoC`` function with immediate injection (``Iid``), pre-computed
XY routes (``Rxy``) and wormhole switching (``Swh``).  Here the same bundling
is expressed as a :class:`~repro.core.instance.NoCInstance`, which the
obligation engine, theorem checkers, simulator and benchmarks all consume.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.configuration import Configuration
from repro.core.genoc import GeNoCEngine, GeNoCResult
from repro.core.instance import NoCInstance
from repro.core.measure import flit_hop_measure
from repro.core.spec import (
    SWITCHING_TOKENS,
    ScenarioSpec,
    fault_suffix,
    register_builder,
    resolve_measure,
    resolve_switching,
)
from repro.core.travel import Travel
from repro.hermes.dependency import ExyDependencySpec
from repro.hermes.injection import Iid
from repro.hermes.ports import witness_destination
from repro.network.mesh import Mesh2D
from repro.network.port import Port
from repro.routing.xy import XYRouting
from repro.switching.wormhole import WormholeSwitching


class MeshWitness:
    """The (C-2) witness function of a mesh, as a picklable callable.

    Instances (and therefore the scenarios of the portfolio driver) must be
    shippable to :class:`concurrent.futures.ProcessPoolExecutor` workers, so
    the witness cannot be a closure over the mesh.
    """

    def __init__(self, mesh: Mesh2D) -> None:
        self._mesh = mesh

    def __call__(self, edge_source: Port, edge_target: Port) -> Port:
        return witness_destination(edge_source, edge_target, self._mesh)


class HermesInstance(NoCInstance):
    """A :class:`NoCInstance` specialised to the HERMES 2D mesh."""

    @property
    def mesh(self) -> Mesh2D:
        assert isinstance(self.topology, Mesh2D)
        return self.topology

    @property
    def width(self) -> int:
        return self.mesh.width

    @property
    def height(self) -> int:
        return self.mesh.height


def build_hermes_instance(width: int, height: int,
                          buffer_capacity: int = 2,
                          switching: Optional[object] = None,
                          routing: Optional[object] = None,
                          measure: Optional[object] = None,
                          mesh: Optional[Mesh2D] = None) -> HermesInstance:
    """Build the HERMES instantiation for a ``width x height`` mesh.

    ``buffer_capacity`` is the number of 1-flit buffers per port (Fig. 1b
    shows two).  ``switching`` and ``routing`` may be overridden to build the
    ablation variants (e.g. store-and-forward switching or YX routing); the
    dependency graph and witness function are only attached when the routing
    is the paper's XY routing, since ``Exy_dep`` is specific to it.
    ``mesh`` overrides the topology (the fault-injected builder path passes
    a :class:`~repro.network.faults.FaultyMesh2D`); the routing must then be
    defined over that same topology.
    """
    plain = mesh is None
    if plain:
        mesh = Mesh2D(width, height)
    routing_fn = routing if routing is not None else XYRouting(mesh)
    switching_fn = switching if switching is not None else WormholeSwitching()
    uses_xy = isinstance(routing_fn, XYRouting)
    dependency = ExyDependencySpec(mesh) if uses_xy else None

    return HermesInstance(
        name=(f"HERMES-{width}x{height}" if plain else f"HERMES-{mesh}"),
        topology=mesh,
        injection=Iid(),
        routing=routing_fn,
        switching=switching_fn,
        dependency_spec=dependency,
        witness_destination=MeshWitness(mesh) if uses_xy else None,
        measure=measure if measure is not None else flit_hop_measure,
        default_capacity=buffer_capacity,
    )


# ---------------------------------------------------------------------------
# The "mesh" scenario kind (declarative spec layer)
# ---------------------------------------------------------------------------

def _mesh_routing(token: str, mesh: Mesh2D):
    """The mesh routing function named by a spec's routing token."""
    from repro.routing.adaptive import (
        FullyAdaptiveMinimalRouting,
        ZigZagRouting,
    )
    from repro.routing.turn_model import (
        NegativeFirstRouting,
        NorthLastRouting,
        OddEvenRouting,
        WestFirstRouting,
    )
    from repro.routing.yx import YXRouting

    routings = {
        "xy": XYRouting,
        "yx": YXRouting,
        "west-first": WestFirstRouting,
        "north-last": NorthLastRouting,
        "negative-first": NegativeFirstRouting,
        "odd-even": OddEvenRouting,
        "adaptive": FullyAdaptiveMinimalRouting,
        "zigzag": ZigZagRouting,
    }
    return routings[token](mesh)


MESH_ROUTING_TOKENS = ("xy", "yx", "west-first", "north-last",
                       "negative-first", "odd-even", "adaptive", "zigzag")


def build_mesh_from_spec(spec: ScenarioSpec) -> HermesInstance:
    """:class:`InstanceBuilder` of the ``mesh`` kind.

    ``faults = 0`` is byte-for-byte the historical healthy construction
    path; ``faults > 0`` samples the deterministic fault set, builds the
    faulty mesh and reroutes via the fault-aware variant of the routing
    token (:mod:`repro.routing.fault_aware`).
    """
    width, height = spec.dims
    if spec.faults:
        from repro.network.faults import FaultyMesh2D, sample_fault_spec
        from repro.routing.fault_aware import fault_aware_mesh_routing

        fault_spec = sample_fault_spec(Mesh2D(width, height), spec.faults,
                                       spec.fault_seed)
        mesh = FaultyMesh2D(width, height, fault_spec)
        routing = fault_aware_mesh_routing(spec.routing, mesh)
    else:
        mesh = Mesh2D(width, height)
        routing = _mesh_routing(spec.routing, mesh)
    return build_hermes_instance(
        width, height,
        buffer_capacity=spec.buffers,
        routing=routing,
        switching=resolve_switching(spec.switching),
        measure=resolve_measure(spec.measure),
        mesh=mesh if spec.faults else None,
    )


def _mesh_scenario_name(spec: ScenarioSpec) -> str:
    switching = resolve_switching(spec.switching).name()
    return (f"{spec.group_key()}/R{spec.routing}/{switching}"
            f"{fault_suffix(spec)}")


register_builder(
    "mesh", build_mesh_from_spec,
    description="HERMES 2D mesh (port-level model, paper Section V)",
    dim_count=2,
    routings=MESH_ROUTING_TOKENS,
    default_routing="xy",
    switchings=SWITCHING_TOKENS,
    default_switching="wormhole",
    supports_faults=True,
    namer=_mesh_scenario_name,
)


def GeNoC2D(config: Configuration, width: int, height: int,
            buffer_capacity: int = 2,
            max_steps: Optional[int] = None) -> GeNoCResult:
    """The paper's ``GeNoC2D`` function, executed on a configuration.

    Runs the HERMES instantiation (immediate injection, pre-computed XY
    routes, wormhole switching) until every message has evacuated or a
    deadlock is reached.
    """
    instance = build_hermes_instance(width, height,
                                     buffer_capacity=buffer_capacity)
    return instance.engine(max_steps=max_steps).run(config)


def run_hermes(width: int, height: int, travels: Sequence[Travel],
               buffer_capacity: int = 2,
               max_steps: Optional[int] = None) -> GeNoCResult:
    """Convenience wrapper: build the instance and run a message list."""
    instance = build_hermes_instance(width, height,
                                     buffer_capacity=buffer_capacity)
    return instance.run(travels, max_steps=max_steps)
