"""The declared dependency graph ``Exy_dep`` of the HERMES instantiation.

``Exy_dep`` (paper Section V.6) connects

* each in-port to the set of out-ports given by ``next_outs`` (the turns XY
  routing can take), and
* each cardinal out-port to the in-port it physically feeds (``next_in``);
* local out-ports are sinks: they deliver to the IP core and have no
  outgoing dependencies.

Fig. 3 of the paper draws this graph for a 2x2 mesh; the Fig. 3 benchmark
regenerates its statistics for a range of mesh sizes.
"""

from __future__ import annotations

from typing import Set

from repro.checking.graphs import DirectedGraph
from repro.core.dependency import DependencyGraphSpec
from repro.hermes.ports import next_outs
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName, next_in


class ExyDependencySpec(DependencyGraphSpec):
    """``Exy_dep`` over a concrete 2D mesh."""

    def __init__(self, mesh: Mesh2D) -> None:
        self._mesh = mesh

    @property
    def topology(self) -> Mesh2D:
        return self._mesh

    @property
    def mesh(self) -> Mesh2D:
        return self._mesh

    def edges_from(self, port: Port) -> Set[Port]:
        if port.direction is Direction.IN:
            return next_outs(port, self._mesh)
        if port.name is PortName.LOCAL:
            # Local out-ports deliver to the IP core: no dependencies.
            return set()
        target = next_in(port)
        if not self._mesh.has_port(target):
            # An out-port pointing outside the mesh (cannot happen for
            # meshes built by Mesh2D, which omits such ports).
            return set()
        return {target}


def build_exy_graph(mesh: Mesh2D) -> DirectedGraph[Port]:
    """Materialise ``Exy_dep`` for a mesh as a :class:`DirectedGraph`."""
    return ExyDependencySpec(mesh).to_graph()
