"""DIMACS CNF reader/writer.

Allows the acyclicity encodings to be exported for external solvers and the
test suite to round-trip formulas.
"""

from __future__ import annotations

from typing import List, TextIO

from repro.checking.cnf import CNF


def write_dimacs(cnf: CNF, stream: TextIO, comments: List[str] = None) -> None:
    """Write ``cnf`` to ``stream`` in DIMACS format."""
    for comment in comments or []:
        stream.write(f"c {comment}\n")
    for name, var in sorted(cnf.named_variables().items()):
        stream.write(f"c var {var} = {name}\n")
    stream.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf.iter_clauses():
        stream.write(" ".join(str(literal) for literal in clause) + " 0\n")


def dimacs_string(cnf: CNF, comments: List[str] = None) -> str:
    """Return the DIMACS text of ``cnf``."""
    import io

    buffer = io.StringIO()
    write_dimacs(cnf, buffer, comments=comments)
    return buffer.getvalue()


def read_dimacs(stream: TextIO) -> CNF:
    """Parse a DIMACS CNF file."""
    cnf = CNF()
    declared_vars = None
    for raw_line in stream:
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(fields[2])
            continue
        literals = [int(token) for token in line.split()]
        if literals and literals[-1] == 0:
            literals = literals[:-1]
        cnf.add_clause(literals)
    if declared_vars is not None:
        while cnf.num_vars < declared_vars:
            cnf.new_var()
    return cnf


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS text."""
    import io

    return read_dimacs(io.StringIO(text))
