"""Exhaustive exploration of NoC configuration spaces.

This module turns a :class:`~repro.core.instance.NoCInstance` plus a concrete
workload into an explicit-state transition system whose transitions are
"one chosen message advances by one hop" (all interleavings), and searches it
for reachable deadlock states.  It is the empirical, model-checking
counterpart of Theorem 1:

* for the HERMES/XY instantiation the dependency graph is acyclic and the
  search finds **no** reachable deadlock (for any interleaving);
* for the deliberately cyclic baselines (unrestricted adaptive routing, a
  dateline-free ring) the search exhibits a reachable deadlock state.

State spaces grow quickly, so this is meant for small meshes and small
workloads -- exactly the fixed-instance check the paper contrasts with its
parametric ACL2 proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checking.ts import ReachabilityResult, TransitionSystem
from repro.core.configuration import (
    Configuration,
    NOT_INJECTED,
    TravelProgress,
)
from repro.core.instance import NoCInstance
from repro.core.state import NetworkState
from repro.core.travel import Travel
from repro.switching.base import SingleTravelStepper
from repro.switching.wormhole import WormholeSwitching

#: A hashable encoding of a configuration: per travel (sorted by id), the
#: tuple of flit positions along its route.
StateKey = Tuple[Tuple[int, Tuple[int, ...]], ...]


class _WormholeKeyStepper:
    """Successor generation directly on state keys for wormhole switching.

    The state key (per travel, the tuple of its flit positions) fully
    determines the network state: a flit at route index ``i`` occupies the
    port ``route[i]``, a port is owned by the (unique) travel whose flits it
    holds, and ownership lapses exactly when the port drains.  Exploiting
    this, successors can be computed on plain integer tuples -- no
    :class:`Configuration`/:class:`NetworkState` decode, copy and re-encode
    per transition, which is where the generic path spends almost all of its
    time.  The semantics mirror
    :meth:`repro.switching.wormhole.WormholeSwitching.advance_travel` (the
    pipelined worm shift) and are cross-checked against it by the
    property-based tests.

    Only plain wormhole switching qualifies: subclasses (virtual
    cut-through) strengthen the admission test, so the generic decode-based
    path is used for them.
    """

    def __init__(self, routes: Dict[int, Tuple], capacities: Dict) -> None:
        self._routes = routes
        self._capacities = capacities

    def successors(self, state: StateKey) -> List[StateKey]:
        routes = self._routes
        # Occupancy and ownership derived from the flit positions.
        occupancy: Dict = {}
        owner: Dict = {}
        for travel_id, positions in state:
            route = routes[travel_id]
            ejected = len(route)
            for position in positions:
                if NOT_INJECTED < position < ejected:
                    port = route[position]
                    occupancy[port] = occupancy.get(port, 0) + 1
                    owner[port] = travel_id
        result: List[StateKey] = []
        for index, (travel_id, positions) in enumerate(state):
            advanced = self._advance(travel_id, positions, occupancy, owner)
            if advanced is not None:
                result.append(state[:index] + ((travel_id, advanced),)
                              + state[index + 1:])
        return result

    def _advance(self, travel_id: int, positions: Tuple[int, ...],
                 occupancy: Dict, owner: Dict) -> Optional[Tuple[int, ...]]:
        """One pipelined worm shift of a single travel, or ``None``.

        Mirrors ``WormholeSwitching._advance_worm`` on position tuples.
        """
        route = self._routes[travel_id]
        ejected = len(route)
        capacities = self._capacities

        # Cheap header check first, so blocked travels cost no dict copies.
        leader_position = None
        for position in positions:
            if position != ejected:
                leader_position = position
                break
        if leader_position is None:
            return None  # fully ejected: nothing left to move
        if leader_position != ejected - 1:
            target_index = 0 if leader_position == NOT_INJECTED \
                else leader_position + 1
            target = route[target_index]
            if (occupancy.get(target, 0) >= capacities[target]
                    or owner.get(target, travel_id) != travel_id):
                return None

        # The shift mutates occupancy/ownership as flits move; work on
        # copies so the caller's maps stay valid for the other travels.
        occupancy = dict(occupancy)
        owner = dict(owner)
        new_positions = list(positions)
        predecessor_moved = True  # the "predecessor" of the leader is the sink
        any_moved = False
        for index, position in enumerate(positions):
            if position == ejected:
                predecessor_moved = True
                continue
            if not predecessor_moved:
                predecessor_moved = False
                continue
            if position == ejected - 1:
                # Ejection at the destination local out-port.
                self._release(route[position], occupancy, owner)
                new_positions[index] = ejected
                predecessor_moved = True
                any_moved = True
                continue
            target_index = 0 if position == NOT_INJECTED else position + 1
            target = route[target_index]
            if (occupancy.get(target, 0) >= capacities[target]
                    or owner.get(target, travel_id) != travel_id):
                predecessor_moved = False
                continue
            if position != NOT_INJECTED:
                self._release(route[position], occupancy, owner)
            occupancy[target] = occupancy.get(target, 0) + 1
            owner[target] = travel_id
            new_positions[index] = target_index
            predecessor_moved = True
            any_moved = True
        if not any_moved:
            return None
        return tuple(new_positions)

    @staticmethod
    def _release(port, occupancy: Dict, owner: Dict) -> None:
        remaining = occupancy.get(port, 0) - 1
        if remaining <= 0:
            occupancy.pop(port, None)
            owner.pop(port, None)  # ownership lapses when the port drains
        else:
            occupancy[port] = remaining


class ConfigurationSpace:
    """The reachable configuration space of a workload on an instance.

    ``use_fast_stepper`` selects the successor engine: ``None`` (default)
    uses the key-level fast path when the switching policy is plain
    wormhole, ``False`` forces the generic decode-based path (used by the
    cross-validation tests), ``True`` demands the fast path and raises if
    the switching policy does not support it.
    """

    def __init__(self, instance: NoCInstance, travels: Sequence[Travel],
                 capacity: int = 1,
                 use_fast_stepper: Optional[bool] = None) -> None:
        if not isinstance(instance.switching, SingleTravelStepper):
            raise TypeError(
                "configuration-space exploration needs a switching policy "
                "that supports single-travel steps")
        self.instance = instance
        self.capacity = capacity
        config = instance.initial_configuration(travels, capacity=capacity)
        config = instance.routing.route_configuration(config)
        self._routed_travels: Dict[int, Travel] = {
            travel.travel_id: travel for travel in config.travels}
        self.initial_configuration = config
        self._route_of: Dict[int, Tuple] = {
            travel_id: tuple(travel.route or ())
            for travel_id, travel in self._routed_travels.items()}
        fast_capable = type(instance.switching) is WormholeSwitching
        if use_fast_stepper is None:
            use_fast_stepper = fast_capable
        if use_fast_stepper and not fast_capable:
            raise TypeError(
                f"the fast key-level stepper models plain wormhole "
                f"switching; {instance.switching.name()} needs the generic "
                f"path")
        self._fast_stepper: Optional[_WormholeKeyStepper] = None
        if use_fast_stepper:
            capacities: Dict = {}
            for route in self._route_of.values():
                for port in route:
                    if port not in capacities:
                        port_capacity = capacity
                        if (instance.capacities is not None
                                and port in instance.capacities):
                            port_capacity = instance.capacities[port]
                        capacities[port] = port_capacity
            self._fast_stepper = _WormholeKeyStepper(self._route_of,
                                                     capacities)

    # -- encoding -----------------------------------------------------------------
    def encode(self, config: Configuration) -> StateKey:
        entries: List[Tuple[int, Tuple[int, ...]]] = []
        for travel_id in sorted(self._routed_travels):
            record = config.progress.get(travel_id)
            travel = self._routed_travels[travel_id]
            if record is None:
                # Travel already collected into A in some ancestor state.
                positions = tuple([len(travel.route or ())] * travel.num_flits)
            else:
                positions = tuple(record.positions)
            entries.append((travel_id, positions))
        return tuple(entries)

    def decode(self, state: StateKey) -> Configuration:
        network = NetworkState.empty(self.instance.topology,
                                     capacity=self.capacity,
                                     capacities=self.instance.capacities)
        pending: List[Travel] = []
        arrived: List[Travel] = []
        progress: Dict[int, TravelProgress] = {}
        for travel_id, positions in state:
            travel = self._routed_travels[travel_id]
            record = TravelProgress(travel=travel, positions=list(positions))
            if record.is_arrived:
                arrived.append(travel)
                continue
            pending.append(travel)
            progress[travel_id] = record
            flits = travel.flits()
            for index, position in enumerate(positions):
                if NOT_INJECTED < position < record.ejected_position:
                    network.accept_flit(record.route[position], flits[index])
        return Configuration(travels=pending, state=network, arrived=arrived,
                             progress=progress)

    # -- transition relation ----------------------------------------------------------
    def successors(self, state: StateKey) -> List[StateKey]:
        """Successor states: one chosen travel advances by one worm shift."""
        if self._fast_stepper is not None:
            return self._fast_stepper.successors(state)
        return self.generic_successors(state)

    def generic_successors(self, state: StateKey) -> List[StateKey]:
        """The decode/advance/encode successor path.

        Works for every :class:`SingleTravelStepper` switching policy; the
        wormhole fast path is cross-validated against it.
        """
        config = self.decode(state)
        switching = self.instance.switching
        assert isinstance(switching, SingleTravelStepper)
        result: List[StateKey] = []
        for travel in config.travels:
            successor = switching.advance_travel(config, travel.travel_id)
            if successor is not None:
                result.append(self.encode(successor))
        return result

    def is_final(self, state: StateKey) -> bool:
        route_of = self._route_of
        return all(all(pos == len(route_of[tid]) for pos in positions)
                   for tid, positions in state)

    def transition_system(self) -> TransitionSystem[StateKey]:
        return TransitionSystem(
            initial_states=[self.encode(self.initial_configuration)],
            successors=self.successors)


@dataclass
class DeadlockSearchResult:
    """Result of searching a configuration space for reachable deadlocks."""

    explored: int
    complete: bool
    deadlock_found: bool
    witness_state: Optional[StateKey] = None
    witness_configuration: Optional[Configuration] = None
    path_length: int = 0

    def __str__(self) -> str:
        verdict = "deadlock reachable" if self.deadlock_found \
            else "no reachable deadlock"
        completeness = "exhaustive" if self.complete else "bounded"
        return f"{verdict} ({completeness}, {self.explored} states explored)"


def explore_configuration_space(instance: NoCInstance,
                                travels: Sequence[Travel],
                                capacity: int = 1,
                                max_states: int = 200_000,
                                ) -> DeadlockSearchResult:
    """Search every interleaving of a workload for a reachable deadlock."""
    space = ConfigurationSpace(instance, travels, capacity=capacity)
    system = space.transition_system()
    result: ReachabilityResult[StateKey] = system.find_terminal_state(
        space.is_final, max_states=max_states)
    witness_config = None
    if result.witness is not None:
        witness_config = space.decode(result.witness)
    return DeadlockSearchResult(
        explored=result.explored,
        complete=result.complete,
        deadlock_found=result.witness is not None,
        witness_state=result.witness,
        witness_configuration=witness_config,
        path_length=len(result.path))


def count_reachable_states(instance: NoCInstance, travels: Sequence[Travel],
                           capacity: int = 1,
                           max_states: int = 200_000) -> Tuple[int, bool]:
    """Size of the reachable configuration space (and completeness flag)."""
    space = ConfigurationSpace(instance, travels, capacity=capacity)
    states, complete = space.transition_system().reachable_states(
        max_states=max_states)
    return len(states), complete
