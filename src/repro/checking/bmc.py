"""Exhaustive exploration of NoC configuration spaces.

This module turns a :class:`~repro.core.instance.NoCInstance` plus a concrete
workload into an explicit-state transition system whose transitions are
"one chosen message advances by one hop" (all interleavings), and searches it
for reachable deadlock states.  It is the empirical, model-checking
counterpart of Theorem 1:

* for the HERMES/XY instantiation the dependency graph is acyclic and the
  search finds **no** reachable deadlock (for any interleaving);
* for the deliberately cyclic baselines (unrestricted adaptive routing, a
  dateline-free ring) the search exhibits a reachable deadlock state.

State spaces grow quickly, so this is meant for small meshes and small
workloads -- exactly the fixed-instance check the paper contrasts with its
parametric ACL2 proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checking.ts import ReachabilityResult, TransitionSystem
from repro.core.configuration import (
    Configuration,
    NOT_INJECTED,
    TravelProgress,
)
from repro.core.instance import NoCInstance
from repro.core.state import NetworkState
from repro.core.travel import Travel
from repro.switching.base import SingleTravelStepper

#: A hashable encoding of a configuration: per travel (sorted by id), the
#: tuple of flit positions along its route.
StateKey = Tuple[Tuple[int, Tuple[int, ...]], ...]


class ConfigurationSpace:
    """The reachable configuration space of a workload on an instance."""

    def __init__(self, instance: NoCInstance, travels: Sequence[Travel],
                 capacity: int = 1) -> None:
        if not isinstance(instance.switching, SingleTravelStepper):
            raise TypeError(
                "configuration-space exploration needs a switching policy "
                "that supports single-travel steps")
        self.instance = instance
        self.capacity = capacity
        config = instance.initial_configuration(travels, capacity=capacity)
        config = instance.routing.route_configuration(config)
        self._routed_travels: Dict[int, Travel] = {
            travel.travel_id: travel for travel in config.travels}
        self.initial_configuration = config

    # -- encoding -----------------------------------------------------------------
    def encode(self, config: Configuration) -> StateKey:
        entries: List[Tuple[int, Tuple[int, ...]]] = []
        for travel_id in sorted(self._routed_travels):
            record = config.progress.get(travel_id)
            travel = self._routed_travels[travel_id]
            if record is None:
                # Travel already collected into A in some ancestor state.
                positions = tuple([len(travel.route or ())] * travel.num_flits)
            else:
                positions = tuple(record.positions)
            entries.append((travel_id, positions))
        return tuple(entries)

    def decode(self, state: StateKey) -> Configuration:
        network = NetworkState.empty(self.instance.topology,
                                     capacity=self.capacity,
                                     capacities=self.instance.capacities)
        pending: List[Travel] = []
        arrived: List[Travel] = []
        progress: Dict[int, TravelProgress] = {}
        for travel_id, positions in state:
            travel = self._routed_travels[travel_id]
            record = TravelProgress(travel=travel, positions=list(positions))
            if record.is_arrived:
                arrived.append(travel)
                continue
            pending.append(travel)
            progress[travel_id] = record
            flits = travel.flits()
            for index, position in enumerate(positions):
                if NOT_INJECTED < position < record.ejected_position:
                    network.accept_flit(record.route[position], flits[index])
        return Configuration(travels=pending, state=network, arrived=arrived,
                             progress=progress)

    # -- transition relation ----------------------------------------------------------
    def successors(self, state: StateKey) -> List[StateKey]:
        config = self.decode(state)
        switching = self.instance.switching
        assert isinstance(switching, SingleTravelStepper)
        result: List[StateKey] = []
        for travel in config.travels:
            successor = switching.advance_travel(config, travel.travel_id)
            if successor is not None:
                result.append(self.encode(successor))
        return result

    def is_final(self, state: StateKey) -> bool:
        return all(all(pos == len(self._routed_travels[tid].route or ())
                       for pos in positions)
                   for tid, positions in state)

    def transition_system(self) -> TransitionSystem[StateKey]:
        return TransitionSystem(
            initial_states=[self.encode(self.initial_configuration)],
            successors=self.successors)


@dataclass
class DeadlockSearchResult:
    """Result of searching a configuration space for reachable deadlocks."""

    explored: int
    complete: bool
    deadlock_found: bool
    witness_state: Optional[StateKey] = None
    witness_configuration: Optional[Configuration] = None
    path_length: int = 0

    def __str__(self) -> str:
        verdict = "deadlock reachable" if self.deadlock_found \
            else "no reachable deadlock"
        completeness = "exhaustive" if self.complete else "bounded"
        return f"{verdict} ({completeness}, {self.explored} states explored)"


def explore_configuration_space(instance: NoCInstance,
                                travels: Sequence[Travel],
                                capacity: int = 1,
                                max_states: int = 200_000,
                                ) -> DeadlockSearchResult:
    """Search every interleaving of a workload for a reachable deadlock."""
    space = ConfigurationSpace(instance, travels, capacity=capacity)
    system = space.transition_system()
    result: ReachabilityResult[StateKey] = system.find_terminal_state(
        space.is_final, max_states=max_states)
    witness_config = None
    if result.witness is not None:
        witness_config = space.decode(result.witness)
    return DeadlockSearchResult(
        explored=result.explored,
        complete=result.complete,
        deadlock_found=result.witness is not None,
        witness_state=result.witness,
        witness_configuration=witness_config,
        path_length=len(result.path))


def count_reachable_states(instance: NoCInstance, travels: Sequence[Travel],
                           capacity: int = 1,
                           max_states: int = 200_000) -> Tuple[int, bool]:
    """Size of the reachable configuration space (and completeness flag)."""
    space = ConfigurationSpace(instance, travels, capacity=capacity)
    states, complete = space.transition_system().reachable_states(
        max_states=max_states)
    return len(states), complete
