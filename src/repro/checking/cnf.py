"""CNF formulas with integer literals (DIMACS convention).

A literal is a non-zero integer: ``v`` for the positive literal of variable
``v`` and ``-v`` for its negation.  :class:`CNF` also keeps an optional
mapping from variable numbers back to human-readable names so that models of
the acyclicity encodings can be decoded into port orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Literal = int
Clause = Tuple[Literal, ...]


class CNF:
    """A formula in conjunctive normal form."""

    def __init__(self) -> None:
        self.clauses: List[Clause] = []
        self._num_vars = 0
        self._names: Dict[int, str] = {}
        self._by_name: Dict[str, int] = {}

    # -- variables ---------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally giving it a name."""
        self._num_vars += 1
        var = self._num_vars
        if name is not None:
            if name in self._by_name:
                raise ValueError(f"variable name {name!r} already used")
            self._names[var] = name
            self._by_name[name] = var
        return var

    def var(self, name: str) -> int:
        """The variable with the given name, allocating it if necessary."""
        if name in self._by_name:
            return self._by_name[name]
        return self.new_var(name)

    def name_of(self, var: int) -> Optional[str]:
        return self._names.get(abs(var))

    def named_variables(self) -> Dict[str, int]:
        return dict(self._by_name)

    # -- clauses --------------------------------------------------------------------
    def add_clause(self, literals: Iterable[Literal]) -> None:
        clause = tuple(literals)
        if not clause:
            # An empty clause makes the formula trivially unsatisfiable; we
            # keep it so the solver reports UNSAT rather than silently
            # dropping it.
            self.clauses.append(clause)
            return
        num_vars = self._num_vars
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            var = literal if literal > 0 else -literal
            if var > num_vars:
                num_vars = var
        self._num_vars = num_vars
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[Literal]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_unit(self, literal: Literal) -> None:
        self.add_clause((literal,))

    def iter_clauses(self, start: int = 0) -> Iterator[Clause]:
        """The canonical clause-iteration path (clauses ``start`` onward).

        Every consumer that walks the clause set -- evaluation, variable
        enumeration, DIMACS export, solver clause streaming -- goes
        through this iterator.  (The *write* side has a second, raw path:
        the encoder hot loops in ``tseitin.py``/``encodings.py`` append
        validated tuples to ``self.clauses`` directly, bypassing
        :meth:`add_clause` -- safe because every literal they emit is
        already allocated.)
        """
        clauses = self.clauses
        return iter(clauses[start:]) if start else iter(clauses)

    # -- evaluation --------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate under a total assignment (variable -> bool)."""
        for clause in self.iter_clauses():
            if not any(self.literal_value(literal, assignment)
                       for literal in clause):
                return False
        return True

    @staticmethod
    def literal_value(literal: Literal, assignment: Mapping[int, bool]) -> bool:
        """Truth of one literal under ``assignment``."""
        value = assignment[abs(literal)]
        return value if literal > 0 else not value

    # Backwards-compatible private alias (pre-arena callers).
    _literal_value = literal_value

    def variables(self) -> Set[int]:
        return {abs(literal) for clause in self.iter_clauses()
                for literal in clause}

    def has_empty_clause(self) -> bool:
        """Does the formula contain the (trivially false) empty clause?"""
        return any(len(clause) == 0 for clause in self.iter_clauses())

    def copy(self) -> "CNF":
        clone = CNF()
        clone.clauses = list(self.clauses)
        clone._num_vars = self._num_vars
        clone._names = dict(self._names)
        clone._by_name = dict(self._by_name)
        return clone

    def __str__(self) -> str:
        return (f"CNF({self.num_vars} variables, "
                f"{self.num_clauses} clauses)")


# ---------------------------------------------------------------------------
# Common clause patterns
# ---------------------------------------------------------------------------

def at_most_one(literals: Sequence[Literal]) -> List[Clause]:
    """Pairwise at-most-one encoding."""
    clauses: List[Clause] = []
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            clauses.append((-literals[i], -literals[j]))
    return clauses


def at_least_one(literals: Sequence[Literal]) -> List[Clause]:
    return [tuple(literals)]


def exactly_one(literals: Sequence[Literal]) -> List[Clause]:
    return at_least_one(literals) + at_most_one(literals)


def implies_clause(antecedents: Sequence[Literal],
                   consequent: Literal) -> Clause:
    """``a1 & ... & an -> c`` as a single clause."""
    return tuple(-a for a in antecedents) + (consequent,)
