"""Incremental verification sessions on top of the CDCL solver.

The modules of :mod:`repro.checking` historically built one CNF per query
and threw solver and formula away afterwards.  This module provides the
*encode once, query many times* layer used by the deadlock machinery:

* :class:`IncrementalSession` couples a :class:`~repro.checking.cnf.CNF`,
  a :class:`~repro.checking.tseitin.TseitinEncoder` and one live
  :class:`~repro.checking.sat.IncrementalSatSolver`.  Expressions can be
  asserted permanently or guarded by named *selector* variables; queries
  are solved under assumptions over those selectors, and UNSAT answers come
  with a core mapped back to selector names.

* :class:`AcyclicityOracle` instantiates the session for the paper's
  central decision problem: given a fixed vertex set and a fixed universe
  of candidate dependency edges, decide *for any subset of the edges*
  whether the subgraph is acyclic.  The topological-numbering constraint of
  each edge is encoded once, guarded by a per-edge selector variable; each
  query then costs one ``solve`` call under assumptions instead of a fresh
  CNF construction.  This is what obligation (C-3)'s quantifier
  ``∀ P' ⊆ P . ¬ cycle_dep(P')`` looks like operationally, and what makes
  escape-edge analysis (``which single edge removals break all cycles?``)
  and routing portfolios (``same topology, many routing functions``)
  cheap.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.checking.bool_expr import BoolExpr, FALSE
from repro.checking.cnf import CNF, Literal
from repro.checking.graphs import DirectedGraph
from repro.checking.sat import IncrementalSatSolver, SatResult
from repro.checking.tseitin import TseitinEncoder

V = TypeVar("V", bound=Hashable)


class IncrementalSession:
    """A CNF, its Tseitin encoder and one live solver, kept in sync.

    Usage::

        session = IncrementalSession()
        session.assert_expr(some_invariant)            # permanent
        fast = session.guard("fast-mode", mode_expr)   # selectable
        session.solve(["fast-mode"])                   # query with guard on
        session.solve([-fast])                         # ... and with it off
    """

    def __init__(self, seed: int = 2010, trace=None,
                 solver_options: Optional[Dict[str, object]] = None) -> None:
        self.cnf = CNF()
        self.encoder = TseitinEncoder(self.cnf)
        #: Optional :class:`repro.core.trace.TraceWriter`, shared with the
        #: solver so session-level spans and solver events interleave in
        #: one stream.
        self.trace = trace
        #: ``solver_options`` overrides individual heuristic knobs
        #: (``restart_policy``/``chrono``/``vivify``/``inprocess``); unset
        #: knobs resolve via ``REPRO_SOLVER_OPTS`` and the defaults.
        self.solver = IncrementalSatSolver(seed=seed, trace=trace,
                                           **(solver_options or {}))
        self._loaded_clauses = 0
        self._selectors: Dict[str, Literal] = {}

    # -- encoding -----------------------------------------------------------------
    def _sync(self) -> None:
        self.solver.ensure_vars(self.cnf.num_vars)
        loaded = self._loaded_clauses
        self._loaded_clauses = self.cnf.num_clauses
        self.solver.add_clauses(self.cnf.iter_clauses(start=loaded))

    def encode(self, expression: BoolExpr) -> Literal:
        """Tseitin-encode an expression, returning its literal."""
        literal = self.encoder.encode(expression)
        self._sync()
        return literal

    def assert_expr(self, expression: BoolExpr) -> None:
        """Permanently assert an expression."""
        self.encoder.assert_expr(expression)
        self._sync()

    def add_clause(self, literals: Iterable[Literal]) -> None:
        self.cnf.add_clause(literals)
        self._sync()

    def selector(self, name: str, sync: bool = True) -> Literal:
        """The (positive literal of the) named selector variable.

        Selector variables are *frozen* in the solver: the inprocessing
        pass never eliminates them, so assumption queries and UNSAT cores
        over selectors survive simplification.  ``sync=False`` defers the
        solver sync to the caller (bulk encoding paths).
        """
        if name not in self._selectors:
            literal = self.cnf.var(f"sel::{name}")
            self._selectors[name] = literal
            self.solver.freeze_var(literal)
        if sync:
            self._sync()
        return self._selectors[name]

    def guard(self, name: str, expression: BoolExpr) -> Literal:
        """Assert ``selector(name) -> expression`` and return the selector.

        The expression only constrains queries whose assumptions include the
        (positive) selector literal; with the selector unset or negated the
        expression is inert.
        """
        selector = self.selector(name)
        literal = self.encoder.encode(expression)
        self.cnf.add_clause((-selector, literal))
        self._sync()
        return selector

    # -- querying -----------------------------------------------------------------
    def _to_literal(self, assumption) -> Literal:
        if isinstance(assumption, str):
            return self.selector(assumption)
        return int(assumption)

    def solve(self, assumptions: Iterable = ()) -> SatResult:
        """Solve under assumptions given as literals or selector names."""
        self._sync()
        return self.solver.solve([self._to_literal(a) for a in assumptions])

    def set_interrupt(self, callback) -> None:
        """Install (or clear with ``None``) a cooperative solve budget.

        Forwarded to
        :meth:`~repro.checking.sat.IncrementalSatSolver.set_interrupt`:
        once ``callback`` returns a truthy reason, queries raise
        :class:`~repro.checking.sat.SolverTimeout` while leaving the
        session's formula, learned clauses and selector map intact.
        """
        self.solver.set_interrupt(callback)

    def last_core_names(self) -> Optional[List[str]]:
        """The selector names in the last UNSAT core (non-selector literals
        are reported as their CNF names or literal values)."""
        core = self.solver.last_core()
        if core is None:
            return None
        names: List[str] = []
        for literal in core:
            name = self.cnf.name_of(literal)
            if name is not None and name.startswith("sel::"):
                names.append(name[len("sel::"):])
            else:
                names.append(name if name is not None else str(literal))
        return names


class AcyclicityOracle:
    """Incremental acyclicity queries over subsets of a fixed edge universe.

    Built once from a directed graph (or an explicit vertex/edge universe),
    the oracle answers ``is this subset of the edges acyclic?`` with one
    incremental solve per query.  The encoding is the topological-numbering
    one of :mod:`repro.checking.encodings`: every vertex gets a binary
    counter, every edge ``u -> v`` a selector implying
    ``number(v) < number(u)``; a subset is acyclic iff the selectors of its
    edges are simultaneously satisfiable.
    """

    def __init__(self, graph: DirectedGraph[V], seed: int = 2010,
                 trace=None,
                 solver_options: Optional[Dict[str, object]] = None) -> None:
        self._session = IncrementalSession(seed=seed, trace=trace,
                                           solver_options=solver_options)
        self._vertices = sorted(graph.vertices, key=repr)
        self._vertex_index = {vertex: index
                              for index, vertex in enumerate(self._vertices)}
        self._width = max(1, math.ceil(
            math.log2(max(len(self._vertices), 2))))
        self._edge_selector: Dict[Tuple[V, V], Literal] = {}
        self._edges: List[Tuple[V, V]] = []
        self._selector_edge: Dict[Literal, Tuple[V, V]] = {}
        # Per-vertex counter-bit variables, resolved lazily on the first
        # incident edge and reused for every later one (the name->variable
        # probes are a measurable share of bulk construction).
        self._bit_literals: Dict[int, List[Literal]] = {}
        # Edges encoded since the last emitted ``edge_batch`` event; the
        # batch is flushed lazily before the next traced query so bulk
        # universe growth costs one event, not one event per edge.
        self._pending_edges = 0
        self.add_edges(graph.edges())
        self.stats_queries = 0

    # -- construction --------------------------------------------------------------
    def add_edge(self, source: V, target: V) -> None:
        """Add an edge to the universe (idempotent)."""
        if self._encode_edge(source, target):
            self._session._sync()

    def add_edges(self, edges: Iterable[Tuple[V, V]]) -> None:
        """Bulk :meth:`add_edge`: encode every new edge, sync once.

        Construction-heavy workloads (a fresh oracle over hundreds of
        edges) spend measurable time in the per-edge CNF->solver sync;
        deferring it to one batch sync keeps the clause stream identical
        while paying the bookkeeping once.
        """
        added = False
        for source, target in edges:
            added = self._encode_edge(source, target) or added
        if added:
            self._session._sync()

    def _encode_edge(self, source: V, target: V) -> bool:
        """Encode one edge into the CNF (no solver sync); True if new."""
        # Imported here: this module is re-exported through repro.checking,
        # so a module-level import would be circular through __init__.
        from repro.checking.encodings import (
            bit_name, encode_numbering_constraint,
            encode_numbering_constraint_bits)

        edge = (source, target)
        if edge in self._edge_selector:
            return False
        if source not in self._vertex_index or target not in self._vertex_index:
            raise ValueError(
                f"edge {source!r} -> {target!r} leaves the oracle's vertex set")
        name = f"edge {len(self._edges)}"
        selector = self._session.selector(name, sync=False)
        if source == target:
            # A self-loop is a cycle on its own: selecting it is unsatisfiable.
            self._session.cnf.add_clause((-selector,))
        else:
            # Direct clause generation (no expression tree): emits the
            # same stream the Tseitin walk would, straight into the CNF;
            # the batch sync loads it into the solver arena in order.
            # A vertex's first incident edge takes the interleaved path
            # (bit variables created alongside the ladder helpers) so the
            # variable numbering -- and with it the solver's deterministic
            # search -- is byte-identical to the uncached encoding; later
            # edges reuse the cached bit lists.
            cnf = self._session.cnf
            bits = self._bit_literals
            width = self._width
            target_index = self._vertex_index[target]
            source_index = self._vertex_index[source]
            target_bits = bits.get(target_index)
            source_bits = bits.get(source_index)
            if target_bits is None or source_bits is None:
                literal = encode_numbering_constraint(
                    self._session.encoder, target_index, source_index,
                    width)
                for index in (target_index, source_index):
                    if index not in bits:
                        bits[index] = [cnf.var(bit_name(index, bit))
                                       for bit in range(width)]
            else:
                literal = encode_numbering_constraint_bits(
                    cnf, target_bits, source_bits)
            cnf.add_clause((-selector, literal))
        self._edge_selector[edge] = selector
        self._selector_edge[selector] = edge
        self._edges.append(edge)
        self._pending_edges += 1
        return True

    def _flush_edge_batch(self) -> None:
        """Emit the pending ``edge_batch`` span (traced sessions only)."""
        trace = self._session.trace
        if trace is not None and self._pending_edges:
            trace.emit("edge_batch", edges=self._pending_edges,
                       total=len(self._edges))
        self._pending_edges = 0

    # -- inspection ----------------------------------------------------------------
    @property
    def vertices(self) -> List[V]:
        return list(self._vertices)

    @property
    def edges(self) -> List[Tuple[V, V]]:
        """The full edge universe, in insertion order."""
        return list(self._edges)

    @property
    def solver_stats(self) -> Dict[str, int]:
        return self._session.solver.stats

    def set_interrupt(self, callback) -> None:
        """Install (or clear) a cooperative budget on the oracle's solver
        (see :meth:`IncrementalSession.set_interrupt`)."""
        self._session.set_interrupt(callback)

    def has_edge(self, source: V, target: V) -> bool:
        return (source, target) in self._edge_selector

    # -- queries -------------------------------------------------------------------
    def _assumptions_for(self,
                         edges: Optional[Iterable[Tuple[V, V]]]
                         ) -> List[Literal]:
        if edges is None:
            return [self._edge_selector[edge] for edge in self._edges]
        assumptions = []
        for edge in edges:
            selector = self._edge_selector.get(tuple(edge))
            if selector is None:
                raise KeyError(f"edge {edge!r} is not in the oracle universe")
            assumptions.append(selector)
        return assumptions

    def is_acyclic(self,
                   edges: Optional[Iterable[Tuple[V, V]]] = None) -> bool:
        """Is the subgraph spanned by ``edges`` (default: all) acyclic?"""
        self.stats_queries += 1
        assumptions = self._assumptions_for(edges)
        trace = self._session.trace
        if trace is not None:
            self._flush_edge_batch()
        result = self._session.solve(assumptions)
        if trace is not None:
            trace.emit("oracle_query", query=self.stats_queries,
                       edges=len(assumptions), sat=result.satisfiable)
        return result.satisfiable

    def is_acyclic_without(self,
                           removed: Iterable[Tuple[V, V]]) -> bool:
        """Acyclicity of the full universe minus the given edges."""
        removed_set = {tuple(edge) for edge in removed}
        return self.is_acyclic(edge for edge in self._edges
                               if edge not in removed_set)

    def is_acyclic_restricted_to(self, vertices: Iterable[V]) -> bool:
        """Acyclicity of the subgraph induced by a vertex subset.

        This is obligation (C-3)'s ``∀ P' ⊆ P`` instantiated at one ``P'``
        -- by monotonicity the full-graph query subsumes it, but the
        restricted query is what the paper's statement literally asks.
        """
        subset = set(vertices)
        return self.is_acyclic(
            edge for edge in self._edges
            if edge[0] in subset and edge[1] in subset)

    def edges_where(self, predicate) -> List[Tuple[V, V]]:
        """The universe edges whose endpoints both satisfy ``predicate``.

        The vertex-predicate counterpart of an explicit vertex subset; used
        by the VC-granular deadlock queries to restrict the universe to one
        VC class (e.g. the escape class) without materialising the class's
        vertex set.
        """
        return [edge for edge in self._edges
                if predicate(edge[0]) and predicate(edge[1])]

    def is_acyclic_where(self, predicate) -> bool:
        """Acyclicity of the subgraph induced by a vertex predicate."""
        return self.is_acyclic(self.edges_where(predicate))

    def cycle_core(self,
                   edges: Optional[Iterable[Tuple[V, V]]] = None
                   ) -> Optional[List[Tuple[V, V]]]:
        """A subset of ``edges`` that already contains a cycle, or ``None``.

        When the queried subgraph is cyclic, the solver's UNSAT core over
        the edge selectors is exactly such a subset (typically close to one
        concrete cycle).
        """
        if self.is_acyclic(edges):
            return None
        core = self._session.solver.last_core()
        if core is None:
            return None
        return [self._selector_edge[literal] for literal in core
                if literal in self._selector_edge]

    def numbering(self,
                  edges: Optional[Iterable[Tuple[V, V]]] = None
                  ) -> Dict[V, int]:
        """A topological numbering witnessing acyclicity (raises if cyclic)."""
        from repro.checking.encodings import bit_name

        self.stats_queries += 1
        assumptions = self._assumptions_for(edges)
        trace = self._session.trace
        if trace is not None:
            self._flush_edge_batch()
        result = self._session.solve(assumptions)
        if trace is not None:
            trace.emit("oracle_query", query=self.stats_queries,
                       edges=len(assumptions), sat=result.satisfiable)
        if not result.satisfiable:
            raise ValueError(
                "graph has a cycle; no topological numbering exists")
        named = result.named_model(self._session.cnf)
        numbering: Dict[V, int] = {}
        for vertex, index in self._vertex_index.items():
            value = 0
            for bit in range(self._width):
                if named.get(bit_name(index, bit), False):
                    value |= 1 << bit
            numbering[vertex] = value
        return numbering

    def critical_edges(self,
                       candidates: Optional[Iterable[Tuple[V, V]]] = None
                       ) -> List[Tuple[V, V]]:
        """Edges whose individual removal makes the full universe acyclic.

        This is the escape-channel question: across ``n`` candidate edges
        the oracle answers with ``n`` incremental solves on the same
        learned-clause database, instead of ``n`` CNF constructions.
        Returns ``[]`` when the universe is already acyclic (nothing to
        escape from) or when no single removal suffices.
        """
        if self.is_acyclic():
            return []
        pool = list(candidates) if candidates is not None else list(self._edges)
        return [edge for edge in pool
                if self.is_acyclic_without([tuple(edge)])]
