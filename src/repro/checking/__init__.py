"""Formal-checking substrate.

The paper discharges its proof obligations in the ACL2 theorem prover; the
reproduction hint suggests NuSMV/Z3 style automated checking.  Neither is
available offline, so this package implements the needed checking machinery
from scratch:

* :mod:`repro.checking.graphs` -- cycle detection (DFS), strongly connected
  components (Tarjan), topological sorting: the classical linear-time checks
  the paper mentions for fixed-size instances (Section VII) and the related
  Taktak et al. approach (Section VIII).
* :mod:`repro.checking.bool_expr`, :mod:`repro.checking.cnf`,
  :mod:`repro.checking.tseitin`, :mod:`repro.checking.dimacs`,
  :mod:`repro.checking.sat` -- a boolean-expression AST, CNF machinery and a
  DPLL/CDCL SAT solver (the stand-in for Z3).
* :mod:`repro.checking.encodings` -- SAT encodings of graph acyclicity.
* :mod:`repro.checking.ts`, :mod:`repro.checking.bmc` -- explicit-state
  transition systems and reachability analysis (the stand-in for NuSMV),
  used to validate Theorem 1 empirically by exhaustive exploration of small
  NoC state spaces.
"""

from repro.checking.graphs import (
    DirectedGraph,
    find_cycle_dfs,
    has_cycle,
    is_acyclic,
    strongly_connected_components,
    topological_sort,
    CycleSearchResult,
)
from repro.checking.bool_expr import Var, Not, And, Or, Implies, Iff, TRUE, FALSE
from repro.checking.cnf import CNF, Clause
from repro.checking.sat import (
    IncrementalSatSolver,
    SatSolver,
    SatResult,
    solve_cnf,
)
from repro.checking.encodings import (
    acyclicity_oracle,
    encode_acyclicity,
    encode_numbering_constraint,
    is_acyclic_by_sat,
)
from repro.checking.incremental import AcyclicityOracle, IncrementalSession
from repro.checking.ts import TransitionSystem, ReachabilityResult

# The configuration-space explorer depends on repro.core, which in turn uses
# the graph algorithms of this package; importing it lazily avoids a circular
# import while keeping ``repro.checking.ConfigurationSpace`` addressable.
_BMC_EXPORTS = {
    "ConfigurationSpace",
    "explore_configuration_space",
    "count_reachable_states",
    "DeadlockSearchResult",
}


def __getattr__(name):
    if name in _BMC_EXPORTS:
        from repro.checking import bmc

        return getattr(bmc, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DirectedGraph",
    "find_cycle_dfs",
    "has_cycle",
    "is_acyclic",
    "strongly_connected_components",
    "topological_sort",
    "CycleSearchResult",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "CNF",
    "Clause",
    "IncrementalSatSolver",
    "SatSolver",
    "SatResult",
    "solve_cnf",
    "AcyclicityOracle",
    "IncrementalSession",
    "acyclicity_oracle",
    "encode_acyclicity",
    "encode_numbering_constraint",
    "is_acyclic_by_sat",
    "TransitionSystem",
    "ReachabilityResult",
    "ConfigurationSpace",
    "explore_configuration_space",
    "DeadlockSearchResult",
]
