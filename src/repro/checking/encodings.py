"""SAT encodings of graph properties.

The main encoding is *acyclicity via topological numbering*: a directed graph
is acyclic iff its vertices can be numbered such that every edge goes from a
higher-numbered vertex to a lower-numbered one.  Each vertex gets a binary
counter of ``ceil(log2 |V|)`` bits and every edge contributes the constraint
``number(target) < number(source)``; the resulting CNF is satisfiable iff the
graph is acyclic.  This gives an independent, solver-based discharge of
obligation (C-3) alongside the graph-algorithmic checks of
:mod:`repro.checking.graphs`.

A second encoding (:func:`encode_cycle_existence`) expresses the *existence*
of a cycle through a chosen vertex by unrolling reachability, so that an
UNSAT answer certifies that no cycle passes through that vertex.

For repeated acyclicity queries over subsets of one edge universe (escape
analysis, routing portfolios), use
:class:`repro.checking.incremental.AcyclicityOracle`, which shares this
module's bit-vector helpers but encodes each edge behind a selector variable
once and answers every query with an incremental solve.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence, Tuple, TypeVar

from repro.checking.bool_expr import And, BoolExpr, FALSE, Iff, Not, Or, Var
from repro.checking.cnf import CNF
from repro.checking.graphs import DirectedGraph
from repro.checking.sat import SatSolver, solve_cnf
from repro.checking.tseitin import TseitinEncoder

V = TypeVar("V", bound=Hashable)


def bit_name(vertex_index: int, bit: int) -> str:
    """Name of bit ``bit`` of the numbering counter of vertex ``vertex_index``."""
    return f"n{vertex_index}_b{bit}"


def vertex_bits(vertex_index: int, width: int) -> List[Var]:
    """The numbering counter of a vertex, as a little-endian bit vector."""
    return [Var(bit_name(vertex_index, bit)) for bit in range(width)]


def less_than_bits(a_bits: Sequence[Var], b_bits: Sequence[Var]) -> BoolExpr:
    """``a < b`` over unsigned little-endian bit vectors of equal width.

    Recursive formulation, most significant bit first::

        a < b  <=>  (~a_k & b_k) | ((a_k <-> b_k) & a[0..k-1] < b[0..k-1])
    """
    assert len(a_bits) == len(b_bits)
    result: BoolExpr = FALSE
    for bit in range(len(a_bits)):
        a_bit = a_bits[bit]
        b_bit = b_bits[bit]
        result = Or(And(Not(a_bit), b_bit), And(Iff(a_bit, b_bit), result))
    return result


# Backwards-compatible private aliases.
_bit_name = bit_name
_vertex_bits = vertex_bits
_less_than = less_than_bits


def encode_numbering_constraint(encoder: TseitinEncoder,
                                target_index: int,
                                source_index: int,
                                width: int) -> int:
    """Direct CNF generation of ``number(target) < number(source)``.

    Returns a literal ``lt`` such that asserting ``lt`` (directly or
    behind a selector, as the acyclicity oracles do) forces the strict
    comparison, and such that ``lt`` is assertable whenever the
    comparison can hold.  This is the construction hot path of every
    oracle -- thousands of edges per session -- so instead of walking the
    :func:`less_than_bits` expression tree through the generic Tseitin
    encoder (4 helper variables and 13 clauses per bit, plus the
    structural-hash cache probes), the comparison is emitted as the
    standard *one-sided comparator ladder*: one fresh variable and at
    most three clauses per bit::

        lt_k -> (~a_k | b_k)            no bit above k decides wrongly
        lt_k -> (~a_k | lt_{k-1})       a_k = 1 forces b_k = 1: strictness
        lt_k -> ( b_k | lt_{k-1})       comes from a lower bit
        lt_0 -> ~a_0,  lt_0 -> b_0      base: strict at bit 0

    One-sided (implication-only) clauses suffice because every consumer
    uses the literal *positively*: the oracle asserts
    ``selector -> lt`` and never ``~lt``.  ``lt_root = true`` forces
    ``number(target) < number(source)`` in every model (induction over
    the ladder), and any assignment with the comparison true extends to
    the ladder -- so selector subsets are satisfiable exactly as with the
    two-sided encoding, while the solver carries ~4x fewer helper
    variables and clauses per edge.  Semantic equivalence against
    brute-force integer comparison is pinned by
    ``tests/test_clause_management.py``.
    """
    cnf = encoder.cnf
    append = cnf.clauses.append
    var = cnf.var
    new_var = cnf.new_var
    # Base: strict comparison at bit 0 alone.  Bit variables are resolved
    # (and on first touch *created*) interleaved with the ladder helpers --
    # the variable numbering is part of the deterministic-search contract,
    # so cached-bit callers may only take the ``_bits`` fast path once
    # both endpoints' bit variables already exist.
    a = var(bit_name(target_index, 0))
    b = var(bit_name(source_index, 0))
    result = new_var()
    append((-result, -a))
    append((-result, b))
    # Ladder up through the remaining bits, least significant first.
    for bit in range(1, width):
        a = var(bit_name(target_index, bit))
        b = var(bit_name(source_index, bit))
        lt = new_var()
        append((-lt, -a, b))
        append((-lt, -a, result))
        append((-lt, b, result))
        result = lt
    return result


def encode_numbering_constraint_bits(cnf: CNF,
                                     target_bits: Sequence[int],
                                     source_bits: Sequence[int]) -> int:
    """:func:`encode_numbering_constraint` over pre-resolved bit variables.

    The name->variable resolution (an f-string plus a dict probe per bit
    per edge) is the constant factor the construction loops pay |E| times
    over the same |V| counters; callers that encode many edges cache the
    per-vertex bit-variable lists once and emit every comparator ladder
    through this variant.

    Only call this once every passed bit variable **already exists** in
    the CNF: creating bit variables vertex-at-a-time instead of
    interleaved with the ladder helpers renumbers the formula, and the
    solver's index-based tie-breaks turn that into a different (measured:
    sometimes far worse) search.
    """
    append = cnf.clauses.append
    new_var = cnf.new_var
    # Base: strict comparison at bit 0 alone.
    a = target_bits[0]
    b = source_bits[0]
    result = new_var()
    append((-result, -a))
    append((-result, b))
    # Ladder up through the remaining bits, least significant first.
    for bit in range(1, len(target_bits)):
        a = target_bits[bit]
        b = source_bits[bit]
        lt = new_var()
        append((-lt, -a, b))
        append((-lt, -a, result))
        append((-lt, b, result))
        result = lt
    return result


def encode_acyclicity(graph: DirectedGraph[V]) -> Tuple[CNF, Dict[V, int]]:
    """Encode "``graph`` admits a topological numbering" as CNF.

    Returns the CNF and the mapping from vertex to its index (used to decode
    models back into an ordering).  The CNF is satisfiable iff the graph is
    acyclic; a model assigns every vertex a number such that every edge
    decreases the number.
    """
    vertices = sorted(graph.vertices, key=repr)
    vertex_index = {vertex: index for index, vertex in enumerate(vertices)}
    width = max(1, math.ceil(math.log2(max(len(vertices), 2))))

    encoder = TseitinEncoder()
    cnf = encoder.cnf
    # Per-vertex counter bits, cached after a vertex's first incident edge
    # creates them.  The first edge of a vertex goes through the
    # interleaved path so variable numbering (and therefore the solver's
    # search) is independent of the caching.
    bit_vars: Dict[int, List[int]] = {}
    # Asserting the conjunction of the edge constraints is the same as
    # asserting each constraint literal as a unit -- no And gadget needed.
    empty = True
    for source, target in graph.edges():
        empty = False
        if source == target:
            # A self-loop is a cycle; emit an unsatisfiable constraint.
            cnf.add_unit(-encoder.true_literal())
            continue
        target_index = vertex_index[target]
        source_index = vertex_index[source]
        target_bits = bit_vars.get(target_index)
        source_bits = bit_vars.get(source_index)
        if target_bits is None or source_bits is None:
            cnf.add_unit(encode_numbering_constraint(
                encoder, target_index, source_index, width))
            for index in (target_index, source_index):
                if index not in bit_vars:
                    bit_vars[index] = [cnf.var(bit_name(index, bit))
                                       for bit in range(width)]
        else:
            cnf.add_unit(encode_numbering_constraint_bits(
                cnf, target_bits, source_bits))
    if empty:
        cnf.add_unit(encoder.true_literal())
    return cnf, vertex_index


def is_acyclic_by_sat(graph: DirectedGraph[V]) -> bool:
    """Decide acyclicity by SAT (satisfiable = acyclic)."""
    cnf, _ = encode_acyclicity(graph)
    return solve_cnf(cnf).satisfiable


def acyclicity_oracle(graph: DirectedGraph[V], seed: int = 2010):
    """An incremental acyclicity oracle over ``graph``'s edge universe.

    Convenience re-export of
    :class:`repro.checking.incremental.AcyclicityOracle`: encode once, then
    query any edge subset (escape analysis, per-routing subgraphs) with one
    incremental solve each.
    """
    from repro.checking.incremental import AcyclicityOracle

    return AcyclicityOracle(graph, seed=seed)


def decode_topological_numbering(graph: DirectedGraph[V]) -> Dict[V, int]:
    """Return a numbering witnessing acyclicity (raises if cyclic).

    The numbering is extracted from a SAT model of the acyclicity encoding;
    every edge of the graph strictly decreases it.
    """
    cnf, vertex_index = encode_acyclicity(graph)
    result = solve_cnf(cnf)
    if not result.satisfiable:
        raise ValueError("graph has a cycle; no topological numbering exists")
    named = result.named_model(cnf)
    width = max(1, math.ceil(math.log2(max(len(vertex_index), 2))))
    numbering: Dict[V, int] = {}
    for vertex, index in vertex_index.items():
        value = 0
        for bit in range(width):
            if named.get(_bit_name(index, bit), False):
                value |= 1 << bit
        numbering[vertex] = value
    return numbering


def encode_cycle_existence(graph: DirectedGraph[V], through: V,
                           max_length: int) -> Tuple[CNF, Dict[str, Tuple[V, int]]]:
    """Encode "there is a cycle of length <= ``max_length`` through ``through``".

    The encoding unrolls a path ``through = v_0 -> v_1 -> ... -> v_k = through``
    with ``1 <= k <= max_length`` using one selector variable per (vertex,
    step).  Satisfiable iff such a cycle exists.
    """
    vertices = sorted(graph.vertices, key=repr)
    cnf = CNF()
    selector: Dict[Tuple[int, V], int] = {}
    meaning: Dict[str, Tuple[V, int]] = {}
    for step in range(max_length + 1):
        for vertex in vertices:
            name = f"at_{step}_{vertices.index(vertex)}"
            var = cnf.var(name)
            selector[(step, vertex)] = var
            meaning[name] = (vertex, step)

    # Step 0 is the chosen vertex.
    cnf.add_unit(selector[(0, through)])
    for vertex in vertices:
        if vertex != through:
            cnf.add_unit(-selector[(0, vertex)])

    # At most one vertex per step.
    from repro.checking.cnf import at_most_one

    for step in range(max_length + 1):
        cnf.add_clauses(at_most_one([selector[(step, vertex)]
                                     for vertex in vertices]))

    # Transitions follow edges (or the walk has already closed and stutters
    # on ``through``).
    for step in range(max_length):
        for vertex in vertices:
            successors = graph.successors(vertex)
            allowed = [selector[(step + 1, succ)] for succ in successors]
            if vertex == through:
                allowed.append(selector[(step + 1, through)])
            cnf.add_clause([-selector[(step, vertex)]] + allowed
                           if allowed else [-selector[(step, vertex)]])

    # The walk must return to ``through`` at some step >= 1 having left it.
    left = [selector[(1, vertex)] for vertex in vertices if vertex != through]
    cnf.add_clause(left if left else [])
    cnf.add_unit(selector[(max_length, through)])
    return cnf, meaning


def has_cycle_through_by_sat(graph: DirectedGraph[V], through: V,
                             max_length: int = None) -> bool:
    """Is there a cycle through ``through``?  (bounded unrolling + SAT)."""
    if max_length is None:
        max_length = graph.vertex_count
    cnf, _ = encode_cycle_existence(graph, through, max_length)
    return solve_cnf(cnf).satisfiable
