"""Tseitin transformation from boolean expressions to CNF.

The transformation introduces one fresh variable per distinct sub-expression
and adds the defining clauses, producing an equisatisfiable CNF whose size is
linear in the size of the expression.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.checking.bool_expr import (
    And,
    BoolExpr,
    Const,
    Iff,
    Implies,
    Not,
    Or,
    Var,
)
from repro.checking.cnf import CNF, Literal


class TseitinEncoder:
    """Encodes boolean expressions into a shared :class:`CNF` instance."""

    def __init__(self, cnf: CNF = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self._cache: Dict[BoolExpr, Literal] = {}
        self._true_literal: Literal = 0

    # -- public API -------------------------------------------------------------
    def assert_expr(self, expression: BoolExpr) -> None:
        """Add clauses forcing ``expression`` to be true."""
        literal = self.encode(expression)
        self.cnf.add_unit(literal)

    def encode(self, expression: BoolExpr) -> Literal:
        """Return a literal equivalent to ``expression`` (adding clauses)."""
        literal = self._cache.get(expression)
        if literal is not None:
            return literal
        literal = self._encode_uncached(expression)
        self._cache[expression] = literal
        return literal

    # -- encoding of each node type ------------------------------------------------
    def _fresh(self, hint: str) -> Literal:
        return self.cnf.new_var()

    def _encode_uncached(self, expression: BoolExpr) -> Literal:
        # Dispatch on the exact node type (one dict lookup instead of an
        # isinstance chain -- this recursion is the encoding hot path);
        # subclasses of the node types fall back to the isinstance walk.
        handler = _NODE_HANDLERS.get(type(expression))
        if handler is not None:
            return handler(self, expression)
        if isinstance(expression, Const):
            return self._encode_const(expression)
        if isinstance(expression, Var):
            return self.cnf.var(expression.name)
        if isinstance(expression, Not):
            return -self.encode(expression.operand)
        if isinstance(expression, And):
            return self._encode_and(
                [self.encode(op) for op in expression.operands])
        if isinstance(expression, Or):
            return self._encode_or(
                [self.encode(op) for op in expression.operands])
        if isinstance(expression, Implies):
            return self._encode_or(
                [-self.encode(expression.antecedent),
                 self.encode(expression.consequent)])
        if isinstance(expression, Iff):
            left = self.encode(expression.left)
            right = self.encode(expression.right)
            return self._encode_iff(left, right)
        raise TypeError(f"unknown expression type: {type(expression)!r}")

    def true_literal(self) -> Literal:
        """The (lazily allocated) literal asserted true in this encoding.

        Shared by every ``Const`` encountered -- and by the direct clause
        generators of :mod:`repro.checking.encodings`, which bypass the
        expression tree but must agree with it on the true literal.
        """
        if self._true_literal == 0:
            self._true_literal = self.cnf.new_var()
            self.cnf.add_unit(self._true_literal)
        return self._true_literal

    def _encode_const(self, expression: Const) -> Literal:
        true_literal = self.true_literal()
        return true_literal if expression.value else -true_literal

    # The defining clauses below are appended to the CNF's clause list
    # directly: every literal is either the fresh output variable or came
    # out of ``encode`` (so it is non-zero and within the allocated
    # variable range), which makes ``CNF.add_clause``'s per-literal
    # validation pure overhead on this hot path.  The emitted clause
    # stream is identical.

    def _encode_and(self, literals) -> Literal:
        if len(literals) == 1:
            return literals[0]
        output = self._fresh("and")
        append = self.cnf.clauses.append
        # output -> each literal
        for literal in literals:
            append((-output, literal))
        # all literals -> output
        append(tuple(-lit for lit in literals) + (output,))
        return output

    def _encode_or(self, literals) -> Literal:
        if len(literals) == 1:
            return literals[0]
        output = self._fresh("or")
        append = self.cnf.clauses.append
        # each literal -> output
        for literal in literals:
            append((-literal, output))
        # output -> some literal
        append((-output,) + tuple(literals))
        return output

    def _encode_iff(self, left: Literal, right: Literal) -> Literal:
        output = self._fresh("iff")
        append = self.cnf.clauses.append
        append((-output, -left, right))
        append((-output, left, -right))
        append((output, left, right))
        append((output, -left, -right))
        return output


_NODE_HANDLERS = {
    Const: TseitinEncoder._encode_const,
    Var: lambda self, expression: self.cnf.var(expression.name),
    Not: lambda self, expression: -self.encode(expression.operand),
    And: lambda self, expression: self._encode_and(
        [self.encode(op) for op in expression.operands]),
    Or: lambda self, expression: self._encode_or(
        [self.encode(op) for op in expression.operands]),
    Implies: lambda self, expression: self._encode_or(
        [-self.encode(expression.antecedent),
         self.encode(expression.consequent)]),
    Iff: lambda self, expression: self._encode_iff(
        self.encode(expression.left), self.encode(expression.right)),
}


def to_cnf(expression: BoolExpr) -> CNF:
    """Convert an expression to an equisatisfiable CNF (Tseitin)."""
    encoder = TseitinEncoder()
    encoder.assert_expr(expression)
    return encoder.cnf
