"""Directed-graph algorithms used to check dependency-graph acyclicity.

The paper notes (Section VII) that for a fixed-size network "a simple search
for a cycle suffices.  This search can be performed in linear time".  This
module provides that search in three independent flavours -- iterative DFS
with an explicit stack, Tarjan's strongly-connected-components algorithm and
Kahn's topological sort -- plus a cross-check against :mod:`networkx`.
Having several independent implementations of the same decision procedure is
the library's substitute for the redundancy a theorem prover gives for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

V = TypeVar("V", bound=Hashable)


class DirectedGraph(Generic[V]):
    """A simple adjacency directed graph over hashable vertices.

    Successor collections are insertion-ordered dicts rather than sets:
    iteration order (``edges()``, degrees, exports) then follows the
    deterministic construction order instead of the process's randomized
    hash order.  This is what makes solver statistics -- and therefore the
    portfolio determinism contract -- reproducible across *processes*, not
    just within one (worker pools included, whatever the start method).
    """

    def __init__(self) -> None:
        self._successors: Dict[V, Dict[V, None]] = {}
        self._frozen = False

    # -- construction ------------------------------------------------------------
    def add_vertex(self, vertex: V) -> None:
        if self._frozen:
            raise ValueError("graph is frozen (shared through a cache); "
                             "copy it before mutating")
        self._successors.setdefault(vertex, {})

    def add_edge(self, source: V, target: V) -> None:
        if self._frozen:
            raise ValueError("graph is frozen (shared through a cache); "
                             "copy it before mutating")
        self.add_vertex(source)
        self.add_vertex(target)
        self._successors[source][target] = None

    def freeze(self) -> "DirectedGraph[V]":
        """Make the graph immutable and return it.

        Frozen graphs can be shared safely -- e.g. by the construction
        caches of :mod:`repro.core.cache` -- because any later
        ``add_vertex``/``add_edge`` raises instead of silently corrupting
        every holder of the reference.  Derived graphs (:meth:`subgraph`,
        :meth:`reverse`) are fresh, mutable objects.
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[V, V]],
                   vertices: Optional[Iterable[V]] = None) -> "DirectedGraph[V]":
        graph: DirectedGraph[V] = cls()
        if vertices is not None:
            for vertex in vertices:
                graph.add_vertex(vertex)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    # -- queries --------------------------------------------------------------------
    @property
    def vertices(self) -> List[V]:
        return list(self._successors)

    @property
    def vertex_count(self) -> int:
        return len(self._successors)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._successors.values())

    def successors(self, vertex: V) -> Set[V]:
        return set(self._successors.get(vertex, ()))

    def successors_ordered(self, vertex: V) -> List[V]:
        """Successors in deterministic (insertion) order."""
        return list(self._successors.get(vertex, ()))

    def has_edge(self, source: V, target: V) -> bool:
        return target in self._successors.get(source, ())

    def edges(self) -> List[Tuple[V, V]]:
        return [(source, target)
                for source, targets in self._successors.items()
                for target in targets]

    def out_degree(self, vertex: V) -> int:
        return len(self._successors.get(vertex, ()))

    def in_degrees(self) -> Dict[V, int]:
        degrees: Dict[V, int] = {vertex: 0 for vertex in self._successors}
        for targets in self._successors.values():
            for target in targets:
                degrees[target] += 1
        return degrees

    def subgraph(self, vertices: Iterable[V]) -> "DirectedGraph[V]":
        keep = set(vertices)
        sub: DirectedGraph[V] = DirectedGraph()
        for vertex in keep:
            if vertex in self._successors:
                sub.add_vertex(vertex)
        for source, targets in self._successors.items():
            if source not in keep:
                continue
            for target in targets:
                if target in keep:
                    sub.add_edge(source, target)
        return sub

    def reverse(self) -> "DirectedGraph[V]":
        rev: DirectedGraph[V] = DirectedGraph()
        for vertex in self._successors:
            rev.add_vertex(vertex)
        for source, targets in self._successors.items():
            for target in targets:
                rev.add_edge(target, source)
        return rev

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (used for cross-checking)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._successors)
        graph.add_edges_from(self.edges())
        return graph


@dataclass
class CycleSearchResult(Generic[V]):
    """Outcome of a cycle search."""

    acyclic: bool
    cycle: Optional[List[V]] = None
    #: Number of vertices visited (an effort indicator for the benchmarks).
    visited: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.acyclic


# ---------------------------------------------------------------------------
# DFS cycle search
# ---------------------------------------------------------------------------

def find_cycle_dfs(graph: DirectedGraph[V]) -> CycleSearchResult[V]:
    """Find a cycle by iterative depth-first search (white/grey/black).

    Returns the cycle as a vertex list (without repeating the first vertex)
    if one exists.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[V, int] = {vertex: WHITE for vertex in graph.vertices}
    parent: Dict[V, Optional[V]] = {}
    visited = 0

    for root in graph.vertices:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[V, Iterable[V]]] = [(root, iter(sorted(
            graph.successors(root), key=repr)))]
        colour[root] = GREY
        parent[root] = None
        visited += 1
        while stack:
            vertex, successors = stack[-1]
            advanced = False
            for successor in successors:
                if colour[successor] == WHITE:
                    colour[successor] = GREY
                    parent[successor] = vertex
                    visited += 1
                    stack.append((successor, iter(sorted(
                        graph.successors(successor), key=repr))))
                    advanced = True
                    break
                if colour[successor] == GREY:
                    cycle = _reconstruct_cycle(parent, vertex, successor)
                    return CycleSearchResult(acyclic=False, cycle=cycle,
                                             visited=visited)
            if not advanced:
                colour[vertex] = BLACK
                stack.pop()
    return CycleSearchResult(acyclic=True, cycle=None, visited=visited)


def _reconstruct_cycle(parent: Mapping[V, Optional[V]], vertex: V,
                       ancestor: V) -> List[V]:
    """Walk the parent chain from ``vertex`` back to ``ancestor``."""
    cycle = [ancestor]
    current: Optional[V] = vertex
    while current is not None and current != ancestor:
        cycle.append(current)
        current = parent.get(current)
    cycle.reverse()
    return cycle


def has_cycle(graph: DirectedGraph[V]) -> bool:
    return not find_cycle_dfs(graph).acyclic


def is_acyclic(graph: DirectedGraph[V]) -> bool:
    return find_cycle_dfs(graph).acyclic


# ---------------------------------------------------------------------------
# Tarjan strongly connected components
# ---------------------------------------------------------------------------

def strongly_connected_components(graph: DirectedGraph[V]) -> List[List[V]]:
    """Tarjan's algorithm, implemented iteratively.

    A graph is acyclic iff every SCC is a singleton without a self-loop --
    the check used by the Taktak et al. deadlock-detection tool discussed in
    the paper's related work.
    """
    index_counter = 0
    index: Dict[V, int] = {}
    lowlink: Dict[V, int] = {}
    on_stack: Dict[V, bool] = {}
    stack: List[V] = []
    components: List[List[V]] = []

    for root in graph.vertices:
        if root in index:
            continue
        work: List[Tuple[V, List[V], int]] = [
            (root, sorted(graph.successors(root), key=repr), 0)]
        while work:
            vertex, successors, pointer = work.pop()
            if pointer == 0:
                index[vertex] = index_counter
                lowlink[vertex] = index_counter
                index_counter += 1
                stack.append(vertex)
                on_stack[vertex] = True
            recurse = False
            while pointer < len(successors):
                successor = successors[pointer]
                pointer += 1
                if successor not in index:
                    work.append((vertex, successors, pointer))
                    work.append((successor,
                                 sorted(graph.successors(successor), key=repr),
                                 0))
                    recurse = True
                    break
                if on_stack.get(successor, False):
                    lowlink[vertex] = min(lowlink[vertex], index[successor])
            if recurse:
                continue
            if lowlink[vertex] == index[vertex]:
                component: List[V] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent_vertex = work[-1][0]
                lowlink[parent_vertex] = min(lowlink[parent_vertex],
                                             lowlink[vertex])
    return components


def is_acyclic_by_scc(graph: DirectedGraph[V]) -> bool:
    """Acyclicity via SCC decomposition."""
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            return False
        vertex = component[0]
        if graph.has_edge(vertex, vertex):
            return False
    return True


# ---------------------------------------------------------------------------
# Kahn topological sort
# ---------------------------------------------------------------------------

def topological_sort(graph: DirectedGraph[V]) -> Optional[List[V]]:
    """Kahn's algorithm.  Returns ``None`` when the graph has a cycle."""
    in_degree = graph.in_degrees()
    ready = [vertex for vertex, degree in in_degree.items() if degree == 0]
    order: List[V] = []
    while ready:
        vertex = ready.pop()
        order.append(vertex)
        for successor in graph.successors(vertex):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != graph.vertex_count:
        return None
    return order


def is_acyclic_by_toposort(graph: DirectedGraph[V]) -> bool:
    return topological_sort(graph) is not None


def is_acyclic_by_networkx(graph: DirectedGraph[V]) -> bool:
    """Cross-check using networkx (an external, independent implementation)."""
    import networkx as nx

    return nx.is_directed_acyclic_graph(graph.to_networkx())


def longest_path_length(graph: DirectedGraph[V]) -> int:
    """Length (in edges) of the longest path of an *acyclic* graph.

    Used by the flow analysis: the longest dependency chain of the XY
    dependency graph grows linearly with the mesh diameter.
    Raises ``ValueError`` if the graph has a cycle.
    """
    order = topological_sort(graph)
    if order is None:
        raise ValueError("longest_path_length requires an acyclic graph")
    distance: Dict[V, int] = {vertex: 0 for vertex in graph.vertices}
    for vertex in order:
        for successor in graph.successors(vertex):
            distance[successor] = max(distance[successor],
                                      distance[vertex] + 1)
    return max(distance.values()) if distance else 0


def check_rank_certificate(graph: DirectedGraph[V],
                           rank: Mapping[V, Tuple[int, ...]],
                           sinks: Optional[Set[V]] = None) -> List[Tuple[V, V]]:
    """Check a rank certificate for acyclicity.

    A *rank certificate* assigns every vertex a tuple such that every edge
    strictly decreases the rank (edges into declared ``sinks`` are exempt
    because sinks have no outgoing edges and therefore cannot lie on a
    cycle... but note a sink *with* outgoing edges would invalidate the
    exemption, so sinks are also checked to have out-degree 0).  Returns the
    list of violating edges (empty = certificate valid).
    """
    sinks = sinks or set()
    violations: List[Tuple[V, V]] = []
    for sink in sinks:
        if graph.out_degree(sink) > 0:
            violations.append((sink, sink))
    for source, target in graph.edges():
        if target in sinks:
            continue
        if not (rank[target] < rank[source]):
            violations.append((source, target))
    return violations
