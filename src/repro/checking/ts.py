"""Explicit-state transition systems and reachability analysis.

This is the library's stand-in for a model checker (NuSMV-style): a
transition system is given by its initial states and a successor function;
the analyses are breadth-first reachability, invariant checking (find a
reachable state violating a predicate) and terminal-state search (find a
reachable state with no successors -- the shape of a deadlock).

States must be hashable; :mod:`repro.checking.bmc` builds the hashable
encoding of NoC configurations on top of this module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

S = TypeVar("S", bound=Hashable)


@dataclass
class ReachabilityResult(Generic[S]):
    """Result of a reachability/invariant analysis."""

    #: Number of distinct states visited.
    explored: int
    #: Whether the exploration was cut off by the state or depth bound.
    complete: bool
    #: A state satisfying the searched-for predicate, if one was found.
    witness: Optional[S] = None
    #: Path of states from an initial state to the witness (inclusive).
    path: List[S] = field(default_factory=list)
    #: Maximum depth reached.
    depth: int = 0

    @property
    def found(self) -> bool:
        return self.witness is not None


class TransitionSystem(Generic[S]):
    """An explicit-state transition system."""

    def __init__(self, initial_states: Iterable[S],
                 successors: Callable[[S], Iterable[S]]) -> None:
        self._initial = list(initial_states)
        self._successors = successors

    @property
    def initial_states(self) -> List[S]:
        return list(self._initial)

    def successors(self, state: S) -> List[S]:
        return list(self._successors(state))

    # -- analyses -------------------------------------------------------------------
    def search(self, target: Callable[[S], bool],
               max_states: int = 1_000_000,
               max_depth: Optional[int] = None) -> ReachabilityResult[S]:
        """Breadth-first search for a reachable state satisfying ``target``."""
        visited: Set[S] = set()
        parent: Dict[S, Optional[S]] = {}
        queue: deque = deque()
        depth_of: Dict[S, int] = {}
        max_seen_depth = 0

        for state in self._initial:
            if state in visited:
                continue
            visited.add(state)
            parent[state] = None
            depth_of[state] = 0
            queue.append(state)

        complete = True
        while queue:
            state = queue.popleft()
            max_seen_depth = max(max_seen_depth, depth_of[state])
            if target(state):
                return ReachabilityResult(
                    explored=len(visited), complete=True, witness=state,
                    path=self._reconstruct_path(parent, state),
                    depth=depth_of[state])
            if max_depth is not None and depth_of[state] >= max_depth:
                complete = False
                continue
            for successor in self._successors(state):
                if successor in visited:
                    continue
                if len(visited) >= max_states:
                    complete = False
                    break
                visited.add(successor)
                parent[successor] = state
                depth_of[successor] = depth_of[state] + 1
                queue.append(successor)
        return ReachabilityResult(explored=len(visited), complete=complete,
                                  witness=None, depth=max_seen_depth)

    def reachable_states(self, max_states: int = 1_000_000) -> Tuple[Set[S], bool]:
        """All reachable states (up to ``max_states``) and a completeness flag."""
        visited: Set[S] = set()
        queue: deque = deque()
        for state in self._initial:
            if state not in visited:
                visited.add(state)
                queue.append(state)
        complete = True
        while queue:
            state = queue.popleft()
            for successor in self._successors(state):
                if successor in visited:
                    continue
                if len(visited) >= max_states:
                    complete = False
                    break
                visited.add(successor)
                queue.append(successor)
        return visited, complete

    def check_invariant(self, invariant: Callable[[S], bool],
                        max_states: int = 1_000_000) -> ReachabilityResult[S]:
        """Search for a reachable state *violating* ``invariant``."""
        return self.search(lambda state: not invariant(state),
                           max_states=max_states)

    def find_terminal_state(self, is_final: Callable[[S], bool],
                            max_states: int = 1_000_000) -> ReachabilityResult[S]:
        """Search for a reachable state with no successors that is not final.

        ``is_final`` marks states that are *allowed* to have no successors
        (e.g. "all messages have arrived"); any other successor-less state is
        a deadlock.

        Unlike the generic :meth:`search` with a has-no-successors target
        (which would expand every popped state twice: once for the target
        test, once for the frontier), this runs its own BFS and computes each
        state's successors exactly once -- the successor relation is the
        expensive part for NoC configuration spaces.
        """
        visited: Set[S] = set()
        parent: Dict[S, Optional[S]] = {}
        depth_of: Dict[S, int] = {}
        queue: deque = deque()
        max_seen_depth = 0

        for state in self._initial:
            if state in visited:
                continue
            visited.add(state)
            parent[state] = None
            depth_of[state] = 0
            queue.append(state)

        complete = True
        while queue:
            state = queue.popleft()
            depth = depth_of[state]
            if depth > max_seen_depth:
                max_seen_depth = depth
            successors = list(self._successors(state))
            if not successors and not is_final(state):
                return ReachabilityResult(
                    explored=len(visited), complete=True, witness=state,
                    path=self._reconstruct_path(parent, state), depth=depth)
            for successor in successors:
                if successor in visited:
                    continue
                if len(visited) >= max_states:
                    complete = False
                    break
                visited.add(successor)
                parent[successor] = state
                depth_of[successor] = depth + 1
                queue.append(successor)
        return ReachabilityResult(explored=len(visited), complete=complete,
                                  witness=None, depth=max_seen_depth)

    @staticmethod
    def _reconstruct_path(parent: Dict[S, Optional[S]], state: S) -> List[S]:
        path = [state]
        current = parent.get(state)
        while current is not None:
            path.append(current)
            current = parent.get(current)
        path.reverse()
        return path
