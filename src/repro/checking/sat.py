"""An incremental CDCL SAT solver over a flat clause arena.

The solver implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation over **literal-indexed watcher
  lists** whose entries carry a *blocker* literal (a clause known to be
  satisfied while its blocker is true is skipped without touching clause
  memory),
* a **flat clause arena**: every clause lives in one shared int list,
  referenced by a dense clause id with offset/length (and learned-flag,
  activity, LBD) kept in parallel arrays -- no per-clause Python objects,
* first-UIP conflict analysis with clause learning, learned-clause
  minimisation and non-chronological backjumping,
* **LBD ("glue") tracking**: every learned clause records the number of
  distinct decision levels among its literals at learning time, and
  learned-clause deletion retains clauses LBD-first (glue and binary
  clauses are immortal), compacting the arena afterwards,
* VSIDS-style activity-based decision heuristic backed by a binary heap,
  with phase saving,
* Luby-sequence restarts,
* **incremental use**: clauses can be added between ``solve`` calls, a
  single solver instance can be re-queried many times, and each query can
  be made under *assumptions* (temporary unit hypotheses).  When a query is
  unsatisfiable because of its assumptions, the solver reports a *core*: a
  subset of the assumptions that is already inconsistent with the formula.

Assumptions are handled MiniSat-style: each assumption literal is placed as
a decision on its own decision level before any search decision is taken, so
everything the solver learns remains valid for later queries with different
assumptions.  This is what makes the repeated deadlock queries of
:mod:`repro.core.deadlock` and the portfolio driver of
:mod:`repro.core.portfolio` cheap: the CNF is encoded once and every
topology/routing scenario is a fresh set of assumptions on the same solver.

The solver is deterministic: two runs on the same formula with the same
``seed`` take the same decisions and return the same model and statistics.
Correctness is cross-checked against a brute-force evaluator in the test
suite (see ``tests/test_sat_incremental.py`` and
``tests/test_clause_management.py``).
"""

from __future__ import annotations

import itertools
import os
import random
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.checking.cnf import CNF, Literal

#: Truth values of the literal-indexed assignment array.
_UNASSIGNED, _TRUE, _FALSE = 0, 1, 2

#: Default values of the search-heuristic knobs.  Each knob is individually
#: switchable per constructor argument; a ``None`` argument falls back to
#: the ``REPRO_SOLVER_OPTS`` environment variable (comma-separated
#: ``key=value`` pairs, e.g. ``restart_policy=ema,chrono=100,vivify=1``)
#: and then to this table.  The defaults encode the *measured* winners of
#: the solver microbench suite (see ``docs/solver.md``); losing knobs ship
#: off with their measurement recorded.
SOLVER_DEFAULTS: Dict[str, object] = {
    #: ``"luby"`` (Luby-sequence restarts, 32-conflict unit) or ``"ema"``
    #: (Glucose-style dual exponential moving averages over learned-clause
    #: LBD, with restart blocking on a trail-size EMA).
    "restart_policy": "luby",
    #: Chronological-backtracking threshold: on a conflict whose backjump
    #: would discard more than this many decision levels, backtrack one
    #: level instead.  ``0`` disables.
    "chrono": 5,
    #: Vivify (shorten via propagation) the best learned clauses at
    #: reduce-db time.
    "vivify": True,
    #: Run the inprocessing pass (subsumption, self-subsuming resolution,
    #: bounded variable elimination) between solves.
    "inprocess": False,
}

#: Dual-EMA restart parameters (Glucose-style): smoothing windows of the
#: fast/slow LBD averages, the trail-size average used for blocking, the
#: fast-over-slow trigger ratio, the block ratio and the minimum number of
#: conflicts between restarts (reported as the restart event's ``limit``).
EMA_FAST_WINDOW = 32
EMA_SLOW_WINDOW = 4096
EMA_TRAIL_WINDOW = 4096
EMA_THRESHOLD = 1.15
EMA_BLOCK_THRESHOLD = 1.4
EMA_MIN_INTERVAL = 32

#: How many learned clauses one vivification pass inspects (the best
#: retention candidates: lowest LBD, then highest activity).
VIVIFY_MAX_CLAUSES = 64

#: Automatic inprocessing triggers when at least this many problem clauses
#: arrived since the last pass.
INPROCESS_MIN_CLAUSES = 64

#: Bounded-variable-elimination limits: a variable is only eliminated when
#: its occurrence count stays under the cap and resolution does not grow
#: the formula (at most ``|pos| + |neg|`` non-tautological resolvents).
BVE_MAX_OCCURRENCES = 16


def _solver_env_options() -> Dict[str, object]:
    """Parse ``REPRO_SOLVER_OPTS`` into a knob dict (empty when unset)."""
    raw = os.environ.get("REPRO_SOLVER_OPTS", "")
    options: Dict[str, object] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key not in SOLVER_DEFAULTS:
            raise ValueError(
                f"unknown solver option {key!r} in REPRO_SOLVER_OPTS")
        default = SOLVER_DEFAULTS[key]
        if isinstance(default, bool):
            options[key] = value.lower() in ("1", "true", "on", "yes")
        elif isinstance(default, int):
            options[key] = int(value)
        else:
            options[key] = value
    return options

#: LBD values at or above this bucket share one histogram key
#: (``lbd_10`` counts every learned clause with LBD >= 10).
LBD_HISTOGRAM_CAP = 10

#: How many conflicts pass between cooperative interrupt checks.  The
#: callback runs off the hot path (one int test per conflict, the callback
#: itself only every Nth conflict), so a solve honours a budget within a
#: few hundred conflicts of it expiring.
INTERRUPT_CHECK_INTERVAL = 64


class SolverTimeout(Exception):
    """A cooperative solver interrupt fired mid-search.

    Raised out of :meth:`IncrementalSatSolver.solve` when the interrupt
    callback installed via :meth:`IncrementalSatSolver.set_interrupt`
    reports an expired budget.  The solver unwinds to decision level 0
    first, so the instance -- formula, learned clauses, statistics --
    remains fully usable for later queries; only the interrupted query is
    lost (no model, no core).
    """

    def __init__(self, reason: str = "solver budget exhausted") -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    #: Statistics of the search (decisions, propagations, conflicts, restarts).
    stats: Dict[str, int] = field(default_factory=dict)
    #: When UNSAT under assumptions: a subset of the assumptions that is
    #: already inconsistent with the formula (``None`` when the formula
    #: itself is unsatisfiable, or when the result is SAT).
    core: Optional[List[Literal]] = None

    def named_model(self, cnf: CNF) -> Dict[str, bool]:
        """Decode the model using the CNF's variable names."""
        if self.model is None:
            raise ValueError("no model: formula is unsatisfiable")
        model = self.model
        return {name: model[var]
                for name, var in cnf.named_variables().items()
                if var in model}


class _VarHeap:
    """Max-"heap" over variables ordered by VSIDS activity.

    Ties are broken by variable index (smaller first) so that the decision
    order -- and therefore the whole search -- is deterministic.

    Implemented over :mod:`heapq` (C-backed) with *lazy* entries: every
    push/activity-update appends a ``(-activity, var, version)`` tuple and
    bumps the variable's version; entries whose version is no longer
    current are skipped on pop.  This replaces the pure-Python sift loops
    of a classic indexed binary heap -- which profiling showed dominating
    incremental workloads (tens of thousands of pops per solve) -- while
    popping variables in exactly the same (activity desc, index asc)
    order.
    """

    __slots__ = ("_activity", "_entries", "_version", "_in_heap", "_size")

    def __init__(self, activity: List[float]) -> None:
        self._activity = activity
        # (-activity-at-push, var, version) tuples; stale versions skipped.
        self._entries: List[Tuple[float, int, int]] = []
        self._version: List[int] = [0]
        self._in_heap: List[bool] = [False]
        self._size = 0

    def __contains__(self, var: int) -> bool:
        return var < len(self._in_heap) and self._in_heap[var]

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, var: int) -> None:
        while len(self._in_heap) <= var:
            self._in_heap.append(False)
            self._version.append(0)

    def push(self, var: int) -> None:
        in_heap = self._in_heap
        if var >= len(in_heap):
            self._grow_to(var)
            in_heap = self._in_heap
        if in_heap[var]:
            return
        in_heap[var] = True
        self._size += 1
        version = self._version[var] + 1
        self._version[var] = version
        heappush(self._entries, (-self._activity[var], var, version))

    def pop(self) -> int:
        entries = self._entries
        version = self._version
        in_heap = self._in_heap
        while True:
            _, var, entry_version = heappop(entries)
            if in_heap[var] and version[var] == entry_version:
                in_heap[var] = False
                self._size -= 1
                return var

    def push_fresh(self, start: int, stop: int) -> None:
        """Bulk-push the freshly allocated variables ``start..stop-1``.

        Requires the variables to be brand new (``start`` equal to the
        current array length); used by ``ensure_vars``.
        """
        assert start == len(self._in_heap)
        in_heap = self._in_heap
        version = self._version
        activity = self._activity
        entries = self._entries
        for var in range(start, stop):
            in_heap.append(True)
            version.append(1)
            heappush(entries, (-activity[var], var, 1))
        self._size += stop - start

    def update(self, var: int) -> None:
        """Re-establish the heap order after ``var``'s activity increased."""
        if var < len(self._in_heap) and self._in_heap[var]:
            version = self._version[var] + 1
            self._version[var] = version
            heappush(self._entries, (-self._activity[var], var, version))

    def rebuild(self) -> None:
        """Rebuild every live entry from current activities.

        Needed after a global activity rescale: live entries carry the
        pre-rescale keys, which would compare inconsistently against
        entries pushed after the rescale.  Rescales are rare (activity
        overflow past 1e100), so the full rebuild is cheap amortised.
        """
        self._entries = [(-self._activity[var], var, self._version[var])
                         for var in range(1, len(self._in_heap))
                         if self._in_heap[var]]
        heapify(self._entries)


class IncrementalSatSolver:
    """A CDCL solver that supports incremental clause addition and
    solve-under-assumptions.

    The intended use is *encode once, query many times*::

        solver = IncrementalSatSolver()
        selector = solver.new_var()
        solver.add_clause([-selector, a, b])   # selector -> (a | b)
        solver.solve(assumptions=[selector])   # with the clause enabled
        solver.solve(assumptions=[-selector])  # with the clause disabled

    All learned clauses are kept between queries (subject to LBD-driven
    deletion), so repeated related queries get monotonically faster.

    Internally the solver is a *flat-array engine*: clause literals live in
    one shared int arena (``_arena``), clauses are dense ids indexing the
    parallel ``_coff``/``_csize``/``_clearned``/``_cact``/``_clbd`` arrays,
    truth values live in a literal-indexed bytearray and watcher lists are
    flat ``[clause_id, blocker, ...]`` int lists -- no per-clause or
    per-watch Python objects on the propagation path.
    """

    def __init__(self, seed: int = 2010,
                 random_polarity_freq: float = 0.0,
                 trace=None,
                 restart_policy: Optional[str] = None,
                 chrono: Optional[int] = None,
                 vivify: Optional[bool] = None,
                 inprocess: Optional[bool] = None) -> None:
        # Heuristic knobs: explicit argument > REPRO_SOLVER_OPTS > default.
        env = _solver_env_options() if "REPRO_SOLVER_OPTS" in os.environ \
            else {}

        def _knob(name, value):
            if value is not None:
                return value
            return env.get(name, SOLVER_DEFAULTS[name])

        self._restart_policy = str(_knob("restart_policy", restart_policy))
        if self._restart_policy not in ("luby", "ema"):
            raise ValueError(
                f"unknown restart policy {self._restart_policy!r}")
        self._chrono = int(_knob("chrono", chrono))
        self._vivify = bool(_knob("vivify", vivify))
        self._inprocess_enabled = bool(_knob("inprocess", inprocess))
        # Dual-EMA restart state (persistent across solves: the averages
        # describe the learned-clause quality of the whole database).
        self._ema_fast = 0.0
        self._ema_slow = 0.0
        self._ema_trail = 0.0
        # Inprocessing state: frozen variables (assumption selectors --
        # never eliminated), eliminated variables, and the stack of
        # clause sets removed by variable elimination, kept for model
        # reconstruction and for reviving a variable that reappears.
        self._frozen = bytearray(1)
        self._eliminated = bytearray(1)
        self._elim_stack: List[Tuple[int, List[List[Literal]]]] = []
        self._inprocess_mark = 0
        self._num_vars = 0
        # Literal-indexed state: index ``_center + literal`` is valid for
        # every |literal| <= _cap, so truth lookups need no branch on the
        # literal's sign.  Grown geometrically by _grow_literal_arrays.
        self._cap = 0
        self._center = 0
        self._lit_val = bytearray(1)
        #: Watcher lists, one per literal slot; each list is a flat
        #: ``[clause_id, blocker, clause_id, blocker, ...]`` int sequence.
        self._watches: List[List[int]] = [[]]
        # The clause arena: all clause literals in one int list.  A clause
        # is a dense id ``cid`` with literals at
        # ``_arena[_coff[cid] : _coff[cid] + _csize[cid]]``; the watched
        # pair sits at offsets 0 and 1.  Learned flags, activities and LBD
        # scores live in parallel arrays indexed by ``cid``.
        self._arena: List[int] = []
        self._coff: List[int] = []
        self._csize: List[int] = []
        self._clearned = bytearray()
        # Learned-clause side tables, keyed by cid.  Only learned clauses
        # carry an activity and an LBD, so these stay off the problem-
        # clause loading path (sparse "parallel arrays" of the arena).
        self._cact: Dict[int, float] = {}
        self._clbd: Dict[int, int] = {}
        self._learnt_cids: List[int] = []
        self._num_problem = 0
        # Per-variable state, 1-indexed (slot 0 unused).  Reasons are
        # clause ids (-1: decision / level-0 fact).
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]
        self._activity: List[float] = [0.0]
        self._polarity = bytearray(1)
        self._heap = _VarHeap(self._activity)
        self._trail: List[Literal] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._ok = True
        self._activity_inc = 1.0
        self._activity_decay = 0.95
        self._clause_inc = 1.0
        self._clause_decay = 0.999
        self._max_learnts = 0.0
        self._rng = random.Random(seed)
        self._random_polarity_freq = random_polarity_freq
        #: Assumptions of the previous solve, for prefix-trail reuse.
        self._last_assumptions: List[Literal] = []
        self._stats = {"decisions": 0, "propagations": 0, "conflicts": 0,
                       "restarts": 0, "learned": 0, "deleted": 0,
                       "solves": 0, "minimised": 0,
                       "arena_gcs": 0, "arena_reclaimed": 0,
                       "blocked_restarts": 0, "chrono_backtracks": 0,
                       "vivified_clauses": 0, "vivified_literals": 0,
                       "subsumed": 0, "strengthened": 0,
                       "eliminated_vars": 0, "inprocessings": 0}
        #: LBD histogram of learned clauses: bucket -> count, buckets
        #: capped at LBD_HISTOGRAM_CAP (the last bucket is ">= cap").
        self._lbd_hist: Dict[int, int] = {}
        self._last_core: Optional[List[Literal]] = None
        # Reusable conflict-analysis scratch buffer (one byte per variable,
        # slot 0 unused); cleared selectively after every analysis so no
        # per-conflict allocation is needed.
        self._seen = bytearray(1)
        #: Optional :class:`repro.core.trace.TraceWriter`.  ``None`` keeps
        #: every trace hook to a single pointer test off the propagation
        #: loop -- behaviour and verdicts are identical to an untraced
        #: solver (pinned by the trace test suite).
        self._trace = trace
        # Conflict count at which the next ``solver_phase`` sample is due,
        # and the stat snapshot the sample's deltas are computed against.
        self._trace_phase_mark = 0
        self._trace_phase_snapshot: Dict[str, int] = {}
        # Cooperative interrupt: a callback polled every
        # INTERRUPT_CHECK_INTERVAL conflicts (and periodically between
        # decisions); a truthy return aborts the solve via SolverTimeout.
        self._interrupt = None
        self._interrupt_mark = 0

    # -- cooperative interruption ---------------------------------------------------
    def set_interrupt(self, callback) -> None:
        """Install (or clear) the cooperative solve budget.

        ``callback`` takes no arguments and returns a falsy value while
        the solve may continue, or a reason string once the budget is
        exhausted -- e.g. ``lambda: time.monotonic() > deadline and
        "group deadline"``.  It is polled every
        :data:`INTERRUPT_CHECK_INTERVAL` conflicts and every 1024
        decisions; when it fires, the running (and any later) ``solve``
        raises :class:`SolverTimeout` after restoring decision level 0, so
        incremental state and the UNSAT-core machinery stay intact for
        whoever clears the interrupt and queries again.  Pass ``None`` to
        remove the budget.
        """
        self._interrupt = callback
        self._interrupt_mark = 0

    def _check_interrupt(self, trace, stats_before: Dict[str, int]) -> None:
        reason = self._interrupt()
        if reason:
            # Unwind to level 0: the trail keeps only facts, so future
            # queries (after the budget is lifted) start from a clean,
            # consistent state and prefix reuse simply restarts.
            self._cancel_until(0)
            self._last_assumptions = []
            self._last_core = None
            if trace is not None:
                # Close the solve span (``sat`` null: no verdict) so the
                # stream stays balanced for validate_trace.
                self._emit_trace_solve_end(trace, stats_before, None)
            raise SolverTimeout(str(reason))

    # -- variables ----------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def stats(self) -> Dict[str, int]:
        """Search statistics, including the LBD histogram (``lbd_<n>``).

        The key set is **identical on every path** -- the LBD buckets
        ``lbd_1..lbd_{cap}`` are always present (zero-filled before any
        clause is learned), so the trivially-UNSAT early return, a
        fresh solver and a long search all report the same keys and
        stat-delta consumers never have to special-case missing ones.
        """
        merged = dict(self._stats)
        hist = self._lbd_hist
        for bucket in range(1, LBD_HISTOGRAM_CAP + 1):
            merged[f"lbd_{bucket}"] = hist.get(bucket, 0)
        return merged

    def lbd_histogram(self) -> Dict[int, int]:
        """Learned-clause LBD counts (bucket ``LBD_HISTOGRAM_CAP`` is
        ">= cap"); cumulative over the solver's lifetime."""
        return dict(self._lbd_hist)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self.ensure_vars(self._num_vars + 1)
        return self._num_vars

    def ensure_vars(self, count: int) -> None:
        """Grow the variable range to at least ``count`` variables.

        Bulk form of :meth:`new_var` (one extend per array instead of many
        appends per variable) -- encodings allocate variables in bursts
        through this path.
        """
        grow = count - self._num_vars
        if grow <= 0:
            return
        start = self._num_vars + 1
        self._num_vars = count
        self._level.extend([0] * grow)
        self._reason.extend([-1] * grow)
        self._activity.extend([0.0] * grow)
        self._polarity.extend(b"\x00" * grow)
        self._seen.extend(b"\x00" * grow)
        self._frozen.extend(b"\x00" * grow)
        self._eliminated.extend(b"\x00" * grow)
        if count > self._cap:
            self._grow_literal_arrays(count)
        self._heap.push_fresh(start, count + 1)

    def _grow_literal_arrays(self, needed: int) -> None:
        """Re-centre the literal-indexed arrays for |literal| <= needed.

        Growth is geometric, so re-centring (which copies the assignment
        bytes and re-homes the existing watch-list objects) stays rare and
        amortised-free even when variables arrive one at a time.
        """
        new_cap = max(needed, 2 * self._cap, 64)
        old_cap = self._cap
        new_center = new_cap
        new_lit_val = bytearray(2 * new_cap + 1)
        new_lit_val[new_center - old_cap:new_center + old_cap + 1] = \
            self._lit_val
        new_watches: List[List[int]] = [[] for _ in range(2 * new_cap + 1)]
        new_watches[new_center - old_cap:new_center + old_cap + 1] = \
            self._watches
        self._lit_val = new_lit_val
        self._watches = new_watches
        self._cap = new_cap
        self._center = new_center

    # -- heuristic knobs / inprocessing support -------------------------------------
    @property
    def options(self) -> Dict[str, object]:
        """The resolved heuristic-knob values of this instance."""
        return {"restart_policy": self._restart_policy,
                "chrono": self._chrono,
                "vivify": self._vivify,
                "inprocess": self._inprocess_enabled}

    def freeze_var(self, var: int) -> None:
        """Exempt ``var`` from bounded variable elimination.

        The incremental layer freezes every assumption-selector variable
        (and :meth:`solve` freezes assumption variables on use), so the
        UNSAT-core and assumption contracts survive inprocessing: a frozen
        variable keeps its original clauses and its model value is never
        reconstructed.
        """
        if var > self._num_vars:
            self.ensure_vars(var)
        self._frozen[var] = 1

    def _revive(self, var: int) -> None:
        """Undo variable eliminations from the top of the stack down to
        (and including) ``var``, re-adding the stored clauses.

        Eliminations are undone newest-first so every re-added clause
        mentions only live variables (a clause stored for an early
        elimination may mention a variable eliminated later, never the
        other way around).  The resolvents added at elimination time are
        implied by the restored clauses, so leaving them in place is sound.
        """
        eliminated = self._eliminated
        while self._elim_stack:
            pivot, clauses = self._elim_stack.pop()
            eliminated[pivot] = 0
            self._heap.push(pivot)
            self._stats["eliminated_vars"] -= 1
            self.add_clauses(clauses)
            if pivot == var or not self._ok:
                break

    # -- assignment helpers --------------------------------------------------------
    def _value(self, literal: Literal) -> Optional[bool]:
        value = self._lit_val[self._center + literal]
        if value == _UNASSIGNED:
            return None
        return value == _TRUE

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: Literal, reason: int) -> None:
        lit_val = self._lit_val
        center = self._center
        lit_val[center + literal] = _TRUE
        lit_val[center - literal] = _FALSE
        var = literal if literal > 0 else -literal
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(literal)

    def _cancel_until(self, level: int) -> None:
        """Undo all assignments above ``level`` (phase-saving the polarity)."""
        if len(self._trail_lim) <= level:
            return
        trail = self._trail
        lit_val = self._lit_val
        center = self._center
        polarity = self._polarity
        reason = self._reason
        activity = self._activity
        heap = self._heap
        in_heap = heap._in_heap
        version = heap._version
        entries = heap._entries
        pushed = 0
        limit = self._trail_lim[level]
        for literal in reversed(trail[limit:]):
            var = literal if literal > 0 else -literal
            polarity[var] = literal > 0
            lit_val[center + literal] = _UNASSIGNED
            lit_val[center - literal] = _UNASSIGNED
            reason[var] = -1
            # Inlined heap.push (hot: every backtracked variable).
            if not in_heap[var]:
                in_heap[var] = True
                entry_version = version[var] + 1
                version[var] = entry_version
                heappush(entries, (-activity[var], var, entry_version))
                pushed += 1
        heap._size += pushed
        del trail[limit:]
        del self._trail_lim[level:]
        if self._qhead > limit:
            self._qhead = limit

    # -- clause addition -----------------------------------------------------------
    def _new_clause(self, literals: List[Literal], learned: bool) -> int:
        """Append a clause to the arena and attach its watchers.

        The first two literals become the watched pair; each watcher
        carries the *other* watched literal as its initial blocker.
        """
        arena = self._arena
        self._coff.append(len(arena))
        self._csize.append(len(literals))
        arena.extend(literals)
        cid = len(self._clearned)
        self._clearned.append(1 if learned else 0)
        if learned:
            self._cact[cid] = 0.0
            self._clbd[cid] = 0
            self._learnt_cids.append(cid)
        else:
            self._num_problem += 1
        watches = self._watches
        center = self._center
        first, second = literals[0], literals[1]
        watch_list = watches[center + first]
        watch_list.append(cid)
        watch_list.append(second)
        watch_list = watches[center + second]
        watch_list.append(cid)
        watch_list.append(first)
        return cid

    def add_clause(self, literals: Iterable[Literal]) -> bool:
        """Add a clause; returns ``False`` when the formula became UNSAT.

        Can be called at any time, also between ``solve`` calls: the solver
        first backtracks to decision level 0.  Literals over unseen variables
        grow the variable range automatically.

        One-clause form of :meth:`add_clauses` (which holds the single
        copy of the simplify/dedup/attach logic); every bulk consumer
        streams through :meth:`add_clauses` directly.
        """
        return self.add_clauses((literals,))

    def add_clauses(self, clauses: Iterable[Iterable[Literal]]) -> bool:
        """Stream many clauses into the arena (see :meth:`add_clause`).

        Semantically a loop of :meth:`add_clause`, but with the per-clause
        state (assignment bytes, arena, watcher table) hoisted out of the
        loop -- whole encodings (thousands of clauses per oracle) load
        through this path, and the hoisting is worth ~25% of load time.

        An **empty** stream leaves the solver untouched: the sync layers
        call this between every pair of solves (usually with nothing new),
        and backtracking would needlessly destroy the assumption-prefix
        trail that :meth:`solve` reuses.  The backtrack to level 0
        happens only once the first real clause arrives.
        """
        if not self._ok:
            return False
        iterator = iter(clauses)
        for probe in iterator:
            first_batch = (probe,)
            break
        else:
            return True  # nothing to add: keep the reusable trail intact
        if self._trail_lim:
            self._cancel_until(0)
        clauses = itertools.chain(first_batch, iterator)
        lit_val = self._lit_val
        center = self._center
        num_vars = self._num_vars
        arena = self._arena
        coff = self._coff
        csize = self._csize
        clearned = self._clearned
        watches = self._watches
        # Eliminated-variable guard: one truthiness test per literal while
        # any elimination is in effect, nothing otherwise.
        eliminated = self._eliminated if self._elim_stack else None
        added = 0
        ok = True
        for literals in clauses:
            clause: List[Literal] = []
            satisfied = False
            tautology = False
            for literal in literals:
                if literal == 0:
                    raise ValueError("0 is not a valid literal")
                var = literal if literal > 0 else -literal
                if var > num_vars:
                    self.ensure_vars(var)
                    lit_val = self._lit_val
                    center = self._center
                    num_vars = self._num_vars
                    watches = self._watches
                elif eliminated is not None and eliminated[var]:
                    # The clause resurrects an eliminated variable: restore
                    # its clauses (and any elimination stacked above it)
                    # before attaching anything that mentions it.
                    self._revive(var)
                    if not self._ok:
                        return False
                    if not self._elim_stack:
                        eliminated = None
                value = lit_val[center + literal]
                if value:
                    if value == 1:
                        satisfied = True
                    else:
                        continue
                if literal in clause:
                    continue
                if -literal in clause:
                    tautology = True
                    break
                clause.append(literal)
            if tautology or satisfied:
                continue
            if not clause:
                self._ok = False
                ok = False
                break
            if len(clause) == 1:
                self._enqueue(clause[0], -1)
                if self._propagate() >= 0:
                    self._ok = False
                    ok = False
                    break
                continue
            coff.append(len(arena))
            csize.append(len(clause))
            arena.extend(clause)
            cid = len(clearned)
            clearned.append(0)
            added += 1
            first, second = clause[0], clause[1]
            watch_list = watches[center + first]
            watch_list.append(cid)
            watch_list.append(second)
            watch_list = watches[center + second]
            watch_list.append(cid)
            watch_list.append(first)
        self._num_problem += added
        return ok

    # -- propagation ---------------------------------------------------------------
    def _propagate(self) -> int:
        """Unit propagation from the current queue head.

        Returns the conflicting clause id, or ``-1``.

        This is the solver's hottest loop, so it trades a little clarity
        for constant factors: watcher entries are flat ``cid, blocker``
        int pairs; a true blocker skips the clause with a single bytearray
        read; clause literals are read straight from the arena (the false
        watch is normalised to slot 1 in place); watcher lists are
        compacted in place (two-pointer style); and the propagation
        counter is flushed to the stats dict once per call.
        """
        trail = self._trail
        qhead = self._qhead
        if qhead >= len(trail):
            # Nothing queued (common between assumption placements): skip
            # the localisation preamble entirely.
            return -1
        watches = self._watches
        lit_val = self._lit_val
        center = self._center
        arena = self._arena
        coff = self._coff
        csize = self._csize
        level = self._level
        reason = self._reason
        current_level = len(self._trail_lim)
        propagations = 0
        conflict = -1
        trail_len = len(trail)
        while qhead < trail_len:
            literal = trail[qhead]
            qhead += 1
            propagations += 1
            false_literal = -literal
            watch_list = watches[center + false_literal]
            end = len(watch_list)
            read = write = 0
            while read < end:
                blocker = watch_list[read + 1]
                if lit_val[center + blocker] == 1:
                    # Clause satisfied by its blocker: keep, untouched.
                    # (Self-copies are skipped: until a watcher relocates,
                    # write trails read exactly and the stores are no-ops.)
                    if write != read:
                        watch_list[write] = watch_list[read]
                        watch_list[write + 1] = blocker
                    write += 2
                    read += 2
                    continue
                cid = watch_list[read]
                read += 2
                if csize[cid] == 2:
                    # Binary fast path: the blocker of a binary watcher is
                    # always the clause's other literal (watches never
                    # move), so the clause is unit or conflicting without
                    # touching the arena.  Behaviour-identical to the
                    # general path below, just fewer loads.
                    if write != read - 2:
                        watch_list[write] = cid
                        watch_list[write + 1] = blocker
                    write += 2
                    if lit_val[center + blocker]:  # == _FALSE: conflict
                        if write == read:
                            write = read = end
                        else:
                            while read < end:
                                watch_list[write] = watch_list[read]
                                watch_list[write + 1] = watch_list[read + 1]
                                write += 2
                                read += 2
                        conflict = cid
                        break
                    lit_val[center + blocker] = 1
                    lit_val[center - blocker] = 2
                    var = blocker if blocker > 0 else -blocker
                    level[var] = current_level
                    reason[var] = cid
                    trail.append(blocker)
                    trail_len += 1
                    continue
                offset = coff[cid]
                # Normalise the false watch to slot 1.
                if arena[offset] == false_literal:
                    arena[offset] = arena[offset + 1]
                    arena[offset + 1] = false_literal
                first = arena[offset]
                first_value = lit_val[center + first]
                if first_value == 1:
                    # The other watch is true: keep, with it as blocker.
                    if write != read - 2:
                        watch_list[write] = cid
                    watch_list[write + 1] = first
                    write += 2
                    continue
                # Look for a new literal to watch.
                for position in range(offset + 2, offset + csize[cid]):
                    candidate = arena[position]
                    if lit_val[center + candidate] != 2:
                        arena[offset + 1] = candidate
                        arena[position] = false_literal
                        other_list = watches[center + candidate]
                        other_list.append(cid)
                        other_list.append(first)
                        break
                else:
                    # Clause is unit or conflicting.
                    if write != read - 2:
                        watch_list[write] = cid
                    watch_list[write + 1] = first
                    write += 2
                    if first_value:  # == _FALSE: every literal false
                        if write == read:
                            write = read = end
                        else:
                            while read < end:
                                watch_list[write] = watch_list[read]
                                watch_list[write + 1] = watch_list[read + 1]
                                write += 2
                                read += 2
                        conflict = cid
                        break
                    # Inlined _enqueue of the unit literal.
                    lit_val[center + first] = 1
                    lit_val[center - first] = 2
                    var = first if first > 0 else -first
                    level[var] = current_level
                    reason[var] = cid
                    trail.append(first)
                    trail_len += 1
            if write != end:
                del watch_list[write:]
            if conflict >= 0:
                qhead = trail_len
                break
        self._qhead = qhead
        self._stats["propagations"] += propagations
        return conflict

    # -- conflict analysis ---------------------------------------------------------
    def _analyse(self, conflict: int) -> Tuple[List[Literal], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first), the backjump
        level and the clause's LBD (distinct decision levels among its
        literals, measured before backjumping).
        """
        learned: List[Literal] = []
        seen = self._seen
        to_clear: List[int] = []
        trail = self._trail
        levels = self._level
        reasons = self._reason
        activity = self._activity
        arena = self._arena
        coff = self._coff
        csize = self._csize
        heap = self._heap
        heap_in = heap._in_heap
        heap_version = heap._version
        heap_entries = heap._entries
        current_level = len(self._trail_lim)
        counter = 0
        literal = 0
        # ``skip`` is the trail literal being resolved on; 0 matches nothing,
        # so the whole conflict clause participates in the first round.
        skip: Literal = 0
        reason_cid = conflict
        self._bump_clause(conflict)
        trail_index = len(trail) - 1

        while True:
            offset = coff[reason_cid]
            for position in range(offset, offset + csize[reason_cid]):
                reason_literal = arena[position]
                if reason_literal == skip:
                    continue
                var = reason_literal if reason_literal > 0 else -reason_literal
                if seen[var] or levels[var] == 0:
                    continue
                seen[var] = 1
                to_clear.append(var)
                # Inlined _bump_activity + heap.update (hot: every marked
                # variable; the inlined update reuses the bumped value
                # instead of re-reading the activity array).
                new_activity = activity[var] + self._activity_inc
                activity[var] = new_activity
                if new_activity > 1e100:
                    # Rescale rebuilds the heap with a fresh entry list, so
                    # the locals must be re-fetched.
                    self._rescale_activity()
                    new_activity = activity[var]
                    heap_entries = heap._entries
                if heap_in[var]:
                    entry_version = heap_version[var] + 1
                    heap_version[var] = entry_version
                    heappush(heap_entries,
                             (-new_activity, var, entry_version))
                if levels[var] == current_level:
                    counter += 1
                else:
                    learned.append(reason_literal)
            # Find the next literal on the trail to resolve on.
            while True:
                literal = trail[trail_index]
                trail_index -= 1
                if seen[literal if literal > 0 else -literal]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_cid = reasons[literal if literal > 0 else -literal]
            assert reason_cid >= 0
            self._bump_clause(reason_cid)
            skip = literal

        # Learned-clause minimisation: drop any literal whose reason clause
        # consists only of literals already in the learned clause (or set at
        # level 0) -- resolving on it cannot add information.
        minimised: List[Literal] = []
        for candidate in learned:
            reason_cid = reasons[abs(candidate)]
            if reason_cid < 0:
                minimised.append(candidate)
                continue
            offset = coff[reason_cid]
            redundant = True
            for position in range(offset, offset + csize[reason_cid]):
                other = arena[position]
                if other == -candidate:
                    continue
                if not (seen[abs(other)] or levels[abs(other)] == 0):
                    redundant = False
                    break
            if redundant:
                self._stats["minimised"] += 1
            else:
                minimised.append(candidate)
        learned = minimised
        learned.insert(0, -literal)
        for var in to_clear:
            seen[var] = 0

        if len(learned) == 1:
            backjump_level = 0
        else:
            backjump_level = max(levels[abs(lit)] for lit in learned[1:])
        # LBD while the conflict-time levels are still live (the asserting
        # literal sits on the current level, the rest at or below the
        # backjump level).
        lbd = len({levels[abs(lit)] for lit in learned[1:]}) + 1 \
            if len(learned) > 1 else 1
        return learned, backjump_level, lbd

    def _analyse_final(self, failed: Literal) -> List[Literal]:
        """Why is the assumption ``failed`` false right now?

        Walks the implication graph backwards from ``-failed`` and collects
        the assumption decisions involved.  Returns a subset of the current
        assumptions that is inconsistent with the formula (always including
        ``failed`` itself).  Only called while every decision on the trail
        is an assumption.
        """
        core = [failed]
        if not self._trail_lim:
            return core
        arena = self._arena
        coff = self._coff
        csize = self._csize
        levels = self._level
        seen = {abs(failed)}
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            literal = self._trail[index]
            var = abs(literal)
            if var not in seen:
                continue
            reason_cid = self._reason[var]
            if reason_cid < 0:
                # A decision below the first search level is an assumption.
                core.append(literal)
            else:
                offset = coff[reason_cid]
                for position in range(offset, offset + csize[reason_cid]):
                    other = arena[position]
                    if levels[abs(other)] > 0:
                        seen.add(abs(other))
            seen.discard(var)
        return core

    # -- activities ----------------------------------------------------------------
    def _rescale_activity(self) -> None:
        """Scale every activity down after an overflow past 1e100.

        The order is preserved, but the keys of every live lazy-heap entry
        become inconsistent with post-rescale pushes, so the heap is
        rebuilt in one pass (rescales are rare)."""
        for index in range(1, self._num_vars + 1):
            self._activity[index] *= 1e-100
        self._activity_inc *= 1e-100
        self._heap.rebuild()

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            self._rescale_activity()
        self._heap.update(var)

    def _decay_activity(self) -> None:
        self._activity_inc /= self._activity_decay

    def _bump_clause(self, cid: int) -> None:
        if not self._clearned[cid]:
            return
        cact = self._cact
        activity = cact[cid] + self._clause_inc
        cact[cid] = activity
        if activity > 1e20:
            for learnt in self._learnt_cids:
                cact[learnt] *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_clause(self) -> None:
        self._clause_inc /= self._clause_decay

    # -- learned-clause deletion -----------------------------------------------------
    def _reduce_db(self) -> None:
        """Delete the worst half of the learned clauses, LBD-first.

        Retention follows the glue-clause insight: clauses are ranked
        worst-first by (LBD descending, activity ascending, age); binary
        clauses, glue clauses (LBD <= 2) and clauses currently acting as
        the reason of a trail assignment are immortal.  The arena is
        compacted afterwards (see :meth:`_collect_garbage`).
        """
        reason = self._reason
        locked = set()
        for literal in self._trail:
            reason_cid = reason[literal if literal > 0 else -literal]
            if reason_cid >= 0:
                locked.add(reason_cid)
        csize = self._csize
        clbd = self._clbd
        cact = self._cact
        candidates = [cid for cid in self._learnt_cids
                      if csize[cid] > 2 and clbd[cid] > 2
                      and cid not in locked]
        # Worst first: highest LBD, then lowest activity, then oldest.
        candidates.sort(key=lambda cid: (-clbd[cid], cact[cid], cid))
        doomed = candidates[:len(self._learnt_cids) // 2]
        if not doomed:
            return
        self._stats["deleted"] += len(doomed)
        if self._trace is not None:
            self._trace.emit(
                "reduce_db", deleted=len(doomed),
                retained=len(self._learnt_cids) - len(doomed),
                lbd_cutoff=min(clbd[cid] for cid in doomed))
        self._collect_garbage(set(doomed))

    def _collect_garbage(self, doomed: set) -> None:
        """Drop ``doomed`` clauses and compact the arena.

        Every surviving clause is copied to a fresh, gap-free arena and
        renumbered; watcher lists and reason references are rewritten to
        the new ids (locked clauses are never doomed, so no reason can
        dangle).  The reclaimed arena length is recorded in the
        ``arena_reclaimed`` statistic.
        """
        old_arena = self._arena
        coff = self._coff
        csize = self._csize
        clearned = self._clearned
        cact = self._cact
        clbd = self._clbd
        count = len(coff)
        remap = [-1] * count
        new_arena: List[int] = []
        new_coff: List[int] = []
        new_csize: List[int] = []
        new_learned = bytearray()
        new_act: Dict[int, float] = {}
        new_lbd: Dict[int, int] = {}
        for cid in range(count):
            if cid in doomed:
                continue
            new_cid = len(new_coff)
            remap[cid] = new_cid
            offset = coff[cid]
            size = csize[cid]
            new_coff.append(len(new_arena))
            new_csize.append(size)
            new_arena.extend(old_arena[offset:offset + size])
            new_learned.append(clearned[cid])
            if clearned[cid]:
                new_act[new_cid] = cact[cid]
                new_lbd[new_cid] = clbd[cid]
        reclaimed = len(old_arena) - len(new_arena)
        self._arena = new_arena
        self._coff = new_coff
        self._csize = new_csize
        self._clearned = new_learned
        self._cact = new_act
        self._clbd = new_lbd
        self._learnt_cids = [remap[cid] for cid in self._learnt_cids
                             if remap[cid] >= 0]
        for watch_list in self._watches:
            if not watch_list:
                continue
            write = 0
            for read in range(0, len(watch_list), 2):
                new_cid = remap[watch_list[read]]
                if new_cid < 0:
                    continue
                watch_list[write] = new_cid
                watch_list[write + 1] = watch_list[read + 1]
                write += 2
            del watch_list[write:]
        reason = self._reason
        for var in range(1, self._num_vars + 1):
            reason_cid = reason[var]
            if reason_cid >= 0:
                reason[var] = remap[reason_cid]
        self._stats["arena_gcs"] += 1
        self._stats["arena_reclaimed"] += reclaimed
        if self._trace is not None:
            self._trace.emit("arena_gc", reclaimed=reclaimed,
                             live=len(new_arena))

    # -- vivification ----------------------------------------------------------------
    def _detach_clause(self, cid: int) -> None:
        """Remove ``cid``'s two watcher entries (clause stays in the arena)."""
        watches = self._watches
        center = self._center
        offset = self._coff[cid]
        for literal in (self._arena[offset], self._arena[offset + 1]):
            watch_list = watches[center + literal]
            for read in range(0, len(watch_list), 2):
                if watch_list[read] == cid:
                    del watch_list[read:read + 2]
                    break

    def _vivify_learnts(self, trace) -> bool:
        """Shorten the best learned clauses by propagation (vivification).

        Runs at reduce-db time, from decision level 0 (the solve loop
        re-places any cancelled assumptions afterwards, like after a
        restart).  For each candidate clause, the negations of its literals
        are asserted one by one: a conflict proves the asserted prefix is
        itself a valid (shorter) clause; a literal found true means the
        prefix plus that literal suffices; a literal found false is
        redundant and dropped.  The clause under test is detached first so
        it cannot propagate with itself.  Returns ``False`` when a level-0
        conflict shows the formula is UNSAT.
        """
        self._cancel_until(0)
        if self._propagate() >= 0:
            return False
        clbd = self._clbd
        cact = self._cact
        csize = self._csize
        coff = self._coff
        arena = self._arena
        stats = self._stats
        # Best retention candidates first: these survive reduce-db and do
        # the most propagation work, so shortening them pays.
        candidates = sorted(
            (cid for cid in self._learnt_cids if csize[cid] > 2),
            key=lambda cid: (clbd[cid], -cact[cid], cid))
        candidates = candidates[:VIVIFY_MAX_CLAUSES]
        checked = shortened_clauses = removed_literals = 0
        doomed: set = set()
        ok = True
        for cid in candidates:
            offset = coff[cid]
            literals = arena[offset:offset + csize[cid]]
            checked += 1
            self._detach_clause(cid)
            keep: List[Literal] = []
            last = len(literals) - 1
            for index, literal in enumerate(literals):
                value = self._value(literal)
                if value is True:
                    # prefix -> literal: the clause shrinks to the prefix
                    # plus this literal.
                    keep.append(literal)
                    break
                if value is False:
                    continue  # implied false by the asserted prefix: drop
                keep.append(literal)
                if index == last:
                    break  # asserting the last literal cannot shrink more
                self._trail_lim.append(len(self._trail))
                self._enqueue(-literal, -1)
                if self._propagate() >= 0:
                    break  # the asserted prefix is contradictory: keep it
            self._cancel_until(0)
            if len(keep) >= len(literals):
                # No win: reattach unchanged.
                self._attach_clause(cid)
                continue
            shortened_clauses += 1
            removed_literals += len(literals) - len(keep)
            if not keep:
                ok = False
                break
            if len(keep) == 1:
                value = self._value(keep[0])
                if value is False:
                    ok = False
                    break
                if value is None:
                    self._enqueue(keep[0], -1)
                    if self._propagate() >= 0:
                        ok = False
                        break
                doomed.add(cid)
                continue
            arena[offset:offset + len(keep)] = keep
            csize[cid] = len(keep)
            clbd[cid] = min(clbd[cid], len(keep))
            self._attach_clause(cid)
        stats["vivified_clauses"] += shortened_clauses
        stats["vivified_literals"] += removed_literals
        if trace is not None:
            trace.emit("vivify", checked=checked,
                       shortened=shortened_clauses,
                       removed=removed_literals)
        if doomed:
            self._collect_garbage(doomed)
        return ok

    def _attach_clause(self, cid: int) -> None:
        """(Re-)attach ``cid``'s watchers on its first two arena slots."""
        offset = self._coff[cid]
        first, second = self._arena[offset], self._arena[offset + 1]
        watches = self._watches
        center = self._center
        watch_list = watches[center + first]
        watch_list.append(cid)
        watch_list.append(second)
        watch_list = watches[center + second]
        watch_list.append(cid)
        watch_list.append(first)

    # -- inprocessing ----------------------------------------------------------------
    def inprocess(self) -> Dict[str, int]:
        """Simplify the clause database between solves.

        Three techniques, all run from decision level 0 over the extracted
        (level-0-simplified) clause lists, after which the arena is rebuilt
        from scratch:

        * **subsumption** -- a problem clause that contains another problem
          clause is dropped (learned clauses are also dropped when a
          problem clause subsumes them, but never act as subsumers: they
          are deletable, so nothing permanent may depend on them);
        * **self-subsuming resolution** -- when resolving clause ``D`` with
          a problem clause ``C`` on literal ``l`` yields a clause that
          subsumes ``D``, the literal ``-l`` is removed from ``D``
          (equivalence-preserving strengthening);
        * **bounded variable elimination** -- a non-frozen, unassigned
          variable whose occurrence count is under
          :data:`BVE_MAX_OCCURRENCES` is resolved away when that produces
          at most as many non-tautological resolvents as it removes
          clauses.  The removed clauses go onto the elimination stack for
          model reconstruction (:meth:`_reconstruct_model`) and for
          reviving the variable if a later clause or assumption mentions
          it (:meth:`_revive`).  Learned clauses over an eliminated
          variable are dropped.

        Frozen variables (assumption selectors, any variable ever used as
        an assumption) are never eliminated, which preserves the UNSAT-core
        and incremental-assumption contracts.  Returns the pass's deltas;
        also emitted as an ``inprocess`` trace event.
        """
        stats = self._stats
        result = {"subsumed": 0, "strengthened": 0, "eliminated": 0,
                  "clauses_before": len(self._coff),
                  "clauses_after": len(self._coff)}
        self._inprocess_mark = self._num_problem
        if not self._ok:
            return result
        self._cancel_until(0)
        self._last_assumptions = []
        if self._propagate() >= 0:
            self._ok = False
            return result
        lit_val = self._lit_val
        center = self._center
        arena = self._arena
        coff = self._coff
        csize = self._csize
        clearned = self._clearned
        # 1. Extract the live clauses, simplified against level-0 facts.
        #    Each entry: [literal list, learned flag, activity, lbd, alive].
        entries: List[list] = []
        for cid in range(len(coff)):
            literals: List[Literal] = []
            satisfied = False
            offset = coff[cid]
            for position in range(offset, offset + csize[cid]):
                literal = arena[position]
                value = lit_val[center + literal]
                if value == 1:
                    satisfied = True
                    break
                if value == 2:
                    continue
                literals.append(literal)
            if satisfied or not literals:
                continue  # level-0-satisfied (or dead weight): drop
            if clearned[cid]:
                entries.append([literals, True,
                                self._cact[cid], self._clbd[cid], True])
            else:
                entries.append([literals, False, 0.0, 0, True])
        subsumed, strengthened = self._subsume_and_strengthen(entries)
        eliminated = self._eliminate_variables(entries)
        units = self._rebuild_arena(entries)
        stats["subsumed"] += subsumed
        stats["strengthened"] += strengthened
        stats["eliminated_vars"] += eliminated
        stats["inprocessings"] += 1
        result.update(subsumed=subsumed, strengthened=strengthened,
                      eliminated=eliminated,
                      clauses_after=len(self._coff))
        if self._ok:
            for literal in units:
                value = self._lit_val[self._center + literal]
                if value == 2:
                    self._ok = False
                    break
                if value == 0:
                    self._enqueue(literal, -1)
            if self._ok and self._propagate() >= 0:
                self._ok = False
        self._inprocess_mark = self._num_problem
        if self._trace is not None:
            self._trace.emit("inprocess", subsumed=subsumed,
                             strengthened=strengthened,
                             eliminated=eliminated,
                             clauses=len(self._coff))
        return result

    def _subsume_and_strengthen(self, entries: List[list]
                                ) -> Tuple[int, int]:
        """Forward subsumption + self-subsuming resolution over ``entries``.

        Clauses are visited smallest-first; each is checked against the
        already-accepted *problem* clauses via literal-occurrence lists
        with 64-bit signatures, then accepted (problem clauses only) as a
        potential subsumer itself.  Mutates ``entries`` in place (alive
        flags, strengthened literal lists); returns (subsumed count,
        strengthened-literal count).
        """
        order = sorted(range(len(entries)),
                       key=lambda index: (len(entries[index][0]),
                                          entries[index][1], index))
        occurrences: Dict[Literal, List[int]] = {}
        signatures: Dict[int, int] = {}
        subsumed = strengthened = 0
        for index in order:
            entry = entries[index]
            literals = entry[0]
            signature = 0
            for literal in literals:
                signature |= 1 << (literal & 63)
            # Subsumption check: any accepted clause hiding inside?
            literal_sets = None
            dead = False
            for literal in literals:
                for other in occurrences.get(literal, ()):
                    other_literals = entries[other][0]
                    if len(other_literals) > len(literals):
                        continue
                    if signatures[other] & ~signature:
                        continue
                    if literal_sets is None:
                        literal_sets = set(literals)
                    if all(candidate in literal_sets
                           for candidate in other_literals):
                        dead = True
                        break
                if dead:
                    break
            if dead:
                entry[4] = False
                subsumed += 1
                continue
            # Self-subsuming resolution: can some literal be removed?
            position = 0
            while position < len(literals):
                literal = literals[position]
                removed = False
                for other in occurrences.get(-literal, ()):
                    other_literals = entries[other][0]
                    if len(other_literals) > len(literals):
                        continue
                    if signatures[other] & ~(signature
                                             | (1 << (-literal & 63))):
                        continue
                    if literal_sets is None:
                        literal_sets = set(literals)
                    if all(candidate in literal_sets or candidate == -literal
                           for candidate in other_literals):
                        removed = True
                        break
                if removed:
                    literal_sets.discard(literal)
                    del literals[position]
                    signature = 0
                    for remaining in literals:
                        signature |= 1 << (remaining & 63)
                    strengthened += 1
                else:
                    position += 1
            if entry[1]:
                continue  # learned clauses never subsume (deletable)
            for literal in literals:
                occurrences.setdefault(literal, []).append(index)
            signatures[index] = signature
        return subsumed, strengthened

    def _eliminate_variables(self, entries: List[list]) -> int:
        """Bounded variable elimination over the alive problem ``entries``.

        Appends resolvents as new problem entries, marks the resolved
        clauses dead, kills learned clauses over eliminated variables and
        pushes the removed problem clauses onto the elimination stack.
        Returns the number of eliminated variables.
        """
        frozen = self._frozen
        eliminated_flags = self._eliminated
        lit_val = self._lit_val
        center = self._center
        occ_pos: Dict[int, List[int]] = {}
        occ_neg: Dict[int, List[int]] = {}
        learned_occ: Dict[int, List[int]] = {}
        for index, entry in enumerate(entries):
            if not entry[4]:
                continue
            target = learned_occ if entry[1] else None
            for literal in entry[0]:
                var = literal if literal > 0 else -literal
                if target is not None:
                    target.setdefault(var, []).append(index)
                elif literal > 0:
                    occ_pos.setdefault(var, []).append(index)
                else:
                    occ_neg.setdefault(var, []).append(index)
        eliminated = 0
        heap = self._heap
        for var in range(1, self._num_vars + 1):
            if frozen[var] or eliminated_flags[var]:
                continue
            if lit_val[center + var] != _UNASSIGNED:
                continue
            positive = [index for index in occ_pos.get(var, ())
                        if entries[index][4]]
            negative = [index for index in occ_neg.get(var, ())
                        if entries[index][4]]
            if not positive and not negative:
                continue  # pure or unused: nothing forced, leave it
            budget = len(positive) + len(negative)
            if budget > BVE_MAX_OCCURRENCES:
                continue
            resolvents: List[List[Literal]] = []
            overflow = False
            for pos_index in positive:
                pos_literals = entries[pos_index][0]
                for neg_index in negative:
                    resolvent = [literal for literal in pos_literals
                                 if literal != var]
                    tautology = False
                    resolvent_set = set(resolvent)
                    for literal in entries[neg_index][0]:
                        if literal == -var:
                            continue
                        if -literal in resolvent_set:
                            tautology = True
                            break
                        if literal not in resolvent_set:
                            resolvent.append(literal)
                            resolvent_set.add(literal)
                    if tautology:
                        continue
                    resolvents.append(resolvent)
                    if len(resolvents) > budget:
                        overflow = True
                        break
                if overflow:
                    break
            if overflow:
                continue
            # Eliminate: drop the originals (and learned clauses over the
            # variable -- they may not constrain it once it is free), add
            # the resolvents, remember the originals for reconstruction.
            stored: List[List[Literal]] = []
            for index in positive + negative:
                entries[index][4] = False
                stored.append(list(entries[index][0]))
            for index in learned_occ.get(var, ()):
                entries[index][4] = False
            for resolvent in resolvents:
                new_index = len(entries)
                entries.append([resolvent, False, 0.0, 0, True])
                for literal in resolvent:
                    res_var = literal if literal > 0 else -literal
                    if literal > 0:
                        occ_pos.setdefault(res_var, []).append(new_index)
                    else:
                        occ_neg.setdefault(res_var, []).append(new_index)
            self._elim_stack.append((var, stored))
            eliminated_flags[var] = 1
            eliminated += 1
            # Take the variable out of the decision heap; _revive pushes
            # it back.  (Eliminated variables are unassigned and occur in
            # no clause, so nothing else re-pushes them.)
            if var in heap:
                heap._in_heap[var] = False
                heap._size -= 1
        return eliminated

    def _rebuild_arena(self, entries: List[list]) -> List[Literal]:
        """Replace the arena with the alive ``entries``; returns the units.

        Level-0 trail assignments survive; their reasons are reset to
        ``-1`` (they are facts, and their old clause ids die with the old
        arena).  Unit clauses are returned for the caller to enqueue and
        propagate once the watchers exist.
        """
        self._arena = []
        self._coff = []
        self._csize = []
        self._clearned = bytearray()
        self._cact = {}
        self._clbd = {}
        self._learnt_cids = []
        self._num_problem = 0
        self._watches = [[] for _ in range(2 * self._cap + 1)]
        reason = self._reason
        for literal in self._trail:
            reason[literal if literal > 0 else -literal] = -1
        self._qhead = len(self._trail)
        units: List[Literal] = []
        for literals, learned, activity, lbd, alive in entries:
            if not alive:
                continue
            if not literals:
                # A strengthening chain or a BVE resolvent emptied the
                # clause: the formula is UNSAT at level 0.
                self._ok = False
                continue
            if len(literals) == 1:
                units.append(literals[0])
                continue
            cid = self._new_clause(literals, learned=learned)
            if learned:
                self._cact[cid] = activity
                self._clbd[cid] = min(lbd, len(literals)) if lbd else lbd
        return units

    def _reconstruct_model(self, model: Dict[int, bool]) -> None:
        """Extend a model of the simplified formula to the original one.

        Walks the elimination stack newest-first; each eliminated variable
        is set true iff some clause with a positive occurrence is not
        satisfied by its other literals (every negative-occurrence clause
        is then satisfied too, or the corresponding resolvent would have
        been falsified).
        """
        for var, clauses in reversed(self._elim_stack):
            value = False
            for literals in clauses:
                pivot_positive = False
                satisfied = False
                for literal in literals:
                    other = literal if literal > 0 else -literal
                    if other == var:
                        pivot_positive = literal > 0
                    elif model.get(other, False) == (literal > 0):
                        satisfied = True
                        break
                if not satisfied and pivot_positive:
                    value = True
                    break
            model[var] = value

    # -- decisions -----------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        # Inlined lazy-heap pop: stale entries (superseded versions) and
        # already-assigned variables are skipped in one loop without the
        # per-entry method dispatch of heap.pop().
        heap = self._heap
        entries = heap._entries
        version = heap._version
        in_heap = heap._in_heap
        lit_val = self._lit_val
        center = self._center
        size = heap._size
        while size:
            _, var, entry_version = heappop(entries)
            if in_heap[var] and version[var] == entry_version:
                in_heap[var] = False
                size -= 1
                if lit_val[center + var] == _UNASSIGNED:
                    heap._size = size
                    return var
        heap._size = size
        return None

    def _decision_polarity(self, var: int) -> bool:
        if (self._random_polarity_freq > 0.0
                and self._rng.random() < self._random_polarity_freq):
            return self._rng.random() < 0.5
        return bool(self._polarity[var])

    # -- tracing -------------------------------------------------------------------
    @property
    def trace(self):
        """The attached :class:`~repro.core.trace.TraceWriter` (or ``None``)."""
        return self._trace

    def _emit_trace_phase(self, trace) -> None:
        """Emit a sampled ``solver_phase`` record and re-arm the sampler."""
        stats = self._stats
        snapshot = self._trace_phase_snapshot
        keys = ("decisions", "propagations", "conflicts", "learned",
                "restarts")
        trace.emit(
            "solver_phase",
            conflicts=stats["conflicts"],
            delta={key: stats[key] - snapshot.get(key, 0) for key in keys},
            trail=len(self._trail),
            lbd={str(bucket): self._lbd_hist[bucket]
                 for bucket in sorted(self._lbd_hist)})
        self._trace_phase_snapshot = {key: stats[key] for key in keys}
        self._trace_phase_mark = stats["conflicts"] + trace.phase_interval

    def _emit_trace_solve_end(self, trace, before: Dict[str, int],
                              sat: bool) -> None:
        """Emit ``solve_end`` with this solve's stat-counter deltas."""
        stats = self._stats
        trace.emit("solve_end", sat=sat,
                   delta={key: stats[key] - before[key] for key in stats})

    # -- restarts ------------------------------------------------------------------
    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
        if index < 1:
            return 1
        while True:
            k = index.bit_length()
            if index == (1 << k) - 1:
                return 1 << (k - 1)
            index = index - (1 << (k - 1)) + 1

    # -- main loop -----------------------------------------------------------------
    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Decide satisfiability under the given unit assumptions.

        The solver state survives the call: further clauses can be added and
        further queries (with different assumptions) issued afterwards.

        Consecutive queries reuse the **assumption-prefix trail**: the
        solver only backtracks to the longest common prefix of the previous
        and the current assumption list, so everything propagated under the
        shared assumptions stays in place.  The incremental deadlock
        queries -- same edge universe, one selector toggled per query --
        share almost their whole prefix, which makes this the single
        biggest saving on portfolio workloads.  (Adding a clause still
        backtracks to level 0, so prefix reuse never survives a formula
        change.)
        """
        trace = self._trace
        stats_before = dict(self._stats) if trace is not None else {}
        if self._interrupt is not None:
            # An already-expired budget fails fast, before the span opens.
            self._check_interrupt(None, stats_before)
        self._stats["solves"] += 1
        self._last_core = None
        assumption_list = list(assumptions)
        frozen = self._frozen
        revive_check = bool(self._elim_stack)
        for literal in assumption_list:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            var = literal if literal > 0 else -literal
            if var > self._num_vars:
                self.ensure_vars(var)
                frozen = self._frozen
            elif revive_check and self._eliminated[var]:
                # An assumption over an eliminated variable: restore its
                # clauses so the query (and its core) see the original
                # formula.  Freezing below prevents a repeat.
                self._revive(var)
                revive_check = bool(self._elim_stack)
            frozen[var] = 1
        if (self._inprocess_enabled and self._ok
                and self._num_problem - self._inprocess_mark
                >= INPROCESS_MIN_CLAUSES):
            self.inprocess()

        if not self._ok:
            # Trivially UNSAT: the formula already failed at level 0.  The
            # span is still emitted (and the stats keys are the full set,
            # see :attr:`stats`), so stream consumers need no special case.
            if trace is not None:
                trace.emit("solve_begin", solve=self._stats["solves"],
                           assumptions=len(assumption_list), prefix_reuse=0)
                self._emit_trace_solve_end(trace, stats_before, False)
            return SatResult(satisfiable=False, stats=self.stats)
        # Longest common prefix with the previous query's assumptions,
        # capped by the decision levels actually still on the trail.
        previous = self._last_assumptions
        prefix = 0
        limit = min(len(previous), len(assumption_list),
                    len(self._trail_lim))
        while prefix < limit and previous[prefix] == assumption_list[prefix]:
            prefix += 1
        self._last_assumptions = assumption_list
        self._cancel_until(prefix)
        if trace is not None:
            trace.emit("solve_begin", solve=self._stats["solves"],
                       assumptions=len(assumption_list), prefix_reuse=prefix)
            if self._trace_phase_mark <= self._stats["conflicts"]:
                self._trace_phase_mark = (self._stats["conflicts"]
                                          + trace.phase_interval)

        if self._max_learnts <= 0:
            self._max_learnts = max(100.0, self._num_problem / 3.0)
        restart_index = 1
        conflicts_since_restart = 0
        restart_limit = 32 * self._luby(restart_index)
        ema = self._restart_policy == "ema"
        # Chronological backtracking only applies to assumption-free
        # queries.  Under a selector prefix the deep backjump IS the
        # productive mode -- the conflict clause anchors at early selector
        # levels and the far jump prunes -- and stepping back one level at
        # a time multiplies conflicts ~40x on the incremental oracle
        # workloads (measured on mesh-8x8 sessions; see docs/solver.md).
        chrono = self._chrono if not assumption_list else 0

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self._stats["conflicts"] += 1
                conflicts_since_restart += 1
                if ema:
                    # Trail-size EMA, sampled at conflict time (before the
                    # backjump): the restart blocker's reference point.
                    # Seeded from the first sample -- starting from 0 would
                    # make the blocker fire on every early conflict.
                    if self._ema_trail == 0.0:
                        self._ema_trail = float(len(self._trail))
                    else:
                        self._ema_trail += (
                            (len(self._trail) - self._ema_trail)
                            / EMA_TRAIL_WINDOW)
                if (self._interrupt is not None
                        and self._stats["conflicts"]
                        >= self._interrupt_mark):
                    self._interrupt_mark = (self._stats["conflicts"]
                                            + INTERRUPT_CHECK_INTERVAL)
                    self._check_interrupt(trace, stats_before)
                if (trace is not None
                        and self._stats["conflicts"] >= self._trace_phase_mark):
                    self._emit_trace_phase(trace)
                if not self._trail_lim:
                    self._ok = False
                    if trace is not None:
                        self._emit_trace_solve_end(trace, stats_before, False)
                    return SatResult(satisfiable=False, stats=self.stats)
                learned, backjump_level, lbd = self._analyse(conflict)
                if ema:
                    # Seeded from the first LBD sample (see trail EMA).
                    if self._ema_slow == 0.0:
                        self._ema_fast = self._ema_slow = float(lbd)
                    else:
                        self._ema_fast += ((lbd - self._ema_fast)
                                           / EMA_FAST_WINDOW)
                        self._ema_slow += ((lbd - self._ema_slow)
                                           / EMA_SLOW_WINDOW)
                if (chrono and len(learned) > 1
                        and len(self._trail_lim) - backjump_level > chrono):
                    # Chronological backtracking: a far backjump throws away
                    # a large trail that is usually rebuilt verbatim; step
                    # back one level instead.  The learned clause stays
                    # unit there (every non-asserting literal sits at or
                    # below the backjump level), so the asserting literal
                    # is enqueued with the clause as reason exactly as on
                    # the non-chronological path.  Unit learned clauses are
                    # exempt: a reason-free literal above level 0 would be
                    # indistinguishable from an assumption in
                    # ``_analyse_final``.
                    backjump_level = len(self._trail_lim) - 1
                    self._stats["chrono_backtracks"] += 1
                self._cancel_until(backjump_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], -1)
                else:
                    # Watch the asserting literal and a literal from the
                    # backjump level so the watch invariant survives future
                    # backtracking.
                    levels = self._level
                    for position in range(2, len(learned)):
                        if (levels[abs(learned[position])]
                                >= levels[abs(learned[1])]):
                            learned[1], learned[position] = (
                                learned[position], learned[1])
                    cid = self._new_clause(learned, learned=True)
                    self._cact[cid] = self._clause_inc
                    self._clbd[cid] = lbd
                    bucket = min(lbd, LBD_HISTOGRAM_CAP)
                    self._lbd_hist[bucket] = \
                        self._lbd_hist.get(bucket, 0) + 1
                    self._stats["learned"] += 1
                    self._enqueue(learned[0], cid)
                self._decay_activity()
                self._decay_clause()
                if len(self._learnt_cids) >= \
                        self._max_learnts + len(self._trail):
                    if self._vivify and not self._vivify_learnts(trace):
                        # Vivification hit a level-0 conflict: UNSAT.
                        self._ok = False
                        if trace is not None:
                            self._emit_trace_solve_end(
                                trace, stats_before, False)
                        return SatResult(satisfiable=False, stats=self.stats)
                    self._reduce_db()
                    self._max_learnts *= 1.1
                continue

            if ema:
                if (conflicts_since_restart >= EMA_MIN_INTERVAL
                        and self._ema_fast
                        > EMA_THRESHOLD * self._ema_slow):
                    if len(self._trail) > (EMA_BLOCK_THRESHOLD
                                           * self._ema_trail):
                        # Blocking: the trail is unusually deep -- the
                        # search may be closing in on a model, so the
                        # restart is postponed (the fast average is reset,
                        # as on a taken restart).
                        self._stats["blocked_restarts"] += 1
                        self._ema_fast = self._ema_slow
                        conflicts_since_restart = 0
                    else:
                        self._stats["restarts"] += 1
                        if trace is not None:
                            trace.emit(
                                "restart",
                                conflicts=self._stats["conflicts"],
                                interval=conflicts_since_restart,
                                limit=EMA_MIN_INTERVAL, policy="ema",
                                fast=round(self._ema_fast, 4),
                                slow=round(self._ema_slow, 4))
                        self._ema_fast = self._ema_slow
                        conflicts_since_restart = 0
                        self._cancel_until(0)
                        continue
            elif conflicts_since_restart >= restart_limit:
                self._stats["restarts"] += 1
                if trace is not None:
                    trace.emit("restart", conflicts=self._stats["conflicts"],
                               interval=conflicts_since_restart,
                               limit=restart_limit, policy="luby")
                restart_index += 1
                conflicts_since_restart = 0
                restart_limit = 32 * self._luby(restart_index)
                self._cancel_until(0)
                continue

            num_assumptions = len(assumption_list)
            if len(self._trail_lim) < num_assumptions:
                # Place pending assumptions, each as a decision on its own
                # level.  Assumptions already true get their (empty) level
                # without a propagation round-trip -- the batch stops at
                # the first one that actually enqueues.
                trail_lim = self._trail_lim
                while len(trail_lim) < num_assumptions:
                    literal = assumption_list[len(trail_lim)]
                    value = self._value(literal)
                    if value is False:
                        core = self._analyse_final(literal)
                        self._last_core = core
                        if trace is not None:
                            self._emit_trace_solve_end(
                                trace, stats_before, False)
                        # No backtrack: the placed assumption levels stay
                        # on the trail for the next query's prefix reuse.
                        return SatResult(satisfiable=False, stats=self.stats,
                                         core=core)
                    trail_lim.append(len(self._trail))
                    if value is None:
                        self._enqueue(literal, -1)
                        break
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                lit_val = self._lit_val
                center = self._center
                model = {var: lit_val[center + var] == _TRUE
                         for var in range(1, self._num_vars + 1)}
                if self._elim_stack:
                    self._reconstruct_model(model)
                if trace is not None:
                    self._emit_trace_solve_end(trace, stats_before, True)
                # No backtrack (see the docstring): the next solve or
                # clause addition cancels exactly as far as it must.
                return SatResult(satisfiable=True, model=model,
                                 stats=self.stats)
            self._stats["decisions"] += 1
            if (self._interrupt is not None
                    and self._stats["decisions"] % 1024 == 0):
                # Conflict-free searches (pure propagation walks) must
                # honour the budget too, just on a coarser cadence.
                self._check_interrupt(trace, stats_before)
            trail_lim = self._trail_lim
            trail_lim.append(len(self._trail))
            polarity = self._decision_polarity(variable)
            # Inlined _enqueue for the decision (reason-free) case.
            literal = variable if polarity else -variable
            lit_val = self._lit_val
            center = self._center
            lit_val[center + literal] = _TRUE
            lit_val[center - literal] = _FALSE
            self._level[variable] = len(trail_lim)
            self._reason[variable] = -1
            self._trail.append(literal)

    def last_core(self) -> Optional[List[Literal]]:
        """The assumption core of the most recent UNSAT-under-assumptions
        answer (``None`` otherwise)."""
        return self._last_core

    # -- introspection (tests, debugging) -------------------------------------------
    def clause_literals(self, cid: int) -> List[Literal]:
        """The literals of clause ``cid`` as stored in the arena."""
        offset = self._coff[cid]
        return self._arena[offset:offset + self._csize[cid]]

    def check_watch_invariants(self) -> List[str]:
        """Audit the watcher structures; returns violations (empty = OK).

        Checked by the clause-management test suite, in particular across
        arena garbage collections: every clause with >= 2 literals must be
        watched on exactly its first two arena slots, every watcher entry
        must reference a live clause, and every blocker must be a literal
        of its clause.
        """
        errors: List[str] = []
        count = len(self._coff)
        watched: Dict[int, List[int]] = {cid: [] for cid in range(count)}
        center = self._center
        for slot, watch_list in enumerate(self._watches):
            if len(watch_list) % 2:
                errors.append(f"watch list at slot {slot} has odd length")
                continue
            literal = slot - center
            for read in range(0, len(watch_list), 2):
                cid = watch_list[read]
                blocker = watch_list[read + 1]
                if not 0 <= cid < count:
                    errors.append(f"watcher references dead clause {cid}")
                    continue
                watched[cid].append(literal)
                literals = self.clause_literals(cid)
                if blocker not in literals:
                    errors.append(f"blocker {blocker} of clause {cid} is "
                                  f"not one of its literals {literals}")
        for cid in range(count):
            literals = self.clause_literals(cid)
            if len(literals) < 2:
                continue
            if sorted(watched[cid]) != sorted(literals[:2]):
                errors.append(
                    f"clause {cid} watches {sorted(watched[cid])} but its "
                    f"watched pair is {sorted(literals[:2])}")
        return errors


class SatSolver:
    """A CDCL solver over a :class:`CNF`, incrementally re-solvable.

    The solver keeps a live reference to the CNF: clauses added to the CNF
    after construction are picked up by the next :meth:`solve` call, and a
    single :class:`SatSolver` can be queried many times under different
    assumptions -- learned clauses are shared between the queries.
    """

    def __init__(self, cnf: CNF, seed: int = 2010, trace=None,
                 solver_options: Optional[Dict[str, object]] = None) -> None:
        self._cnf = cnf
        self._engine = IncrementalSatSolver(seed=seed, trace=trace,
                                            **(solver_options or {}))
        self._loaded_clauses = 0
        self._sync()

    @property
    def engine(self) -> IncrementalSatSolver:
        return self._engine

    def _sync(self) -> None:
        """Stream CNF clauses added since the last solve into the arena."""
        self._engine.ensure_vars(self._cnf.num_vars)
        loaded = self._loaded_clauses
        self._loaded_clauses = self._cnf.num_clauses
        self._engine.add_clauses(self._cnf.iter_clauses(start=loaded))

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause to both the CNF and the live solver."""
        self._cnf.add_clause(literals)
        self._sync()

    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Decide satisfiability (optionally under unit assumptions).

        Models are *not* re-evaluated against the CNF here (that O(formula)
        pass per solve was measurable on one-shot queries); the property
        suite cross-checks models against :meth:`CNF.evaluate` instead.
        """
        self._sync()
        return self._engine.solve(assumptions)

    def last_core(self) -> Optional[List[Literal]]:
        return self._engine.last_core()


def solve_cnf(cnf: CNF, assumptions: Iterable[Literal] = ()) -> SatResult:
    """Convenience wrapper: solve a CNF with a fresh solver instance."""
    return SatSolver(cnf).solve(assumptions)


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Exponential reference implementation used to validate the solver."""
    variables = sorted(cnf.variables())
    if not variables:
        return not cnf.has_empty_clause()
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            return True
    return False


def brute_force_models(cnf: CNF) -> Iterator[Dict[int, bool]]:
    """Enumerate *all* models of a CNF (over the variables it mentions).

    Exponential; only meant for cross-checking the CDCL solver on small
    formulas in the property-test suite.
    """
    variables = sorted(cnf.variables())
    if not variables:
        if not cnf.has_empty_clause():
            yield {}
        return
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            yield assignment


def count_models_brute_force(cnf: CNF) -> int:
    """Number of models over the variables the CNF mentions (exponential)."""
    return sum(1 for _ in brute_force_models(cnf))
