"""An incremental CDCL SAT solver (the offline stand-in for Z3/MiniSat).

The solver implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning, learned-clause
  minimisation and non-chronological backjumping,
* VSIDS-style activity-based decision heuristic backed by a binary heap,
  with phase saving,
* Luby-sequence restarts,
* activity-driven learned-clause deletion,
* **incremental use**: clauses can be added between ``solve`` calls, a
  single solver instance can be re-queried many times, and each query can
  be made under *assumptions* (temporary unit hypotheses).  When a query is
  unsatisfiable because of its assumptions, the solver reports a *core*: a
  subset of the assumptions that is already inconsistent with the formula.

Assumptions are handled MiniSat-style: each assumption literal is placed as
a decision on its own decision level before any search decision is taken, so
everything the solver learns remains valid for later queries with different
assumptions.  This is what makes the repeated deadlock queries of
:mod:`repro.core.deadlock` and the portfolio driver of
:mod:`repro.core.portfolio` cheap: the CNF is encoded once and every
topology/routing scenario is a fresh set of assumptions on the same solver.

The solver is deterministic: two runs on the same formula with the same
``seed`` take the same decisions and return the same model and statistics.
Correctness is cross-checked against a brute-force evaluator in the test
suite (see ``tests/test_sat_incremental.py``).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.checking.cnf import CNF, Clause, Literal


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    #: Statistics of the search (decisions, propagations, conflicts, restarts).
    stats: Dict[str, int] = field(default_factory=dict)
    #: When UNSAT under assumptions: a subset of the assumptions that is
    #: already inconsistent with the formula (``None`` when the formula
    #: itself is unsatisfiable, or when the result is SAT).
    core: Optional[List[Literal]] = None

    def named_model(self, cnf: CNF) -> Dict[str, bool]:
        """Decode the model using the CNF's variable names."""
        if self.model is None:
            raise ValueError("no model: formula is unsatisfiable")
        named = {}
        for var, value in self.model.items():
            name = cnf.name_of(var)
            if name is not None:
                named[name] = value
        return named


class _ClauseRef:
    """Mutable clause wrapper used internally by the solver."""

    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: Sequence[Literal], learned: bool = False):
        # Fresh lists (the normal case) are adopted rather than copied --
        # clause construction is on the encoding hot path.
        self.literals: List[Literal] = (literals if isinstance(literals, list)
                                        else list(literals))
        self.learned = learned
        self.activity = 0.0


class _VarHeap:
    """Max-"heap" over variables ordered by VSIDS activity.

    Ties are broken by variable index (smaller first) so that the decision
    order -- and therefore the whole search -- is deterministic.

    Implemented over :mod:`heapq` (C-backed) with *lazy* entries: every
    push/activity-update appends a ``(-activity, var, version)`` tuple and
    bumps the variable's version; entries whose version is no longer
    current are skipped on pop.  This replaces the pure-Python sift loops
    of a classic indexed binary heap -- which profiling showed dominating
    incremental workloads (tens of thousands of pops per solve) -- while
    popping variables in exactly the same (activity desc, index asc)
    order.
    """

    __slots__ = ("_activity", "_entries", "_version", "_in_heap", "_size")

    def __init__(self, activity: List[float]) -> None:
        self._activity = activity
        # (-activity-at-push, var, version) tuples; stale versions skipped.
        self._entries: List[Tuple[float, int, int]] = []
        self._version: List[int] = [0]
        self._in_heap: List[bool] = [False]
        self._size = 0

    def __contains__(self, var: int) -> bool:
        return var < len(self._in_heap) and self._in_heap[var]

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, var: int) -> None:
        while len(self._in_heap) <= var:
            self._in_heap.append(False)
            self._version.append(0)

    def push(self, var: int) -> None:
        in_heap = self._in_heap
        if var >= len(in_heap):
            self._grow_to(var)
            in_heap = self._in_heap
        if in_heap[var]:
            return
        in_heap[var] = True
        self._size += 1
        version = self._version[var] + 1
        self._version[var] = version
        heappush(self._entries, (-self._activity[var], var, version))

    def pop(self) -> int:
        entries = self._entries
        version = self._version
        in_heap = self._in_heap
        while True:
            _, var, entry_version = heappop(entries)
            if in_heap[var] and version[var] == entry_version:
                in_heap[var] = False
                self._size -= 1
                return var

    def push_fresh(self, start: int, stop: int) -> None:
        """Bulk-push the freshly allocated variables ``start..stop-1``.

        Requires the variables to be brand new (``start`` equal to the
        current array length); used by ``ensure_vars``.
        """
        assert start == len(self._in_heap)
        in_heap = self._in_heap
        version = self._version
        activity = self._activity
        entries = self._entries
        for var in range(start, stop):
            in_heap.append(True)
            version.append(1)
            heappush(entries, (-activity[var], var, 1))
        self._size += stop - start

    def update(self, var: int) -> None:
        """Re-establish the heap order after ``var``'s activity increased."""
        if var < len(self._in_heap) and self._in_heap[var]:
            version = self._version[var] + 1
            self._version[var] = version
            heappush(self._entries, (-self._activity[var], var, version))

    def rebuild(self) -> None:
        """Rebuild every live entry from current activities.

        Needed after a global activity rescale: live entries carry the
        pre-rescale keys, which would compare inconsistently against
        entries pushed after the rescale.  Rescales are rare (activity
        overflow past 1e100), so the full rebuild is cheap amortised.
        """
        self._entries = [(-self._activity[var], var, self._version[var])
                         for var in range(1, len(self._in_heap))
                         if self._in_heap[var]]
        heapify(self._entries)


class IncrementalSatSolver:
    """A CDCL solver that supports incremental clause addition and
    solve-under-assumptions.

    The intended use is *encode once, query many times*::

        solver = IncrementalSatSolver()
        selector = solver.new_var()
        solver.add_clause([-selector, a, b])   # selector -> (a | b)
        solver.solve(assumptions=[selector])   # with the clause enabled
        solver.solve(assumptions=[-selector])  # with the clause disabled

    All learned clauses are kept between queries, so repeated related
    queries get monotonically faster.
    """

    def __init__(self, seed: int = 2010,
                 random_polarity_freq: float = 0.0) -> None:
        self._num_vars = 0
        self._clauses: List[_ClauseRef] = []
        self._learnts: List[_ClauseRef] = []
        # Watch lists, indexed by _watch_index(literal); each entry is a
        # (clause, clause.literals) pair (see :meth:`_attach`).
        self._watches: List[List[Tuple[_ClauseRef, List[Literal]]]] = []
        # Per-variable state, 1-indexed (slot 0 unused).
        self._assign: List[Optional[bool]] = [None]
        self._level: List[int] = [0]
        self._reason: List[Optional[_ClauseRef]] = [None]
        self._activity: List[float] = [0.0]
        self._polarity: List[bool] = [False]
        self._heap = _VarHeap(self._activity)
        self._trail: List[Literal] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._ok = True
        self._activity_inc = 1.0
        self._activity_decay = 0.95
        self._clause_inc = 1.0
        self._clause_decay = 0.999
        self._max_learnts = 0.0
        self._rng = random.Random(seed)
        self._random_polarity_freq = random_polarity_freq
        self._stats = {"decisions": 0, "propagations": 0, "conflicts": 0,
                       "restarts": 0, "learned": 0, "deleted": 0,
                       "solves": 0, "minimised": 0}
        self._last_core: Optional[List[Literal]] = None
        # Reusable conflict-analysis scratch buffer (one byte per variable,
        # slot 0 unused); cleared selectively after every analysis so no
        # per-conflict allocation is needed.
        self._seen = bytearray(1)

    # -- variables ----------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self._num_vars += 1
        var = self._num_vars
        self._assign.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(False)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        self._heap.push(var)
        return var

    def ensure_vars(self, count: int) -> None:
        """Grow the variable range to at least ``count`` variables.

        Bulk form of :meth:`new_var` (one extend per array instead of six
        appends per variable) -- encodings allocate variables in bursts
        through this path.
        """
        grow = count - self._num_vars
        if grow <= 0:
            return
        start = self._num_vars + 1
        self._num_vars = count
        self._assign.extend([None] * grow)
        self._level.extend([0] * grow)
        self._reason.extend([None] * grow)
        self._activity.extend([0.0] * grow)
        self._polarity.extend([False] * grow)
        self._seen.extend(b"\x00" * grow)
        self._watches.extend([] for _ in range(2 * grow))
        self._heap.push_fresh(start, count + 1)

    @staticmethod
    def _watch_index(literal: Literal) -> int:
        var = literal if literal > 0 else -literal
        return 2 * var - 2 + (literal < 0)

    # -- assignment helpers --------------------------------------------------------
    def _value(self, literal: Literal) -> Optional[bool]:
        value = self._assign[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: Literal, reason: Optional[_ClauseRef]) -> None:
        var = abs(literal)
        self._assign[var] = literal > 0
        self._level[var] = self._decision_level
        self._reason[var] = reason
        self._trail.append(literal)

    def _cancel_until(self, level: int) -> None:
        """Undo all assignments above ``level`` (phase-saving the polarity)."""
        if len(self._trail_lim) <= level:
            return
        trail = self._trail
        assign = self._assign
        polarity = self._polarity
        reason = self._reason
        heap_push = self._heap.push
        limit = self._trail_lim[level]
        for literal in reversed(trail[limit:]):
            var = literal if literal > 0 else -literal
            polarity[var] = literal > 0
            assign[var] = None
            reason[var] = None
            heap_push(var)
        del trail[limit:]
        del self._trail_lim[level:]
        if self._qhead > limit:
            self._qhead = limit

    # -- clause addition -----------------------------------------------------------
    def add_clause(self, literals: Iterable[Literal]) -> bool:
        """Add a clause; returns ``False`` when the formula became UNSAT.

        Can be called at any time, also between ``solve`` calls: the solver
        first backtracks to decision level 0.  Literals over unseen variables
        grow the variable range automatically.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            self._cancel_until(0)

        # Clause loading is hot when whole encodings stream in (thousands
        # of clauses per oracle), so the per-literal work reads the
        # assignment array directly and deduplicates against the (short)
        # clause being built instead of allocating a set.
        assign = self._assign
        clause: List[Literal] = []
        satisfied = False
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            var = literal if literal > 0 else -literal
            if var > self._num_vars:
                self.ensure_vars(var)
            value = assign[var]
            if value is not None:
                if value == (literal > 0):
                    satisfied = True  # already true at level 0
                else:
                    continue  # permanently false literal: drop it
            if literal in clause:
                continue
            if -literal in clause:
                return True  # tautology
            clause.append(literal)
        if satisfied:
            return True
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        ref = _ClauseRef(clause)
        self._clauses.append(ref)
        # Inlined _attach (one entry tuple, two watch-list appends).
        watches = self._watches
        entry = (ref, clause)
        first = clause[0]
        first_var = first if first > 0 else -first
        watches[2 * first_var - 2 + (first < 0)].append(entry)
        second = clause[1]
        second_var = second if second > 0 else -second
        watches[2 * second_var - 2 + (second < 0)].append(entry)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[Literal]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def _attach(self, ref: _ClauseRef) -> None:
        # Watch lists hold (ref, literals) pairs: the literal list identity
        # is stable (it is mutated in place), and carrying it in the entry
        # saves one attribute load per clause visit in the propagation loop.
        watches = self._watches
        literals = ref.literals
        entry = (ref, literals)
        first = literals[0]
        first_var = first if first > 0 else -first
        watches[2 * first_var - 2 + (first < 0)].append(entry)
        second = literals[1]
        second_var = second if second > 0 else -second
        watches[2 * second_var - 2 + (second < 0)].append(entry)

    # -- propagation ---------------------------------------------------------------
    def _propagate(self) -> Optional[_ClauseRef]:
        """Unit propagation from the current queue head.

        Returns the conflicting clause, or ``None``.

        This is the solver's hottest loop, so it trades a little clarity for
        constant factors: the per-variable arrays are bound to locals, literal
        values are read inline instead of through :meth:`_value`, watch lists
        are compacted in place (two-pointer style) instead of being rebuilt,
        and the propagation counter is flushed to the stats dict once per
        call.  The visit order -- and therefore the whole search -- is
        identical to the straightforward formulation.
        """
        trail = self._trail
        trail_append = trail.append
        watches = self._watches
        assign = self._assign
        level = self._level
        reason = self._reason
        qhead = self._qhead
        propagations = 0
        conflict: Optional[_ClauseRef] = None
        while qhead < len(trail):
            literal = trail[qhead]
            qhead += 1
            propagations += 1
            false_literal = -literal
            var = false_literal if false_literal > 0 else -false_literal
            watch_list = watches[2 * var - 2 + (false_literal < 0)]
            end = len(watch_list)
            read = write = 0
            while read < end:
                entry = watch_list[read]
                read += 1
                literals = entry[1]
                # Ensure the false literal is at position 1.
                if literals[0] == false_literal:
                    literals[0] = literals[1]
                    literals[1] = false_literal
                first = literals[0]
                first_var = first if first > 0 else -first
                first_value = assign[first_var]
                if first_value is not None and \
                        (first_value if first > 0 else not first_value):
                    watch_list[write] = entry
                    write += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(literals)):
                    candidate = literals[position]
                    candidate_var = candidate if candidate > 0 else -candidate
                    candidate_value = assign[candidate_var]
                    if candidate_value is None or \
                            (candidate_value if candidate > 0
                             else not candidate_value):
                        literals[1] = candidate
                        literals[position] = false_literal
                        watches[2 * candidate_var - 2
                                + (candidate < 0)].append(entry)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watch_list[write] = entry
                write += 1
                if first_value is not None:  # i.e. ``first`` is false
                    while read < end:
                        watch_list[write] = watch_list[read]
                        write += 1
                        read += 1
                    conflict = entry[0]
                    break
                assign[first_var] = first > 0
                level[first_var] = len(self._trail_lim)
                reason[first_var] = entry[0]
                trail_append(first)
            del watch_list[write:]
            if conflict is not None:
                qhead = len(trail)
                break
        self._qhead = qhead
        self._stats["propagations"] += propagations
        return conflict

    # -- conflict analysis ---------------------------------------------------------
    def _analyse(self, conflict: _ClauseRef) -> Tuple[List[Literal], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first) and the
        backjump level.
        """
        learned: List[Literal] = []
        seen = self._seen
        to_clear: List[int] = []
        trail = self._trail
        levels = self._level
        reasons = self._reason
        activity = self._activity
        heap_update = self._heap.update
        current_level = self._decision_level
        counter = 0
        literal: Optional[Literal] = None
        # ``skip`` is the trail literal being resolved on; 0 matches nothing,
        # so the whole conflict clause participates in the first round.
        skip: Literal = 0
        reason_literals: Iterable[Literal] = conflict.literals
        self._bump_clause(conflict)
        trail_index = len(trail) - 1

        while True:
            for reason_literal in reason_literals:
                if reason_literal == skip:
                    continue
                var = reason_literal if reason_literal > 0 else -reason_literal
                if seen[var] or levels[var] == 0:
                    continue
                seen[var] = 1
                to_clear.append(var)
                # Inlined _bump_activity (hot: every marked variable).
                new_activity = activity[var] + self._activity_inc
                activity[var] = new_activity
                if new_activity > 1e100:
                    self._rescale_activity()
                heap_update(var)
                if levels[var] == current_level:
                    counter += 1
                else:
                    learned.append(reason_literal)
            # Find the next literal on the trail to resolve on.
            while True:
                literal = trail[trail_index]
                trail_index -= 1
                if seen[literal if literal > 0 else -literal]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_ref = reasons[literal if literal > 0 else -literal]
            assert reason_ref is not None
            self._bump_clause(reason_ref)
            skip = literal
            reason_literals = reason_ref.literals
        assert literal is not None

        # Learned-clause minimisation: drop any literal whose reason clause
        # consists only of literals already in the learned clause (or set at
        # level 0) -- resolving on it cannot add information.
        minimised: List[Literal] = []
        for candidate in learned:
            reason_ref = self._reason[abs(candidate)]
            if reason_ref is None:
                minimised.append(candidate)
                continue
            redundant = all(
                seen[abs(other)] or self._level[abs(other)] == 0
                for other in reason_ref.literals if other != -candidate)
            if redundant:
                self._stats["minimised"] += 1
            else:
                minimised.append(candidate)
        learned = minimised
        learned.insert(0, -literal)
        for var in to_clear:
            seen[var] = 0

        if len(learned) == 1:
            backjump_level = 0
        else:
            backjump_level = max(self._level[abs(lit)]
                                 for lit in learned[1:])
        return learned, backjump_level

    def _analyse_final(self, failed: Literal) -> List[Literal]:
        """Why is the assumption ``failed`` false right now?

        Walks the implication graph backwards from ``-failed`` and collects
        the assumption decisions involved.  Returns a subset of the current
        assumptions that is inconsistent with the formula (always including
        ``failed`` itself).  Only called while every decision on the trail
        is an assumption.
        """
        core = [failed]
        if self._decision_level == 0:
            return core
        seen = {abs(failed)}
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            literal = self._trail[index]
            var = abs(literal)
            if var not in seen:
                continue
            reason = self._reason[var]
            if reason is None:
                # A decision below the first search level is an assumption.
                core.append(literal)
            else:
                for other in reason.literals:
                    if self._level[abs(other)] > 0:
                        seen.add(abs(other))
            seen.discard(var)
        return core

    # -- activities ----------------------------------------------------------------
    def _rescale_activity(self) -> None:
        """Scale every activity down after an overflow past 1e100.

        The order is preserved, but the keys of every live lazy-heap entry
        become inconsistent with post-rescale pushes, so the heap is
        rebuilt in one pass (rescales are rare)."""
        for index in range(1, self._num_vars + 1):
            self._activity[index] *= 1e-100
        self._activity_inc *= 1e-100
        self._heap.rebuild()

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            self._rescale_activity()
        self._heap.update(var)

    def _decay_activity(self) -> None:
        self._activity_inc /= self._activity_decay

    def _bump_clause(self, ref: _ClauseRef) -> None:
        if not ref.learned:
            return
        ref.activity += self._clause_inc
        if ref.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_clause(self) -> None:
        self._clause_inc /= self._clause_decay

    # -- learned-clause deletion -----------------------------------------------------
    def _reduce_db(self) -> None:
        """Delete the less active half of the learned clauses.

        Binary clauses and clauses that are currently the reason of a trail
        assignment are kept.
        """
        locked = {id(self._reason[abs(lit)]) for lit in self._trail
                  if self._reason[abs(lit)] is not None}
        ranked = sorted(self._learnts, key=lambda ref: ref.activity)
        cut = len(ranked) // 2
        doomed = {id(ref) for ref in ranked[:cut]
                  if len(ref.literals) > 2 and id(ref) not in locked}
        if not doomed:
            return
        self._learnts = [ref for ref in self._learnts
                         if id(ref) not in doomed]
        for index in range(len(self._watches)):
            watch_list = self._watches[index]
            self._watches[index] = [entry for entry in watch_list
                                    if id(entry[0]) not in doomed]
        self._stats["deleted"] += len(doomed)

    # -- decisions -----------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        heap = self._heap
        while len(heap):
            var = heap.pop()
            if self._assign[var] is None:
                return var
        return None

    def _decision_polarity(self, var: int) -> bool:
        if (self._random_polarity_freq > 0.0
                and self._rng.random() < self._random_polarity_freq):
            return self._rng.random() < 0.5
        return self._polarity[var]

    # -- restarts ------------------------------------------------------------------
    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
        if index < 1:
            return 1
        while True:
            k = index.bit_length()
            if index == (1 << k) - 1:
                return 1 << (k - 1)
            index = index - (1 << (k - 1)) + 1

    # -- main loop -----------------------------------------------------------------
    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Decide satisfiability under the given unit assumptions.

        The solver state survives the call: further clauses can be added and
        further queries (with different assumptions) issued afterwards.
        """
        self._stats["solves"] += 1
        self._last_core = None
        assumption_list = list(assumptions)
        for literal in assumption_list:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if abs(literal) > self._num_vars:
                self.ensure_vars(abs(literal))

        if not self._ok:
            return SatResult(satisfiable=False, stats=self.stats)
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return SatResult(satisfiable=False, stats=self.stats)

        if self._max_learnts <= 0:
            self._max_learnts = max(100.0, len(self._clauses) / 3.0)
        restart_index = 1
        conflicts_since_restart = 0
        restart_limit = 32 * self._luby(restart_index)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._stats["conflicts"] += 1
                conflicts_since_restart += 1
                if self._decision_level == 0:
                    self._ok = False
                    return SatResult(satisfiable=False, stats=self.stats)
                learned, backjump_level = self._analyse(conflict)
                self._cancel_until(backjump_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    # Watch the asserting literal and a literal from the
                    # backjump level so the watch invariant survives future
                    # backtracking.
                    for position in range(2, len(learned)):
                        if (self._level[abs(learned[position])]
                                >= self._level[abs(learned[1])]):
                            learned[1], learned[position] = (
                                learned[position], learned[1])
                    ref = _ClauseRef(learned, learned=True)
                    ref.activity = self._clause_inc
                    self._learnts.append(ref)
                    self._attach(ref)
                    self._stats["learned"] += 1
                    self._enqueue(learned[0], ref)
                self._decay_activity()
                self._decay_clause()
                if len(self._learnts) >= self._max_learnts + len(self._trail):
                    self._reduce_db()
                    self._max_learnts *= 1.1
                continue

            if conflicts_since_restart >= restart_limit:
                self._stats["restarts"] += 1
                restart_index += 1
                conflicts_since_restart = 0
                restart_limit = 32 * self._luby(restart_index)
                self._cancel_until(0)
                continue

            if self._decision_level < len(assumption_list):
                # Place the next assumption as a decision on its own level.
                literal = assumption_list[self._decision_level]
                value = self._value(literal)
                if value is False:
                    core = self._analyse_final(literal)
                    self._last_core = core
                    self._cancel_until(0)
                    return SatResult(satisfiable=False, stats=self.stats,
                                     core=core)
                self._trail_lim.append(len(self._trail))
                if value is None:
                    self._enqueue(literal, None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                model = {var: bool(self._assign[var])
                         for var in range(1, self._num_vars + 1)}
                self._cancel_until(0)
                return SatResult(satisfiable=True, model=model,
                                 stats=self.stats)
            self._stats["decisions"] += 1
            trail_lim = self._trail_lim
            trail_lim.append(len(self._trail))
            polarity = self._decision_polarity(variable)
            # Inlined _enqueue for the decision (reason-free) case.
            self._assign[variable] = polarity
            self._level[variable] = len(trail_lim)
            self._reason[variable] = None
            self._trail.append(variable if polarity else -variable)

    def last_core(self) -> Optional[List[Literal]]:
        """The assumption core of the most recent UNSAT-under-assumptions
        answer (``None`` otherwise)."""
        return self._last_core


class SatSolver:
    """A CDCL solver over a :class:`CNF`, incrementally re-solvable.

    The solver keeps a live reference to the CNF: clauses added to the CNF
    after construction are picked up by the next :meth:`solve` call, and a
    single :class:`SatSolver` can be queried many times under different
    assumptions -- learned clauses are shared between the queries.
    """

    def __init__(self, cnf: CNF, seed: int = 2010) -> None:
        self._cnf = cnf
        self._engine = IncrementalSatSolver(seed=seed)
        self._loaded_clauses = 0
        self._sync()

    @property
    def engine(self) -> IncrementalSatSolver:
        return self._engine

    def _sync(self) -> None:
        """Load CNF clauses that were added since the last solve."""
        self._engine.ensure_vars(self._cnf.num_vars)
        for clause in self._cnf.clauses[self._loaded_clauses:]:
            self._engine.add_clause(clause)
        self._loaded_clauses = len(self._cnf.clauses)

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause to both the CNF and the live solver."""
        self._cnf.add_clause(literals)
        self._sync()

    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Decide satisfiability (optionally under unit assumptions)."""
        self._sync()
        result = self._engine.solve(assumptions)
        if result.satisfiable:
            # Defensive check: a complete assignment returned as a model
            # must satisfy every original clause.
            model = dict(result.model or {})
            for var in self._cnf.variables():
                model.setdefault(var, False)
            if not self._cnf.evaluate(model):  # pragma: no cover
                raise AssertionError(
                    "internal SAT solver error: model does not satisfy CNF")
        return result

    def last_core(self) -> Optional[List[Literal]]:
        return self._engine.last_core()


def solve_cnf(cnf: CNF, assumptions: Iterable[Literal] = ()) -> SatResult:
    """Convenience wrapper: solve a CNF with a fresh solver instance."""
    return SatSolver(cnf).solve(assumptions)


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Exponential reference implementation used to validate the solver."""
    variables = sorted(cnf.variables())
    if not variables:
        return all(len(clause) > 0 for clause in cnf.clauses) or not cnf.clauses
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            return True
    return False


def brute_force_models(cnf: CNF) -> Iterator[Dict[int, bool]]:
    """Enumerate *all* models of a CNF (over the variables it mentions).

    Exponential; only meant for cross-checking the CDCL solver on small
    formulas in the property-test suite.
    """
    variables = sorted(cnf.variables())
    if not variables:
        if all(len(clause) > 0 for clause in cnf.clauses) or not cnf.clauses:
            yield {}
        return
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            yield assignment


def count_models_brute_force(cnf: CNF) -> int:
    """Number of models over the variables the CNF mentions (exponential)."""
    return sum(1 for _ in brute_force_models(cnf))
