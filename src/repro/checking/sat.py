"""A CDCL SAT solver (the offline stand-in for Z3).

The solver implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style activity-based decision heuristic with decay,
* Luby-sequence restarts,
* optional learned-clause deletion.

It is deliberately written for clarity rather than raw speed; the formulas
produced by the acyclicity encodings of :mod:`repro.checking.encodings` are
small (thousands of clauses), and correctness is cross-checked against a
brute-force evaluator in the test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checking.cnf import CNF, Clause, Literal


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    #: Statistics of the search (decisions, propagations, conflicts, restarts).
    stats: Dict[str, int] = field(default_factory=dict)

    def named_model(self, cnf: CNF) -> Dict[str, bool]:
        """Decode the model using the CNF's variable names."""
        if self.model is None:
            raise ValueError("no model: formula is unsatisfiable")
        named = {}
        for var, value in self.model.items():
            name = cnf.name_of(var)
            if name is not None:
                named[name] = value
        return named


class _ClauseRef:
    """Mutable clause wrapper used internally by the solver."""

    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: Sequence[Literal], learned: bool = False):
        self.literals: List[Literal] = list(literals)
        self.learned = learned
        self.activity = 0.0


class SatSolver:
    """A CDCL solver over a fixed CNF."""

    def __init__(self, cnf: CNF) -> None:
        self._cnf = cnf
        self._num_vars = cnf.num_vars
        self._clauses: List[_ClauseRef] = []
        self._watches: Dict[Literal, List[_ClauseRef]] = {}
        # assignment[var] is True/False/None
        self._assignment: List[Optional[bool]] = [None] * (self._num_vars + 1)
        self._level: List[int] = [0] * (self._num_vars + 1)
        self._reason: List[Optional[_ClauseRef]] = [None] * (self._num_vars + 1)
        self._trail: List[Literal] = []
        self._trail_limits: List[int] = []
        self._activity: List[float] = [0.0] * (self._num_vars + 1)
        self._activity_inc = 1.0
        self._activity_decay = 0.95
        self._stats = {"decisions": 0, "propagations": 0, "conflicts": 0,
                       "restarts": 0, "learned": 0}
        self._trivially_unsat = False
        self._initialise_clauses()

    # -- setup --------------------------------------------------------------------
    def _initialise_clauses(self) -> None:
        for clause in self._cnf.clauses:
            if len(clause) == 0:
                self._trivially_unsat = True
                return
            deduped = self._simplify_clause(clause)
            if deduped is None:
                continue  # tautological clause
            if len(deduped) == 1:
                literal = deduped[0]
                value = self._value(literal)
                if value is False:
                    self._trivially_unsat = True
                    return
                if value is None:
                    self._enqueue(literal, None)
                continue
            self._add_clause_ref(_ClauseRef(deduped))

    @staticmethod
    def _simplify_clause(clause: Clause) -> Optional[List[Literal]]:
        seen = set()
        result: List[Literal] = []
        for literal in clause:
            if -literal in seen:
                return None
            if literal not in seen:
                seen.add(literal)
                result.append(literal)
        return result

    def _add_clause_ref(self, ref: _ClauseRef) -> None:
        self._clauses.append(ref)
        self._watch(ref.literals[0], ref)
        self._watch(ref.literals[1], ref)

    def _watch(self, literal: Literal, ref: _ClauseRef) -> None:
        self._watches.setdefault(literal, []).append(ref)

    # -- assignment helpers ---------------------------------------------------------
    def _value(self, literal: Literal) -> Optional[bool]:
        value = self._assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    @property
    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _enqueue(self, literal: Literal, reason: Optional[_ClauseRef]) -> None:
        var = abs(literal)
        self._assignment[var] = literal > 0
        self._level[var] = self._decision_level
        self._reason[var] = reason
        self._trail.append(literal)

    # -- propagation -------------------------------------------------------------------
    def _propagate(self, queue_start: int) -> Tuple[Optional[_ClauseRef], int]:
        """Unit propagation from the trail position ``queue_start``.

        Returns (conflict clause or None, new queue position).
        """
        head = queue_start
        while head < len(self._trail):
            literal = self._trail[head]
            head += 1
            self._stats["propagations"] += 1
            false_literal = -literal
            watch_list = self._watches.get(false_literal, [])
            new_watch_list: List[_ClauseRef] = []
            conflict: Optional[_ClauseRef] = None
            index = 0
            while index < len(watch_list):
                ref = watch_list[index]
                index += 1
                literals = ref.literals
                # Ensure the false literal is at position 1.
                if literals[0] == false_literal:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                if self._value(first) is True:
                    new_watch_list.append(ref)
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(literals)):
                    candidate = literals[position]
                    if self._value(candidate) is not False:
                        literals[1], literals[position] = (literals[position],
                                                           literals[1])
                        self._watch(literals[1], ref)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(ref)
                if self._value(first) is False:
                    # Conflict: keep the remaining watchers and stop.
                    new_watch_list.extend(watch_list[index:])
                    conflict = ref
                    break
                self._enqueue(first, ref)
            self._watches[false_literal] = new_watch_list
            if conflict is not None:
                return conflict, head
        return None, head

    # -- conflict analysis -----------------------------------------------------------------
    def _analyse(self, conflict: _ClauseRef) -> Tuple[List[Literal], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first) and the backjump
        level.
        """
        learned: List[Literal] = []
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal: Optional[Literal] = None
        reason_literals = list(conflict.literals)
        trail_index = len(self._trail) - 1

        while True:
            for reason_literal in reason_literals:
                var = abs(reason_literal)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump_activity(var)
                if self._level[var] == self._decision_level:
                    counter += 1
                else:
                    learned.append(reason_literal)
            # Find the next literal on the trail to resolve on.
            while True:
                literal = self._trail[trail_index]
                trail_index -= 1
                if seen[abs(literal)]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_ref = self._reason[abs(literal)]
            assert reason_ref is not None
            reason_literals = [lit for lit in reason_ref.literals
                               if lit != literal]
        assert literal is not None
        learned.insert(0, -literal)

        if len(learned) == 1:
            backjump_level = 0
        else:
            levels = sorted((self._level[abs(lit)] for lit in learned[1:]),
                            reverse=True)
            backjump_level = levels[0]
        return learned, backjump_level

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._activity_inc *= 1e-100

    def _decay_activity(self) -> None:
        self._activity_inc /= self._activity_decay

    # -- backtracking ------------------------------------------------------------------------
    def _backjump(self, level: int) -> None:
        if self._decision_level <= level:
            return
        limit = self._trail_limits[level]
        for literal in self._trail[limit:]:
            var = abs(literal)
            self._assignment[var] = None
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_limits[level:]

    # -- decisions ----------------------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assignment[var] is None and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        return best_var

    # -- restarts ------------------------------------------------------------------------------
    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
        if index < 1:
            return 1
        while True:
            k = index.bit_length()
            if index == (1 << k) - 1:
                return 1 << (k - 1)
            index = index - (1 << (k - 1)) + 1

    # -- main loop ----------------------------------------------------------------------------
    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Decide satisfiability (optionally under unit assumptions)."""
        if self._trivially_unsat:
            return SatResult(satisfiable=False, stats=dict(self._stats))

        for assumption in assumptions:
            value = self._value(assumption)
            if value is False:
                return SatResult(satisfiable=False, stats=dict(self._stats))
            if value is None:
                self._enqueue(assumption, None)

        conflict, queue_pos = self._propagate(0)
        if conflict is not None:
            return SatResult(satisfiable=False, stats=dict(self._stats))

        restart_index = 1
        conflicts_since_restart = 0
        restart_limit = 32 * self._luby(restart_index)
        base_trail_length = len(self._trail)

        while True:
            conflict, queue_pos = self._propagate(queue_pos)
            if conflict is not None:
                self._stats["conflicts"] += 1
                conflicts_since_restart += 1
                if self._decision_level == 0:
                    return SatResult(satisfiable=False,
                                     stats=dict(self._stats))
                learned, backjump_level = self._analyse(conflict)
                self._backjump(backjump_level)
                queue_pos = len(self._trail)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    # Watch the asserting literal and a literal from the
                    # backjump level so the watch invariant survives future
                    # backtracking.
                    for position in range(2, len(learned)):
                        if (self._level[abs(learned[position])]
                                >= self._level[abs(learned[1])]):
                            learned[1], learned[position] = (
                                learned[position], learned[1])
                    ref = _ClauseRef(learned, learned=True)
                    self._add_clause_ref(ref)
                    self._stats["learned"] += 1
                    self._enqueue(learned[0], ref)
                self._decay_activity()
                continue

            if conflicts_since_restart >= restart_limit:
                self._stats["restarts"] += 1
                restart_index += 1
                conflicts_since_restart = 0
                restart_limit = 32 * self._luby(restart_index)
                self._backjump(0)
                queue_pos = base_trail_length

            variable = self._pick_branch_variable()
            if variable is None:
                model = {var: bool(self._assignment[var])
                         for var in range(1, self._num_vars + 1)}
                # Defensive check: a complete assignment returned as a model
                # must satisfy every original clause.
                if not self._cnf.evaluate(model):  # pragma: no cover
                    raise AssertionError(
                        "internal SAT solver error: model does not satisfy CNF")
                return SatResult(satisfiable=True, model=model,
                                 stats=dict(self._stats))
            self._stats["decisions"] += 1
            self._trail_limits.append(len(self._trail))
            self._enqueue(-variable, None)


def solve_cnf(cnf: CNF, assumptions: Iterable[Literal] = ()) -> SatResult:
    """Convenience wrapper: solve a CNF with a fresh solver instance."""
    return SatSolver(cnf).solve(assumptions)


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Exponential reference implementation used to validate the solver."""
    variables = sorted(cnf.variables())
    if not variables:
        return all(len(clause) > 0 for clause in cnf.clauses) or not cnf.clauses
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            return True
    return False
