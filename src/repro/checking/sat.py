"""An incremental CDCL SAT solver over a flat clause arena.

The solver implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation over **literal-indexed watcher
  lists** whose entries carry a *blocker* literal (a clause known to be
  satisfied while its blocker is true is skipped without touching clause
  memory),
* a **flat clause arena**: every clause lives in one shared int list,
  referenced by a dense clause id with offset/length (and learned-flag,
  activity, LBD) kept in parallel arrays -- no per-clause Python objects,
* first-UIP conflict analysis with clause learning, learned-clause
  minimisation and non-chronological backjumping,
* **LBD ("glue") tracking**: every learned clause records the number of
  distinct decision levels among its literals at learning time, and
  learned-clause deletion retains clauses LBD-first (glue and binary
  clauses are immortal), compacting the arena afterwards,
* VSIDS-style activity-based decision heuristic backed by a binary heap,
  with phase saving,
* Luby-sequence restarts,
* **incremental use**: clauses can be added between ``solve`` calls, a
  single solver instance can be re-queried many times, and each query can
  be made under *assumptions* (temporary unit hypotheses).  When a query is
  unsatisfiable because of its assumptions, the solver reports a *core*: a
  subset of the assumptions that is already inconsistent with the formula.

Assumptions are handled MiniSat-style: each assumption literal is placed as
a decision on its own decision level before any search decision is taken, so
everything the solver learns remains valid for later queries with different
assumptions.  This is what makes the repeated deadlock queries of
:mod:`repro.core.deadlock` and the portfolio driver of
:mod:`repro.core.portfolio` cheap: the CNF is encoded once and every
topology/routing scenario is a fresh set of assumptions on the same solver.

The solver is deterministic: two runs on the same formula with the same
``seed`` take the same decisions and return the same model and statistics.
Correctness is cross-checked against a brute-force evaluator in the test
suite (see ``tests/test_sat_incremental.py`` and
``tests/test_clause_management.py``).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.checking.cnf import CNF, Literal

#: Truth values of the literal-indexed assignment array.
_UNASSIGNED, _TRUE, _FALSE = 0, 1, 2

#: LBD values at or above this bucket share one histogram key
#: (``lbd_10`` counts every learned clause with LBD >= 10).
LBD_HISTOGRAM_CAP = 10

#: How many conflicts pass between cooperative interrupt checks.  The
#: callback runs off the hot path (one int test per conflict, the callback
#: itself only every Nth conflict), so a solve honours a budget within a
#: few hundred conflicts of it expiring.
INTERRUPT_CHECK_INTERVAL = 64


class SolverTimeout(Exception):
    """A cooperative solver interrupt fired mid-search.

    Raised out of :meth:`IncrementalSatSolver.solve` when the interrupt
    callback installed via :meth:`IncrementalSatSolver.set_interrupt`
    reports an expired budget.  The solver unwinds to decision level 0
    first, so the instance -- formula, learned clauses, statistics --
    remains fully usable for later queries; only the interrupted query is
    lost (no model, no core).
    """

    def __init__(self, reason: str = "solver budget exhausted") -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    #: Statistics of the search (decisions, propagations, conflicts, restarts).
    stats: Dict[str, int] = field(default_factory=dict)
    #: When UNSAT under assumptions: a subset of the assumptions that is
    #: already inconsistent with the formula (``None`` when the formula
    #: itself is unsatisfiable, or when the result is SAT).
    core: Optional[List[Literal]] = None

    def named_model(self, cnf: CNF) -> Dict[str, bool]:
        """Decode the model using the CNF's variable names."""
        if self.model is None:
            raise ValueError("no model: formula is unsatisfiable")
        model = self.model
        return {name: model[var]
                for name, var in cnf.named_variables().items()
                if var in model}


class _VarHeap:
    """Max-"heap" over variables ordered by VSIDS activity.

    Ties are broken by variable index (smaller first) so that the decision
    order -- and therefore the whole search -- is deterministic.

    Implemented over :mod:`heapq` (C-backed) with *lazy* entries: every
    push/activity-update appends a ``(-activity, var, version)`` tuple and
    bumps the variable's version; entries whose version is no longer
    current are skipped on pop.  This replaces the pure-Python sift loops
    of a classic indexed binary heap -- which profiling showed dominating
    incremental workloads (tens of thousands of pops per solve) -- while
    popping variables in exactly the same (activity desc, index asc)
    order.
    """

    __slots__ = ("_activity", "_entries", "_version", "_in_heap", "_size")

    def __init__(self, activity: List[float]) -> None:
        self._activity = activity
        # (-activity-at-push, var, version) tuples; stale versions skipped.
        self._entries: List[Tuple[float, int, int]] = []
        self._version: List[int] = [0]
        self._in_heap: List[bool] = [False]
        self._size = 0

    def __contains__(self, var: int) -> bool:
        return var < len(self._in_heap) and self._in_heap[var]

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, var: int) -> None:
        while len(self._in_heap) <= var:
            self._in_heap.append(False)
            self._version.append(0)

    def push(self, var: int) -> None:
        in_heap = self._in_heap
        if var >= len(in_heap):
            self._grow_to(var)
            in_heap = self._in_heap
        if in_heap[var]:
            return
        in_heap[var] = True
        self._size += 1
        version = self._version[var] + 1
        self._version[var] = version
        heappush(self._entries, (-self._activity[var], var, version))

    def pop(self) -> int:
        entries = self._entries
        version = self._version
        in_heap = self._in_heap
        while True:
            _, var, entry_version = heappop(entries)
            if in_heap[var] and version[var] == entry_version:
                in_heap[var] = False
                self._size -= 1
                return var

    def push_fresh(self, start: int, stop: int) -> None:
        """Bulk-push the freshly allocated variables ``start..stop-1``.

        Requires the variables to be brand new (``start`` equal to the
        current array length); used by ``ensure_vars``.
        """
        assert start == len(self._in_heap)
        in_heap = self._in_heap
        version = self._version
        activity = self._activity
        entries = self._entries
        for var in range(start, stop):
            in_heap.append(True)
            version.append(1)
            heappush(entries, (-activity[var], var, 1))
        self._size += stop - start

    def update(self, var: int) -> None:
        """Re-establish the heap order after ``var``'s activity increased."""
        if var < len(self._in_heap) and self._in_heap[var]:
            version = self._version[var] + 1
            self._version[var] = version
            heappush(self._entries, (-self._activity[var], var, version))

    def rebuild(self) -> None:
        """Rebuild every live entry from current activities.

        Needed after a global activity rescale: live entries carry the
        pre-rescale keys, which would compare inconsistently against
        entries pushed after the rescale.  Rescales are rare (activity
        overflow past 1e100), so the full rebuild is cheap amortised.
        """
        self._entries = [(-self._activity[var], var, self._version[var])
                         for var in range(1, len(self._in_heap))
                         if self._in_heap[var]]
        heapify(self._entries)


class IncrementalSatSolver:
    """A CDCL solver that supports incremental clause addition and
    solve-under-assumptions.

    The intended use is *encode once, query many times*::

        solver = IncrementalSatSolver()
        selector = solver.new_var()
        solver.add_clause([-selector, a, b])   # selector -> (a | b)
        solver.solve(assumptions=[selector])   # with the clause enabled
        solver.solve(assumptions=[-selector])  # with the clause disabled

    All learned clauses are kept between queries (subject to LBD-driven
    deletion), so repeated related queries get monotonically faster.

    Internally the solver is a *flat-array engine*: clause literals live in
    one shared int arena (``_arena``), clauses are dense ids indexing the
    parallel ``_coff``/``_csize``/``_clearned``/``_cact``/``_clbd`` arrays,
    truth values live in a literal-indexed bytearray and watcher lists are
    flat ``[clause_id, blocker, ...]`` int lists -- no per-clause or
    per-watch Python objects on the propagation path.
    """

    def __init__(self, seed: int = 2010,
                 random_polarity_freq: float = 0.0,
                 trace=None) -> None:
        self._num_vars = 0
        # Literal-indexed state: index ``_center + literal`` is valid for
        # every |literal| <= _cap, so truth lookups need no branch on the
        # literal's sign.  Grown geometrically by _grow_literal_arrays.
        self._cap = 0
        self._center = 0
        self._lit_val = bytearray(1)
        #: Watcher lists, one per literal slot; each list is a flat
        #: ``[clause_id, blocker, clause_id, blocker, ...]`` int sequence.
        self._watches: List[List[int]] = [[]]
        # The clause arena: all clause literals in one int list.  A clause
        # is a dense id ``cid`` with literals at
        # ``_arena[_coff[cid] : _coff[cid] + _csize[cid]]``; the watched
        # pair sits at offsets 0 and 1.  Learned flags, activities and LBD
        # scores live in parallel arrays indexed by ``cid``.
        self._arena: List[int] = []
        self._coff: List[int] = []
        self._csize: List[int] = []
        self._clearned = bytearray()
        # Learned-clause side tables, keyed by cid.  Only learned clauses
        # carry an activity and an LBD, so these stay off the problem-
        # clause loading path (sparse "parallel arrays" of the arena).
        self._cact: Dict[int, float] = {}
        self._clbd: Dict[int, int] = {}
        self._learnt_cids: List[int] = []
        self._num_problem = 0
        # Per-variable state, 1-indexed (slot 0 unused).  Reasons are
        # clause ids (-1: decision / level-0 fact).
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]
        self._activity: List[float] = [0.0]
        self._polarity = bytearray(1)
        self._heap = _VarHeap(self._activity)
        self._trail: List[Literal] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._ok = True
        self._activity_inc = 1.0
        self._activity_decay = 0.95
        self._clause_inc = 1.0
        self._clause_decay = 0.999
        self._max_learnts = 0.0
        self._rng = random.Random(seed)
        self._random_polarity_freq = random_polarity_freq
        #: Assumptions of the previous solve, for prefix-trail reuse.
        self._last_assumptions: List[Literal] = []
        self._stats = {"decisions": 0, "propagations": 0, "conflicts": 0,
                       "restarts": 0, "learned": 0, "deleted": 0,
                       "solves": 0, "minimised": 0,
                       "arena_gcs": 0, "arena_reclaimed": 0}
        #: LBD histogram of learned clauses: bucket -> count, buckets
        #: capped at LBD_HISTOGRAM_CAP (the last bucket is ">= cap").
        self._lbd_hist: Dict[int, int] = {}
        self._last_core: Optional[List[Literal]] = None
        # Reusable conflict-analysis scratch buffer (one byte per variable,
        # slot 0 unused); cleared selectively after every analysis so no
        # per-conflict allocation is needed.
        self._seen = bytearray(1)
        #: Optional :class:`repro.core.trace.TraceWriter`.  ``None`` keeps
        #: every trace hook to a single pointer test off the propagation
        #: loop -- behaviour and verdicts are identical to an untraced
        #: solver (pinned by the trace test suite).
        self._trace = trace
        # Conflict count at which the next ``solver_phase`` sample is due,
        # and the stat snapshot the sample's deltas are computed against.
        self._trace_phase_mark = 0
        self._trace_phase_snapshot: Dict[str, int] = {}
        # Cooperative interrupt: a callback polled every
        # INTERRUPT_CHECK_INTERVAL conflicts (and periodically between
        # decisions); a truthy return aborts the solve via SolverTimeout.
        self._interrupt = None
        self._interrupt_mark = 0

    # -- cooperative interruption ---------------------------------------------------
    def set_interrupt(self, callback) -> None:
        """Install (or clear) the cooperative solve budget.

        ``callback`` takes no arguments and returns a falsy value while
        the solve may continue, or a reason string once the budget is
        exhausted -- e.g. ``lambda: time.monotonic() > deadline and
        "group deadline"``.  It is polled every
        :data:`INTERRUPT_CHECK_INTERVAL` conflicts and every 1024
        decisions; when it fires, the running (and any later) ``solve``
        raises :class:`SolverTimeout` after restoring decision level 0, so
        incremental state and the UNSAT-core machinery stay intact for
        whoever clears the interrupt and queries again.  Pass ``None`` to
        remove the budget.
        """
        self._interrupt = callback
        self._interrupt_mark = 0

    def _check_interrupt(self, trace, stats_before: Dict[str, int]) -> None:
        reason = self._interrupt()
        if reason:
            # Unwind to level 0: the trail keeps only facts, so future
            # queries (after the budget is lifted) start from a clean,
            # consistent state and prefix reuse simply restarts.
            self._cancel_until(0)
            self._last_assumptions = []
            self._last_core = None
            if trace is not None:
                # Close the solve span (``sat`` null: no verdict) so the
                # stream stays balanced for validate_trace.
                self._emit_trace_solve_end(trace, stats_before, None)
            raise SolverTimeout(str(reason))

    # -- variables ----------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def stats(self) -> Dict[str, int]:
        """Search statistics, including the LBD histogram (``lbd_<n>``).

        The key set is **identical on every path** -- the LBD buckets
        ``lbd_1..lbd_{cap}`` are always present (zero-filled before any
        clause is learned), so the trivially-UNSAT early return, a
        fresh solver and a long search all report the same keys and
        stat-delta consumers never have to special-case missing ones.
        """
        merged = dict(self._stats)
        hist = self._lbd_hist
        for bucket in range(1, LBD_HISTOGRAM_CAP + 1):
            merged[f"lbd_{bucket}"] = hist.get(bucket, 0)
        return merged

    def lbd_histogram(self) -> Dict[int, int]:
        """Learned-clause LBD counts (bucket ``LBD_HISTOGRAM_CAP`` is
        ">= cap"); cumulative over the solver's lifetime."""
        return dict(self._lbd_hist)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self.ensure_vars(self._num_vars + 1)
        return self._num_vars

    def ensure_vars(self, count: int) -> None:
        """Grow the variable range to at least ``count`` variables.

        Bulk form of :meth:`new_var` (one extend per array instead of many
        appends per variable) -- encodings allocate variables in bursts
        through this path.
        """
        grow = count - self._num_vars
        if grow <= 0:
            return
        start = self._num_vars + 1
        self._num_vars = count
        self._level.extend([0] * grow)
        self._reason.extend([-1] * grow)
        self._activity.extend([0.0] * grow)
        self._polarity.extend(b"\x00" * grow)
        self._seen.extend(b"\x00" * grow)
        if count > self._cap:
            self._grow_literal_arrays(count)
        self._heap.push_fresh(start, count + 1)

    def _grow_literal_arrays(self, needed: int) -> None:
        """Re-centre the literal-indexed arrays for |literal| <= needed.

        Growth is geometric, so re-centring (which copies the assignment
        bytes and re-homes the existing watch-list objects) stays rare and
        amortised-free even when variables arrive one at a time.
        """
        new_cap = max(needed, 2 * self._cap, 64)
        old_cap = self._cap
        new_center = new_cap
        new_lit_val = bytearray(2 * new_cap + 1)
        new_lit_val[new_center - old_cap:new_center + old_cap + 1] = \
            self._lit_val
        new_watches: List[List[int]] = [[] for _ in range(2 * new_cap + 1)]
        new_watches[new_center - old_cap:new_center + old_cap + 1] = \
            self._watches
        self._lit_val = new_lit_val
        self._watches = new_watches
        self._cap = new_cap
        self._center = new_center

    # -- assignment helpers --------------------------------------------------------
    def _value(self, literal: Literal) -> Optional[bool]:
        value = self._lit_val[self._center + literal]
        if value == _UNASSIGNED:
            return None
        return value == _TRUE

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: Literal, reason: int) -> None:
        lit_val = self._lit_val
        center = self._center
        lit_val[center + literal] = _TRUE
        lit_val[center - literal] = _FALSE
        var = literal if literal > 0 else -literal
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(literal)

    def _cancel_until(self, level: int) -> None:
        """Undo all assignments above ``level`` (phase-saving the polarity)."""
        if len(self._trail_lim) <= level:
            return
        trail = self._trail
        lit_val = self._lit_val
        center = self._center
        polarity = self._polarity
        reason = self._reason
        activity = self._activity
        heap = self._heap
        in_heap = heap._in_heap
        version = heap._version
        entries = heap._entries
        pushed = 0
        limit = self._trail_lim[level]
        for literal in reversed(trail[limit:]):
            var = literal if literal > 0 else -literal
            polarity[var] = literal > 0
            lit_val[center + literal] = _UNASSIGNED
            lit_val[center - literal] = _UNASSIGNED
            reason[var] = -1
            # Inlined heap.push (hot: every backtracked variable).
            if not in_heap[var]:
                in_heap[var] = True
                entry_version = version[var] + 1
                version[var] = entry_version
                heappush(entries, (-activity[var], var, entry_version))
                pushed += 1
        heap._size += pushed
        del trail[limit:]
        del self._trail_lim[level:]
        if self._qhead > limit:
            self._qhead = limit

    # -- clause addition -----------------------------------------------------------
    def _new_clause(self, literals: List[Literal], learned: bool) -> int:
        """Append a clause to the arena and attach its watchers.

        The first two literals become the watched pair; each watcher
        carries the *other* watched literal as its initial blocker.
        """
        arena = self._arena
        self._coff.append(len(arena))
        self._csize.append(len(literals))
        arena.extend(literals)
        cid = len(self._clearned)
        self._clearned.append(1 if learned else 0)
        if learned:
            self._cact[cid] = 0.0
            self._clbd[cid] = 0
            self._learnt_cids.append(cid)
        else:
            self._num_problem += 1
        watches = self._watches
        center = self._center
        first, second = literals[0], literals[1]
        watch_list = watches[center + first]
        watch_list.append(cid)
        watch_list.append(second)
        watch_list = watches[center + second]
        watch_list.append(cid)
        watch_list.append(first)
        return cid

    def add_clause(self, literals: Iterable[Literal]) -> bool:
        """Add a clause; returns ``False`` when the formula became UNSAT.

        Can be called at any time, also between ``solve`` calls: the solver
        first backtracks to decision level 0.  Literals over unseen variables
        grow the variable range automatically.

        One-clause form of :meth:`add_clauses` (which holds the single
        copy of the simplify/dedup/attach logic); every bulk consumer
        streams through :meth:`add_clauses` directly.
        """
        return self.add_clauses((literals,))

    def add_clauses(self, clauses: Iterable[Iterable[Literal]]) -> bool:
        """Stream many clauses into the arena (see :meth:`add_clause`).

        Semantically a loop of :meth:`add_clause`, but with the per-clause
        state (assignment bytes, arena, watcher table) hoisted out of the
        loop -- whole encodings (thousands of clauses per oracle) load
        through this path, and the hoisting is worth ~25% of load time.

        An **empty** stream leaves the solver untouched: the sync layers
        call this between every pair of solves (usually with nothing new),
        and backtracking would needlessly destroy the assumption-prefix
        trail that :meth:`solve` reuses.  The backtrack to level 0
        happens only once the first real clause arrives.
        """
        if not self._ok:
            return False
        iterator = iter(clauses)
        for probe in iterator:
            first_batch = (probe,)
            break
        else:
            return True  # nothing to add: keep the reusable trail intact
        if self._trail_lim:
            self._cancel_until(0)
        clauses = itertools.chain(first_batch, iterator)
        lit_val = self._lit_val
        center = self._center
        num_vars = self._num_vars
        arena = self._arena
        coff = self._coff
        csize = self._csize
        clearned = self._clearned
        watches = self._watches
        added = 0
        ok = True
        for literals in clauses:
            clause: List[Literal] = []
            satisfied = False
            tautology = False
            for literal in literals:
                if literal == 0:
                    raise ValueError("0 is not a valid literal")
                var = literal if literal > 0 else -literal
                if var > num_vars:
                    self.ensure_vars(var)
                    lit_val = self._lit_val
                    center = self._center
                    num_vars = self._num_vars
                    watches = self._watches
                value = lit_val[center + literal]
                if value:
                    if value == 1:
                        satisfied = True
                    else:
                        continue
                if literal in clause:
                    continue
                if -literal in clause:
                    tautology = True
                    break
                clause.append(literal)
            if tautology or satisfied:
                continue
            if not clause:
                self._ok = False
                ok = False
                break
            if len(clause) == 1:
                self._enqueue(clause[0], -1)
                if self._propagate() >= 0:
                    self._ok = False
                    ok = False
                    break
                continue
            coff.append(len(arena))
            csize.append(len(clause))
            arena.extend(clause)
            cid = len(clearned)
            clearned.append(0)
            added += 1
            first, second = clause[0], clause[1]
            watch_list = watches[center + first]
            watch_list.append(cid)
            watch_list.append(second)
            watch_list = watches[center + second]
            watch_list.append(cid)
            watch_list.append(first)
        self._num_problem += added
        return ok

    # -- propagation ---------------------------------------------------------------
    def _propagate(self) -> int:
        """Unit propagation from the current queue head.

        Returns the conflicting clause id, or ``-1``.

        This is the solver's hottest loop, so it trades a little clarity
        for constant factors: watcher entries are flat ``cid, blocker``
        int pairs; a true blocker skips the clause with a single bytearray
        read; clause literals are read straight from the arena (the false
        watch is normalised to slot 1 in place); watcher lists are
        compacted in place (two-pointer style); and the propagation
        counter is flushed to the stats dict once per call.
        """
        trail = self._trail
        watches = self._watches
        lit_val = self._lit_val
        center = self._center
        arena = self._arena
        coff = self._coff
        csize = self._csize
        level = self._level
        reason = self._reason
        qhead = self._qhead
        current_level = len(self._trail_lim)
        propagations = 0
        conflict = -1
        trail_len = len(trail)
        while qhead < trail_len:
            literal = trail[qhead]
            qhead += 1
            propagations += 1
            false_literal = -literal
            watch_list = watches[center + false_literal]
            end = len(watch_list)
            read = write = 0
            while read < end:
                blocker = watch_list[read + 1]
                if lit_val[center + blocker] == 1:
                    # Clause satisfied by its blocker: keep, untouched.
                    watch_list[write] = watch_list[read]
                    watch_list[write + 1] = blocker
                    write += 2
                    read += 2
                    continue
                cid = watch_list[read]
                read += 2
                if csize[cid] == 2:
                    # Binary fast path: the blocker of a binary watcher is
                    # always the clause's other literal (watches never
                    # move), so the clause is unit or conflicting without
                    # touching the arena.  Behaviour-identical to the
                    # general path below, just fewer loads.
                    watch_list[write] = cid
                    watch_list[write + 1] = blocker
                    write += 2
                    if lit_val[center + blocker]:  # == _FALSE: conflict
                        while read < end:
                            watch_list[write] = watch_list[read]
                            watch_list[write + 1] = watch_list[read + 1]
                            write += 2
                            read += 2
                        conflict = cid
                        break
                    lit_val[center + blocker] = 1
                    lit_val[center - blocker] = 2
                    var = blocker if blocker > 0 else -blocker
                    level[var] = current_level
                    reason[var] = cid
                    trail.append(blocker)
                    trail_len += 1
                    continue
                offset = coff[cid]
                # Normalise the false watch to slot 1.
                if arena[offset] == false_literal:
                    arena[offset] = arena[offset + 1]
                    arena[offset + 1] = false_literal
                first = arena[offset]
                first_value = lit_val[center + first]
                if first_value == 1:
                    # The other watch is true: keep, with it as blocker.
                    watch_list[write] = cid
                    watch_list[write + 1] = first
                    write += 2
                    continue
                # Look for a new literal to watch.
                for position in range(offset + 2, offset + csize[cid]):
                    candidate = arena[position]
                    if lit_val[center + candidate] != 2:
                        arena[offset + 1] = candidate
                        arena[position] = false_literal
                        other_list = watches[center + candidate]
                        other_list.append(cid)
                        other_list.append(first)
                        break
                else:
                    # Clause is unit or conflicting.
                    watch_list[write] = cid
                    watch_list[write + 1] = first
                    write += 2
                    if first_value:  # == _FALSE: every literal false
                        while read < end:
                            watch_list[write] = watch_list[read]
                            watch_list[write + 1] = watch_list[read + 1]
                            write += 2
                            read += 2
                        conflict = cid
                        break
                    # Inlined _enqueue of the unit literal.
                    lit_val[center + first] = 1
                    lit_val[center - first] = 2
                    var = first if first > 0 else -first
                    level[var] = current_level
                    reason[var] = cid
                    trail.append(first)
                    trail_len += 1
            del watch_list[write:]
            if conflict >= 0:
                qhead = trail_len
                break
        self._qhead = qhead
        self._stats["propagations"] += propagations
        return conflict

    # -- conflict analysis ---------------------------------------------------------
    def _analyse(self, conflict: int) -> Tuple[List[Literal], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first), the backjump
        level and the clause's LBD (distinct decision levels among its
        literals, measured before backjumping).
        """
        learned: List[Literal] = []
        seen = self._seen
        to_clear: List[int] = []
        trail = self._trail
        levels = self._level
        reasons = self._reason
        activity = self._activity
        arena = self._arena
        coff = self._coff
        csize = self._csize
        heap_update = self._heap.update
        current_level = len(self._trail_lim)
        counter = 0
        literal = 0
        # ``skip`` is the trail literal being resolved on; 0 matches nothing,
        # so the whole conflict clause participates in the first round.
        skip: Literal = 0
        reason_cid = conflict
        self._bump_clause(conflict)
        trail_index = len(trail) - 1

        while True:
            offset = coff[reason_cid]
            for position in range(offset, offset + csize[reason_cid]):
                reason_literal = arena[position]
                if reason_literal == skip:
                    continue
                var = reason_literal if reason_literal > 0 else -reason_literal
                if seen[var] or levels[var] == 0:
                    continue
                seen[var] = 1
                to_clear.append(var)
                # Inlined _bump_activity (hot: every marked variable).
                new_activity = activity[var] + self._activity_inc
                activity[var] = new_activity
                if new_activity > 1e100:
                    self._rescale_activity()
                heap_update(var)
                if levels[var] == current_level:
                    counter += 1
                else:
                    learned.append(reason_literal)
            # Find the next literal on the trail to resolve on.
            while True:
                literal = trail[trail_index]
                trail_index -= 1
                if seen[literal if literal > 0 else -literal]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_cid = reasons[literal if literal > 0 else -literal]
            assert reason_cid >= 0
            self._bump_clause(reason_cid)
            skip = literal

        # Learned-clause minimisation: drop any literal whose reason clause
        # consists only of literals already in the learned clause (or set at
        # level 0) -- resolving on it cannot add information.
        minimised: List[Literal] = []
        for candidate in learned:
            reason_cid = reasons[abs(candidate)]
            if reason_cid < 0:
                minimised.append(candidate)
                continue
            offset = coff[reason_cid]
            redundant = True
            for position in range(offset, offset + csize[reason_cid]):
                other = arena[position]
                if other == -candidate:
                    continue
                if not (seen[abs(other)] or levels[abs(other)] == 0):
                    redundant = False
                    break
            if redundant:
                self._stats["minimised"] += 1
            else:
                minimised.append(candidate)
        learned = minimised
        learned.insert(0, -literal)
        for var in to_clear:
            seen[var] = 0

        if len(learned) == 1:
            backjump_level = 0
        else:
            backjump_level = max(levels[abs(lit)] for lit in learned[1:])
        # LBD while the conflict-time levels are still live (the asserting
        # literal sits on the current level, the rest at or below the
        # backjump level).
        lbd = len({levels[abs(lit)] for lit in learned[1:]}) + 1 \
            if len(learned) > 1 else 1
        return learned, backjump_level, lbd

    def _analyse_final(self, failed: Literal) -> List[Literal]:
        """Why is the assumption ``failed`` false right now?

        Walks the implication graph backwards from ``-failed`` and collects
        the assumption decisions involved.  Returns a subset of the current
        assumptions that is inconsistent with the formula (always including
        ``failed`` itself).  Only called while every decision on the trail
        is an assumption.
        """
        core = [failed]
        if not self._trail_lim:
            return core
        arena = self._arena
        coff = self._coff
        csize = self._csize
        levels = self._level
        seen = {abs(failed)}
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            literal = self._trail[index]
            var = abs(literal)
            if var not in seen:
                continue
            reason_cid = self._reason[var]
            if reason_cid < 0:
                # A decision below the first search level is an assumption.
                core.append(literal)
            else:
                offset = coff[reason_cid]
                for position in range(offset, offset + csize[reason_cid]):
                    other = arena[position]
                    if levels[abs(other)] > 0:
                        seen.add(abs(other))
            seen.discard(var)
        return core

    # -- activities ----------------------------------------------------------------
    def _rescale_activity(self) -> None:
        """Scale every activity down after an overflow past 1e100.

        The order is preserved, but the keys of every live lazy-heap entry
        become inconsistent with post-rescale pushes, so the heap is
        rebuilt in one pass (rescales are rare)."""
        for index in range(1, self._num_vars + 1):
            self._activity[index] *= 1e-100
        self._activity_inc *= 1e-100
        self._heap.rebuild()

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            self._rescale_activity()
        self._heap.update(var)

    def _decay_activity(self) -> None:
        self._activity_inc /= self._activity_decay

    def _bump_clause(self, cid: int) -> None:
        if not self._clearned[cid]:
            return
        cact = self._cact
        activity = cact[cid] + self._clause_inc
        cact[cid] = activity
        if activity > 1e20:
            for learnt in self._learnt_cids:
                cact[learnt] *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_clause(self) -> None:
        self._clause_inc /= self._clause_decay

    # -- learned-clause deletion -----------------------------------------------------
    def _reduce_db(self) -> None:
        """Delete the worst half of the learned clauses, LBD-first.

        Retention follows the glue-clause insight: clauses are ranked
        worst-first by (LBD descending, activity ascending, age); binary
        clauses, glue clauses (LBD <= 2) and clauses currently acting as
        the reason of a trail assignment are immortal.  The arena is
        compacted afterwards (see :meth:`_collect_garbage`).
        """
        reason = self._reason
        locked = set()
        for literal in self._trail:
            reason_cid = reason[literal if literal > 0 else -literal]
            if reason_cid >= 0:
                locked.add(reason_cid)
        csize = self._csize
        clbd = self._clbd
        cact = self._cact
        candidates = [cid for cid in self._learnt_cids
                      if csize[cid] > 2 and clbd[cid] > 2
                      and cid not in locked]
        # Worst first: highest LBD, then lowest activity, then oldest.
        candidates.sort(key=lambda cid: (-clbd[cid], cact[cid], cid))
        doomed = candidates[:len(self._learnt_cids) // 2]
        if not doomed:
            return
        self._stats["deleted"] += len(doomed)
        if self._trace is not None:
            self._trace.emit(
                "reduce_db", deleted=len(doomed),
                retained=len(self._learnt_cids) - len(doomed),
                lbd_cutoff=min(clbd[cid] for cid in doomed))
        self._collect_garbage(set(doomed))

    def _collect_garbage(self, doomed: set) -> None:
        """Drop ``doomed`` clauses and compact the arena.

        Every surviving clause is copied to a fresh, gap-free arena and
        renumbered; watcher lists and reason references are rewritten to
        the new ids (locked clauses are never doomed, so no reason can
        dangle).  The reclaimed arena length is recorded in the
        ``arena_reclaimed`` statistic.
        """
        old_arena = self._arena
        coff = self._coff
        csize = self._csize
        clearned = self._clearned
        cact = self._cact
        clbd = self._clbd
        count = len(coff)
        remap = [-1] * count
        new_arena: List[int] = []
        new_coff: List[int] = []
        new_csize: List[int] = []
        new_learned = bytearray()
        new_act: Dict[int, float] = {}
        new_lbd: Dict[int, int] = {}
        for cid in range(count):
            if cid in doomed:
                continue
            new_cid = len(new_coff)
            remap[cid] = new_cid
            offset = coff[cid]
            size = csize[cid]
            new_coff.append(len(new_arena))
            new_csize.append(size)
            new_arena.extend(old_arena[offset:offset + size])
            new_learned.append(clearned[cid])
            if clearned[cid]:
                new_act[new_cid] = cact[cid]
                new_lbd[new_cid] = clbd[cid]
        reclaimed = len(old_arena) - len(new_arena)
        self._arena = new_arena
        self._coff = new_coff
        self._csize = new_csize
        self._clearned = new_learned
        self._cact = new_act
        self._clbd = new_lbd
        self._learnt_cids = [remap[cid] for cid in self._learnt_cids
                             if remap[cid] >= 0]
        for watch_list in self._watches:
            if not watch_list:
                continue
            write = 0
            for read in range(0, len(watch_list), 2):
                new_cid = remap[watch_list[read]]
                if new_cid < 0:
                    continue
                watch_list[write] = new_cid
                watch_list[write + 1] = watch_list[read + 1]
                write += 2
            del watch_list[write:]
        reason = self._reason
        for var in range(1, self._num_vars + 1):
            reason_cid = reason[var]
            if reason_cid >= 0:
                reason[var] = remap[reason_cid]
        self._stats["arena_gcs"] += 1
        self._stats["arena_reclaimed"] += reclaimed
        if self._trace is not None:
            self._trace.emit("arena_gc", reclaimed=reclaimed,
                             live=len(new_arena))

    # -- decisions -----------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        # Inlined lazy-heap pop: stale entries (superseded versions) and
        # already-assigned variables are skipped in one loop without the
        # per-entry method dispatch of heap.pop().
        heap = self._heap
        entries = heap._entries
        version = heap._version
        in_heap = heap._in_heap
        lit_val = self._lit_val
        center = self._center
        size = heap._size
        while size:
            _, var, entry_version = heappop(entries)
            if in_heap[var] and version[var] == entry_version:
                in_heap[var] = False
                size -= 1
                if lit_val[center + var] == _UNASSIGNED:
                    heap._size = size
                    return var
        heap._size = size
        return None

    def _decision_polarity(self, var: int) -> bool:
        if (self._random_polarity_freq > 0.0
                and self._rng.random() < self._random_polarity_freq):
            return self._rng.random() < 0.5
        return bool(self._polarity[var])

    # -- tracing -------------------------------------------------------------------
    @property
    def trace(self):
        """The attached :class:`~repro.core.trace.TraceWriter` (or ``None``)."""
        return self._trace

    def _emit_trace_phase(self, trace) -> None:
        """Emit a sampled ``solver_phase`` record and re-arm the sampler."""
        stats = self._stats
        snapshot = self._trace_phase_snapshot
        keys = ("decisions", "propagations", "conflicts", "learned",
                "restarts")
        trace.emit(
            "solver_phase",
            conflicts=stats["conflicts"],
            delta={key: stats[key] - snapshot.get(key, 0) for key in keys},
            trail=len(self._trail),
            lbd={str(bucket): self._lbd_hist[bucket]
                 for bucket in sorted(self._lbd_hist)})
        self._trace_phase_snapshot = {key: stats[key] for key in keys}
        self._trace_phase_mark = stats["conflicts"] + trace.phase_interval

    def _emit_trace_solve_end(self, trace, before: Dict[str, int],
                              sat: bool) -> None:
        """Emit ``solve_end`` with this solve's stat-counter deltas."""
        stats = self._stats
        trace.emit("solve_end", sat=sat,
                   delta={key: stats[key] - before[key] for key in stats})

    # -- restarts ------------------------------------------------------------------
    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
        if index < 1:
            return 1
        while True:
            k = index.bit_length()
            if index == (1 << k) - 1:
                return 1 << (k - 1)
            index = index - (1 << (k - 1)) + 1

    # -- main loop -----------------------------------------------------------------
    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Decide satisfiability under the given unit assumptions.

        The solver state survives the call: further clauses can be added and
        further queries (with different assumptions) issued afterwards.

        Consecutive queries reuse the **assumption-prefix trail**: the
        solver only backtracks to the longest common prefix of the previous
        and the current assumption list, so everything propagated under the
        shared assumptions stays in place.  The incremental deadlock
        queries -- same edge universe, one selector toggled per query --
        share almost their whole prefix, which makes this the single
        biggest saving on portfolio workloads.  (Adding a clause still
        backtracks to level 0, so prefix reuse never survives a formula
        change.)
        """
        trace = self._trace
        stats_before = dict(self._stats) if trace is not None else {}
        if self._interrupt is not None:
            # An already-expired budget fails fast, before the span opens.
            self._check_interrupt(None, stats_before)
        self._stats["solves"] += 1
        self._last_core = None
        assumption_list = list(assumptions)
        for literal in assumption_list:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if abs(literal) > self._num_vars:
                self.ensure_vars(abs(literal))

        if not self._ok:
            # Trivially UNSAT: the formula already failed at level 0.  The
            # span is still emitted (and the stats keys are the full set,
            # see :attr:`stats`), so stream consumers need no special case.
            if trace is not None:
                trace.emit("solve_begin", solve=self._stats["solves"],
                           assumptions=len(assumption_list), prefix_reuse=0)
                self._emit_trace_solve_end(trace, stats_before, False)
            return SatResult(satisfiable=False, stats=self.stats)
        # Longest common prefix with the previous query's assumptions,
        # capped by the decision levels actually still on the trail.
        previous = self._last_assumptions
        prefix = 0
        limit = min(len(previous), len(assumption_list),
                    len(self._trail_lim))
        while prefix < limit and previous[prefix] == assumption_list[prefix]:
            prefix += 1
        self._last_assumptions = assumption_list
        self._cancel_until(prefix)
        if trace is not None:
            trace.emit("solve_begin", solve=self._stats["solves"],
                       assumptions=len(assumption_list), prefix_reuse=prefix)
            if self._trace_phase_mark <= self._stats["conflicts"]:
                self._trace_phase_mark = (self._stats["conflicts"]
                                          + trace.phase_interval)

        if self._max_learnts <= 0:
            self._max_learnts = max(100.0, self._num_problem / 3.0)
        restart_index = 1
        conflicts_since_restart = 0
        restart_limit = 32 * self._luby(restart_index)

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self._stats["conflicts"] += 1
                conflicts_since_restart += 1
                if (self._interrupt is not None
                        and self._stats["conflicts"]
                        >= self._interrupt_mark):
                    self._interrupt_mark = (self._stats["conflicts"]
                                            + INTERRUPT_CHECK_INTERVAL)
                    self._check_interrupt(trace, stats_before)
                if (trace is not None
                        and self._stats["conflicts"] >= self._trace_phase_mark):
                    self._emit_trace_phase(trace)
                if not self._trail_lim:
                    self._ok = False
                    if trace is not None:
                        self._emit_trace_solve_end(trace, stats_before, False)
                    return SatResult(satisfiable=False, stats=self.stats)
                learned, backjump_level, lbd = self._analyse(conflict)
                self._cancel_until(backjump_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], -1)
                else:
                    # Watch the asserting literal and a literal from the
                    # backjump level so the watch invariant survives future
                    # backtracking.
                    levels = self._level
                    for position in range(2, len(learned)):
                        if (levels[abs(learned[position])]
                                >= levels[abs(learned[1])]):
                            learned[1], learned[position] = (
                                learned[position], learned[1])
                    cid = self._new_clause(learned, learned=True)
                    self._cact[cid] = self._clause_inc
                    self._clbd[cid] = lbd
                    bucket = min(lbd, LBD_HISTOGRAM_CAP)
                    self._lbd_hist[bucket] = \
                        self._lbd_hist.get(bucket, 0) + 1
                    self._stats["learned"] += 1
                    self._enqueue(learned[0], cid)
                self._decay_activity()
                self._decay_clause()
                if len(self._learnt_cids) >= \
                        self._max_learnts + len(self._trail):
                    self._reduce_db()
                    self._max_learnts *= 1.1
                continue

            if conflicts_since_restart >= restart_limit:
                self._stats["restarts"] += 1
                if trace is not None:
                    trace.emit("restart", conflicts=self._stats["conflicts"],
                               interval=conflicts_since_restart,
                               limit=restart_limit)
                restart_index += 1
                conflicts_since_restart = 0
                restart_limit = 32 * self._luby(restart_index)
                self._cancel_until(0)
                continue

            if len(self._trail_lim) < len(assumption_list):
                # Place the next assumption as a decision on its own level.
                literal = assumption_list[len(self._trail_lim)]
                value = self._value(literal)
                if value is False:
                    core = self._analyse_final(literal)
                    self._last_core = core
                    if trace is not None:
                        self._emit_trace_solve_end(trace, stats_before, False)
                    # No backtrack: the placed assumption levels stay on
                    # the trail for the next query's prefix reuse.
                    return SatResult(satisfiable=False, stats=self.stats,
                                     core=core)
                self._trail_lim.append(len(self._trail))
                if value is None:
                    self._enqueue(literal, -1)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                lit_val = self._lit_val
                center = self._center
                model = {var: lit_val[center + var] == _TRUE
                         for var in range(1, self._num_vars + 1)}
                if trace is not None:
                    self._emit_trace_solve_end(trace, stats_before, True)
                # No backtrack (see the docstring): the next solve or
                # clause addition cancels exactly as far as it must.
                return SatResult(satisfiable=True, model=model,
                                 stats=self.stats)
            self._stats["decisions"] += 1
            if (self._interrupt is not None
                    and self._stats["decisions"] % 1024 == 0):
                # Conflict-free searches (pure propagation walks) must
                # honour the budget too, just on a coarser cadence.
                self._check_interrupt(trace, stats_before)
            trail_lim = self._trail_lim
            trail_lim.append(len(self._trail))
            polarity = self._decision_polarity(variable)
            # Inlined _enqueue for the decision (reason-free) case.
            literal = variable if polarity else -variable
            lit_val = self._lit_val
            center = self._center
            lit_val[center + literal] = _TRUE
            lit_val[center - literal] = _FALSE
            self._level[variable] = len(trail_lim)
            self._reason[variable] = -1
            self._trail.append(literal)

    def last_core(self) -> Optional[List[Literal]]:
        """The assumption core of the most recent UNSAT-under-assumptions
        answer (``None`` otherwise)."""
        return self._last_core

    # -- introspection (tests, debugging) -------------------------------------------
    def clause_literals(self, cid: int) -> List[Literal]:
        """The literals of clause ``cid`` as stored in the arena."""
        offset = self._coff[cid]
        return self._arena[offset:offset + self._csize[cid]]

    def check_watch_invariants(self) -> List[str]:
        """Audit the watcher structures; returns violations (empty = OK).

        Checked by the clause-management test suite, in particular across
        arena garbage collections: every clause with >= 2 literals must be
        watched on exactly its first two arena slots, every watcher entry
        must reference a live clause, and every blocker must be a literal
        of its clause.
        """
        errors: List[str] = []
        count = len(self._coff)
        watched: Dict[int, List[int]] = {cid: [] for cid in range(count)}
        center = self._center
        for slot, watch_list in enumerate(self._watches):
            if len(watch_list) % 2:
                errors.append(f"watch list at slot {slot} has odd length")
                continue
            literal = slot - center
            for read in range(0, len(watch_list), 2):
                cid = watch_list[read]
                blocker = watch_list[read + 1]
                if not 0 <= cid < count:
                    errors.append(f"watcher references dead clause {cid}")
                    continue
                watched[cid].append(literal)
                literals = self.clause_literals(cid)
                if blocker not in literals:
                    errors.append(f"blocker {blocker} of clause {cid} is "
                                  f"not one of its literals {literals}")
        for cid in range(count):
            literals = self.clause_literals(cid)
            if len(literals) < 2:
                continue
            if sorted(watched[cid]) != sorted(literals[:2]):
                errors.append(
                    f"clause {cid} watches {sorted(watched[cid])} but its "
                    f"watched pair is {sorted(literals[:2])}")
        return errors


class SatSolver:
    """A CDCL solver over a :class:`CNF`, incrementally re-solvable.

    The solver keeps a live reference to the CNF: clauses added to the CNF
    after construction are picked up by the next :meth:`solve` call, and a
    single :class:`SatSolver` can be queried many times under different
    assumptions -- learned clauses are shared between the queries.
    """

    def __init__(self, cnf: CNF, seed: int = 2010, trace=None) -> None:
        self._cnf = cnf
        self._engine = IncrementalSatSolver(seed=seed, trace=trace)
        self._loaded_clauses = 0
        self._sync()

    @property
    def engine(self) -> IncrementalSatSolver:
        return self._engine

    def _sync(self) -> None:
        """Stream CNF clauses added since the last solve into the arena."""
        self._engine.ensure_vars(self._cnf.num_vars)
        loaded = self._loaded_clauses
        self._loaded_clauses = self._cnf.num_clauses
        self._engine.add_clauses(self._cnf.iter_clauses(start=loaded))

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause to both the CNF and the live solver."""
        self._cnf.add_clause(literals)
        self._sync()

    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Decide satisfiability (optionally under unit assumptions).

        Models are *not* re-evaluated against the CNF here (that O(formula)
        pass per solve was measurable on one-shot queries); the property
        suite cross-checks models against :meth:`CNF.evaluate` instead.
        """
        self._sync()
        return self._engine.solve(assumptions)

    def last_core(self) -> Optional[List[Literal]]:
        return self._engine.last_core()


def solve_cnf(cnf: CNF, assumptions: Iterable[Literal] = ()) -> SatResult:
    """Convenience wrapper: solve a CNF with a fresh solver instance."""
    return SatSolver(cnf).solve(assumptions)


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Exponential reference implementation used to validate the solver."""
    variables = sorted(cnf.variables())
    if not variables:
        return not cnf.has_empty_clause()
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            return True
    return False


def brute_force_models(cnf: CNF) -> Iterator[Dict[int, bool]]:
    """Enumerate *all* models of a CNF (over the variables it mentions).

    Exponential; only meant for cross-checking the CDCL solver on small
    formulas in the property-test suite.
    """
    variables = sorted(cnf.variables())
    if not variables:
        if not cnf.has_empty_clause():
            yield {}
        return
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            yield assignment


def count_models_brute_force(cnf: CNF) -> int:
    """Number of models over the variables the CNF mentions (exponential)."""
    return sum(1 for _ in brute_force_models(cnf))
