"""A small boolean-expression AST.

Used to build the acyclicity encodings of :mod:`repro.checking.encodings`
before converting them to CNF via the Tseitin transformation
(:mod:`repro.checking.tseitin`).  Expressions are immutable and hashable, so
structurally identical sub-expressions share Tseitin variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, Union


class BoolExpr:
    """Base class of boolean expressions."""

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        raise NotImplementedError

    # Expressions are immutable and are used as memo keys by the Tseitin
    # encoder, where the default recursive dataclass hash turns every
    # dictionary probe into a full-tree walk.  Each node therefore caches
    # its structural hash on first use (``object.__setattr__`` because the
    # dataclasses are frozen).
    def _structural_hash(self) -> int:
        raise NotImplementedError

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = self._structural_hash()
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- operator sugar ----------------------------------------------------------
    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or(self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)

    def implies(self, other: "BoolExpr") -> "BoolExpr":
        return Implies(self, other)

    def iff(self, other: "BoolExpr") -> "BoolExpr":
        return Iff(self, other)


@dataclass(frozen=True)
class Const(BoolExpr):
    """A boolean constant."""

    value: bool

    # Re-declared in each dataclass body: the dataclass machinery would
    # otherwise shadow the caching ``BoolExpr.__hash__`` with a generated
    # recursive one.
    __hash__ = BoolExpr.__hash__

    def _structural_hash(self) -> int:
        return hash(("Const", self.value))

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Var(BoolExpr):
    """A propositional variable, identified by name."""

    name: str

    __hash__ = BoolExpr.__hash__

    def _structural_hash(self) -> int:
        return hash(("Var", self.name))

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment[self.name])

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(BoolExpr):
    operand: BoolExpr

    __hash__ = BoolExpr.__hash__

    def _structural_hash(self) -> int:
        return hash(("Not", self.operand))

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def __str__(self) -> str:
        return f"~({self.operand})"


class _NaryExpr(BoolExpr):
    """Base for And/Or with any number of operands (at least one)."""

    operands: Tuple[BoolExpr, ...]

    def __init__(self, *operands: BoolExpr) -> None:
        flattened = []
        for operand in operands:
            if isinstance(operand, type(self)):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        if not flattened:
            raise ValueError("And/Or need at least one operand")
        object.__setattr__(self, "operands", tuple(flattened))

    def variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result = result | operand.variables()
        return result

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands == other.operands

    __hash__ = BoolExpr.__hash__

    def _structural_hash(self) -> int:
        return hash((type(self).__name__, self.operands))


class And(_NaryExpr):
    """Conjunction of one or more operands."""

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(operand.evaluate(assignment) for operand in self.operands)

    def __str__(self) -> str:
        return "(" + " & ".join(str(op) for op in self.operands) + ")"


class Or(_NaryExpr):
    """Disjunction of one or more operands."""

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(operand.evaluate(assignment) for operand in self.operands)

    def __str__(self) -> str:
        return "(" + " | ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Implies(BoolExpr):
    antecedent: BoolExpr
    consequent: BoolExpr

    __hash__ = BoolExpr.__hash__

    def _structural_hash(self) -> int:
        return hash(("Implies", self.antecedent, self.consequent))

    def variables(self) -> FrozenSet[str]:
        return self.antecedent.variables() | self.consequent.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return ((not self.antecedent.evaluate(assignment))
                or self.consequent.evaluate(assignment))

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True)
class Iff(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    __hash__ = BoolExpr.__hash__

    def _structural_hash(self) -> int:
        return hash(("Iff", self.left, self.right))

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


def conjoin(expressions: Iterable[BoolExpr]) -> BoolExpr:
    """Conjunction of an iterable of expressions (TRUE when empty)."""
    expressions = list(expressions)
    if not expressions:
        return TRUE
    if len(expressions) == 1:
        return expressions[0]
    return And(*expressions)


def disjoin(expressions: Iterable[BoolExpr]) -> BoolExpr:
    """Disjunction of an iterable of expressions (FALSE when empty)."""
    expressions = list(expressions)
    if not expressions:
        return FALSE
    if len(expressions) == 1:
        return expressions[0]
    return Or(*expressions)


def all_assignments(variables: Iterable[str]):
    """Yield every assignment over ``variables`` (used by brute-force checks)."""
    names = sorted(set(variables))
    total = 1 << len(names)
    for bits in range(total):
        yield {name: bool((bits >> index) & 1)
               for index, name in enumerate(names)}


def is_tautology_brute_force(expression: BoolExpr) -> bool:
    """Brute-force tautology check (exponential; small expressions only)."""
    return all(expression.evaluate(assignment)
               for assignment in all_assignments(expression.variables()))


def is_satisfiable_brute_force(expression: BoolExpr) -> bool:
    """Brute-force satisfiability check (exponential; small expressions only)."""
    return any(expression.evaluate(assignment)
               for assignment in all_assignments(expression.variables()))
