"""repro: an executable reproduction of
"Formal Specification of Networks-on-Chips: Deadlock and Evacuation"
(Verbeek & Schmaltz, DATE 2010).

The package is organised as the paper is:

* :mod:`repro.core` -- the generic GeNoC framework: configurations, the
  three constituent interfaces, the interpreter, the proof obligations
  (C-1)-(C-5) and the three global theorems (correctness, deadlock freedom,
  evacuation).
* :mod:`repro.network` -- the network model substrate (ports, buffers,
  topologies).
* :mod:`repro.hermes` -- the HERMES 2D-mesh instantiation (XY routing,
  wormhole switching, the ``Exy_dep`` dependency graph, the flows proof).
* :mod:`repro.routing`, :mod:`repro.switching` -- libraries of routing
  functions and switching policies (baselines and extensions).
* :mod:`repro.checking` -- the formal-checking substrate (graph algorithms,
  a CDCL SAT solver, explicit-state model checking).
* :mod:`repro.simulation` -- workload generators, simulator and metrics.
* :mod:`repro.ringnoc` -- a second (ring) instantiation.
* :mod:`repro.reporting` -- the Table I analogue.

Quickstart::

    from repro.hermes import build_hermes_instance
    from repro.simulation import uniform_random_traffic, Simulator

    instance = build_hermes_instance(4, 4, buffer_capacity=2)
    workload = uniform_random_traffic(instance, num_messages=32, seed=7)
    result = Simulator(instance).run(workload)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "network",
    "hermes",
    "routing",
    "switching",
    "checking",
    "simulation",
    "ringnoc",
    "reporting",
    "__engine_fingerprint__",
]

_engine_fingerprint_cache = None


def _compute_engine_fingerprint() -> str:
    """A content hash of the engine's own source tree.

    ``repro.__engine_fingerprint__`` keys persisted verdicts (the
    checkpoint journal of :mod:`repro.core.checkpoint`, and eventually the
    content-addressed verdict store): a cached verdict is only valid for
    the exact engine that produced it, so *any* source change invalidates
    it.  The hash covers every ``.py`` file of the installed package in a
    fixed order -- deterministic across processes, machines and import
    order, unlike bytecode hashes or mtimes.
    """
    import hashlib
    import os

    root = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(name for name in dirnames
                             if name != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            relative = os.path.relpath(path, root).replace(os.sep, "/")
            digest.update(relative.encode("utf-8"))
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
    return f"repro-{__version__}-{digest.hexdigest()[:16]}"


def __getattr__(name: str):
    # PEP 562 lazy attribute: computing the fingerprint walks the source
    # tree, so it only happens when something actually asks for it.
    if name == "__engine_fingerprint__":
        global _engine_fingerprint_cache
        if _engine_fingerprint_cache is None:
            _engine_fingerprint_cache = _compute_engine_fingerprint()
        return _engine_fingerprint_cache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
