"""repro: an executable reproduction of
"Formal Specification of Networks-on-Chips: Deadlock and Evacuation"
(Verbeek & Schmaltz, DATE 2010).

The package is organised as the paper is:

* :mod:`repro.core` -- the generic GeNoC framework: configurations, the
  three constituent interfaces, the interpreter, the proof obligations
  (C-1)-(C-5) and the three global theorems (correctness, deadlock freedom,
  evacuation).
* :mod:`repro.network` -- the network model substrate (ports, buffers,
  topologies).
* :mod:`repro.hermes` -- the HERMES 2D-mesh instantiation (XY routing,
  wormhole switching, the ``Exy_dep`` dependency graph, the flows proof).
* :mod:`repro.routing`, :mod:`repro.switching` -- libraries of routing
  functions and switching policies (baselines and extensions).
* :mod:`repro.checking` -- the formal-checking substrate (graph algorithms,
  a CDCL SAT solver, explicit-state model checking).
* :mod:`repro.simulation` -- workload generators, simulator and metrics.
* :mod:`repro.ringnoc` -- a second (ring) instantiation.
* :mod:`repro.reporting` -- the Table I analogue.

Quickstart::

    from repro.hermes import build_hermes_instance
    from repro.simulation import uniform_random_traffic, Simulator

    instance = build_hermes_instance(4, 4, buffer_capacity=2)
    workload = uniform_random_traffic(instance, num_messages=32, seed=7)
    result = Simulator(instance).run(workload)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "network",
    "hermes",
    "routing",
    "switching",
    "checking",
    "simulation",
    "ringnoc",
    "reporting",
]
