"""A second GeNoC instantiation: ring NoCs.

The GeNoC methodology is generic; the paper's predecessors instantiated it
on the Spidergon ring-based topology.  This package provides a ring-based
instantiation to demonstrate the same genericity with the machinery of this
library:

* :func:`build_chain_ring_instance` -- a bidirectional ring routed as a
  chain (the wrap-around link is never used).  Its dependency graph is
  acyclic, all five obligations are dischargeable and the instance is
  deadlock-free: a second *positive* instantiation.
* :func:`build_clockwise_ring_instance` -- a ring routed strictly clockwise
  through the wrap-around link.  Its dependency graph is one big cycle, so
  (C-3) fails, the sufficiency construction of Theorem 1 produces a concrete
  deadlock configuration, and suitable workloads deadlock in simulation: the
  *negative* instantiation used by the Theorem 1 benchmark.
"""

from repro.ringnoc.instantiation import (
    build_chain_ring_instance,
    build_clockwise_ring_instance,
    ChainRingDependencySpec,
    ring_witness_destination,
)

__all__ = [
    "build_chain_ring_instance",
    "build_clockwise_ring_instance",
    "ChainRingDependencySpec",
    "ring_witness_destination",
]
