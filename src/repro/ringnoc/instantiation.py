"""Ring instantiations of GeNoC (see package docstring)."""

from __future__ import annotations

from typing import Optional, Set

from repro.core.dependency import DependencyGraphSpec
from repro.core.instance import NoCInstance
from repro.core.measure import flit_hop_measure
from repro.core.spec import (
    ScenarioSpec,
    fault_suffix,
    register_builder,
    resolve_measure,
)
from repro.hermes.injection import Iid
from repro.network.port import Direction, Port, PortName, trans
from repro.network.ring import Ring
from repro.routing.ring import ChainRingRouting, ClockwiseRingRouting
from repro.switching.wormhole import WormholeSwitching


class ChainRingDependencySpec(DependencyGraphSpec):
    """The declared dependency graph of the chain-routed ring.

    * a local in-port depends on the East out-port, the West out-port and
      the local out-port of its node (whichever exist);
    * a West in-port (traffic moving East) depends on the East out-port and
      the local out-port;
    * an East in-port (traffic moving West) depends on the West out-port and
      the local out-port;
    * cardinal out-ports depend on the in-port they feed, **except** the
      wrap-around links (East out-port of the last node, West out-port of
      node 0), which chain routing never uses and which are therefore not
      dependencies;
    * local out-ports are sinks.
    """

    def __init__(self, ring: Ring) -> None:
        self._ring = ring

    @property
    def topology(self) -> Ring:
        return self._ring

    def edges_from(self, port: Port) -> Set[Port]:
        ring = self._ring
        local_out = trans(port, PortName.LOCAL, Direction.OUT)
        if port.direction is Direction.IN:
            result: Set[Port] = {local_out}
            if port.name in (PortName.LOCAL, PortName.WEST):
                east_out = trans(port, PortName.EAST, Direction.OUT)
                if ring.has_port(east_out) and port.x < ring.size - 1:
                    result.add(east_out)
            if port.name in (PortName.LOCAL, PortName.EAST):
                west_out = trans(port, PortName.WEST, Direction.OUT)
                if ring.has_port(west_out) and port.x > 0:
                    result.add(west_out)
            return result
        if port.name is PortName.LOCAL:
            return set()
        # Cardinal out-port: depends on the in-port it feeds, unless it is a
        # wrap-around link (never used by chain routing).
        if port.name is PortName.EAST and port.x == ring.size - 1:
            return set()
        if port.name is PortName.WEST and port.x == 0:
            return set()
        target = ring.link_target(port)
        return {target} if target is not None else set()


class RingWitness:
    """The (C-2) witness function for a ring's dependency edges.

    Mirrors the HERMES ``find_dest``: the nearest destination reachable
    through the target port -- the local out-port of the target's own node
    for in-ports, and of the fed neighbour (with ring wrap-around) for
    out-ports.  A picklable callable (not a closure) so ring instances can
    be shipped to portfolio worker processes.
    """

    def __init__(self, ring: Ring) -> None:
        self._ring = ring

    def __call__(self, edge_source: Port, edge_target: Port) -> Port:
        if edge_target.direction is Direction.IN:
            return trans(edge_target, PortName.LOCAL, Direction.OUT)
        if edge_target.name is PortName.LOCAL:
            return edge_target
        offset = 1 if edge_target.name is PortName.EAST else -1
        node = (edge_target.x + offset) % self._ring.size
        return Port(node, 0, PortName.LOCAL, Direction.OUT)


def ring_witness_destination(ring: Ring):
    """Build the (C-2) witness function for a ring (see :class:`RingWitness`)."""
    return RingWitness(ring)


def build_chain_ring_instance(size: int,
                              buffer_capacity: int = 2,
                              measure=None) -> NoCInstance:
    """The deadlock-free ring instantiation (chain routing, no wrap link)."""
    ring = Ring(size, bidirectional=True)
    routing = ChainRingRouting(ring)
    return NoCInstance(
        name=f"Ring-chain-{size}",
        topology=ring,
        injection=Iid(),
        routing=routing,
        switching=WormholeSwitching(),
        dependency_spec=ChainRingDependencySpec(ring),
        witness_destination=ring_witness_destination(ring),
        measure=measure if measure is not None else flit_hop_measure,
        default_capacity=buffer_capacity,
    )


def build_clockwise_ring_instance(size: int,
                                  buffer_capacity: int = 1,
                                  measure=None) -> NoCInstance:
    """The deadlock-prone ring instantiation (clockwise routing, wrap link).

    No dependency spec is attached: obligation (C-3) is checked on the
    routing-induced graph, where the cycle through the wrap-around link is
    found.
    """
    ring = Ring(size, bidirectional=True)
    routing = ClockwiseRingRouting(ring)
    return NoCInstance(
        name=f"Ring-clockwise-{size}",
        topology=ring,
        injection=Iid(),
        routing=routing,
        switching=WormholeSwitching(),
        dependency_spec=None,
        witness_destination=None,
        measure=measure if measure is not None else flit_hop_measure,
        default_capacity=buffer_capacity,
    )


# ---------------------------------------------------------------------------
# The "ring" scenario kind (declarative spec layer)
# ---------------------------------------------------------------------------

RING_ROUTING_TOKENS = ("chain", "clockwise")


def build_ring_from_spec(spec: ScenarioSpec) -> NoCInstance:
    """:class:`InstanceBuilder` of the ``ring`` kind.

    ``faults = 0`` is the historical healthy construction path; ``faults
    > 0`` samples the deterministic fault set (links only: a ring with a
    dead router stays a chain, but the witness machinery below assumes the
    full node set, so router kills are excluded) and reroutes via the
    fault-aware shortest-surviving-path relation.  No dependency spec or
    witness is attached -- obligation (C-3) is decided on the
    routing-induced graph, like the clockwise variant.
    """
    size = spec.dims[0]
    measure = resolve_measure(spec.measure)
    if spec.faults:
        from repro.network.faults import FaultyRing, sample_fault_spec
        from repro.routing.fault_aware import fault_aware_ring_routing

        fault_spec = sample_fault_spec(Ring(size, bidirectional=True),
                                       spec.faults, spec.fault_seed,
                                       allow_routers=False)
        ring = FaultyRing(size, fault_spec)
        routing = fault_aware_ring_routing(spec.routing, ring)
        return NoCInstance(
            name=f"Ring-{spec.routing}-{ring}",
            topology=ring,
            injection=Iid(),
            routing=routing,
            switching=WormholeSwitching(),
            dependency_spec=None,
            witness_destination=None,
            measure=measure if measure is not None else flit_hop_measure,
            default_capacity=spec.buffers,
        )
    if spec.routing == "chain":
        return build_chain_ring_instance(size, buffer_capacity=spec.buffers,
                                         measure=measure)
    return build_clockwise_ring_instance(size, buffer_capacity=spec.buffers,
                                         measure=measure)


def _ring_scenario_name(spec: ScenarioSpec) -> str:
    return f"{spec.group_key()}/{spec.routing}{fault_suffix(spec)}"


register_builder(
    "ring", build_ring_from_spec,
    description="bidirectional ring (deadlock-free chain vs. deadlock-prone "
                "clockwise routing)",
    dim_count=1,
    routings=RING_ROUTING_TOKENS,
    default_routing="chain",
    switchings=("wormhole",),
    default_switching="wormhole",
    supports_faults=True,
    namer=_ring_scenario_name,
)
