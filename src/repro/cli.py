"""Command-line interface to the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro verify --width 4 --height 4
    python -m repro simulate --width 4 --height 4 --messages 32 --flits 4
    python -m repro table1 --width 4 --height 4
    python -m repro depgraph --width 2 --height 2 --dot fig3.dot
    python -m repro deadlock --design clockwise-ring --size 4
    python -m repro scenarios list
    python -m repro scenarios expand "mesh:2..4x2..4, routing=[xy,yx]"
    python -m repro batch --mesh-sizes 3 4 --ring-sizes 4 --jobs 4
    python -m repro batch --matrix "vc-mesh:3x3, vcs=1..4" --shard 0/2
    python -m repro batch --matrix "mesh:3x3, routing=[west_first], faults=0..2, seed=0..4"
    python -m repro fuzz --seeds 200 --max-size 3x3
    python -m repro bench --profile extended-8 --jobs 1 4 --json bench.json
    python -m repro batch --matrix "mesh:3x3, routing=[xy]" --trace run.jsonl
    python -m repro trace summary run.jsonl --json
    python -m repro batch --matrix "mesh:4x4, routing=[xy,yx]" --store .repro-store
    python -m repro store stats .repro-store --json -
    python -m repro serve --store .repro-store --socket /tmp/repro.sock --work-dir serve-state

Each sub-command drives one part of the library's public API; the examples in
``examples/`` show the same flows as scripts.  The ``batch`` command is the
portfolio driver (:mod:`repro.core.portfolio`): it sweeps topology x routing
x switching scenarios through one incremental CDCL session per topology.
For programmatic incremental use, see
:class:`repro.core.deadlock.DeadlockQuerySession` (encode a dependency-edge
universe once, then re-query under assumptions) and
:class:`repro.checking.incremental.AcyclicityOracle`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.pipeline import verify_instance
from repro.hermes import build_hermes_instance
from repro.reporting import build_effort_table
from repro.simulation import Simulator, uniform_random_traffic
from repro.simulation.workloads import standard_suite


def _add_mesh_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=4,
                        help="mesh width (default 4)")
    parser.add_argument("--height", type=int, default=4,
                        help="mesh height (default 4)")
    parser.add_argument("--buffers", type=int, default=2,
                        help="1-flit buffers per port (default 2)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Formal Specification of Networks-on-"
                    "Chips: Deadlock and Evacuation' (DATE 2010)")
    commands = parser.add_subparsers(dest="command", required=True)

    verify = commands.add_parser(
        "verify", help="discharge (C-1)..(C-5) and conclude the theorems")
    _add_mesh_arguments(verify)

    simulate = commands.add_parser(
        "simulate", help="run GeNoC2D on a random workload")
    _add_mesh_arguments(simulate)
    simulate.add_argument("--messages", type=int, default=32)
    simulate.add_argument("--flits", type=int, default=4)
    simulate.add_argument("--seed", type=int, default=2010)

    table1 = commands.add_parser(
        "table1", help="print the Table I (verification effort) analogue")
    _add_mesh_arguments(table1)

    depgraph = commands.add_parser(
        "depgraph", help="print Fig. 3 statistics / export the graph as DOT "
                         "(VC-coloured channel graph with --vcs)")
    _add_mesh_arguments(depgraph)
    depgraph.add_argument("--dot", type=str, default=None,
                          help="write a Graphviz DOT file to this path")
    depgraph.add_argument("--vcs", type=int, default=0,
                          help="virtual channels: export the (port, vc) "
                               "channel graph of the escape-routing relation "
                               "instead of Exy_dep (default: 0 = port graph)")

    deadlock = commands.add_parser(
        "deadlock",
        help="demonstrate Theorem 1 on a deadlock-prone design, or its "
             "virtual-channel repair with --vcs (incl. incremental "
             "escape analysis)")
    deadlock.add_argument("--design",
                          choices=["clockwise-ring", "zigzag-mesh",
                                   "adaptive-mesh"],
                          default=None,
                          help="defaults to clockwise-ring, or adaptive-mesh "
                               "when --vcs is given")
    deadlock.add_argument("--size", type=int, default=None,
                          help="design size (default: 4 for rings, 3 for "
                               "meshes)")
    deadlock.add_argument("--vcs", type=int, default=None,
                          help="virtual channels per port: with >= 2 the "
                               "deadlock-prone design is re-verified at VC "
                               "granularity with an escape class (default: "
                               "1, or 2 for --design adaptive-mesh)")
    deadlock.add_argument("--escape", choices=["xy", "dateline"],
                          default=None,
                          help="escape class style: xy (mesh) or dateline "
                               "(ring/torus); defaults to the design's "
                               "natural style")

    scenarios = commands.add_parser(
        "scenarios",
        help="the declarative scenario-spec layer: list registered builder "
             "kinds, expand scenario matrices")
    scenarios_commands = scenarios.add_subparsers(dest="scenarios_command",
                                                  required=True)
    scenarios_commands.add_parser(
        "list", help="list the registered scenario kinds and their "
                     "parameter spaces")
    expand = scenarios_commands.add_parser(
        "expand", help="expand a scenario matrix into its ordered spec list")
    expand.add_argument("matrix", nargs="+", metavar="EXPR",
                        help="matrix expression(s), e.g. "
                             "'mesh:2..4x2..4, routing=[xy,yx]; "
                             "vc-mesh:3x3, vcs=1..4'")
    expand.add_argument("--json", action="store_true",
                        help="print the expanded spec dicts as a JSON array")

    batch = commands.add_parser(
        "batch",
        help="portfolio driver: sweep topology x routing x switching "
             "scenarios through shared incremental CDCL sessions")
    batch.add_argument("--matrix", type=str, nargs="+", default=None,
                       metavar="EXPR",
                       help="build the sweep from a scenario matrix "
                            "(see 'repro scenarios expand'); replaces the "
                            "--mesh-sizes/--ring-sizes/--vcs/--buffers "
                            "construction -- set buffers per term via "
                            "'buffers=N' in the matrix")
    batch.add_argument("--shard", type=str, default=None, metavar="I/N",
                       help="run only the I-th of N group-stable partitions "
                            "of the sweep (e.g. 0/2); shards never split a "
                            "session group and their union is the unsharded "
                            "run")
    batch.add_argument("--shard-balance", type=str, default="hash",
                       choices=["hash", "weighted"],
                       help="group-to-shard assignment: 'hash' (CRC-32, "
                            "cost-oblivious) or 'weighted' (LPT over a "
                            "deterministic port-count cost model, evening "
                            "out shard wall times; default: hash)")
    batch.add_argument("--mesh-sizes", type=int, nargs="*", default=[3, 4],
                       help="square mesh sizes to sweep (default: 3 4)")
    batch.add_argument("--ring-sizes", type=int, nargs="*", default=[4],
                       help="ring sizes to sweep (default: 4)")
    batch.add_argument("--buffers", type=int, default=None,
                       help="1-flit buffers per port (default 2); "
                            "incompatible with --matrix, where each term "
                            "sets its own 'buffers=N'")
    batch.add_argument("--vcs", type=int, nargs="*", default=[],
                       help="also sweep virtual-channel escape scenarios at "
                            "these VC counts (e.g. --vcs 1 2 4)")
    batch.add_argument("--vc-mesh-sizes", type=int, nargs="*", default=[3],
                       help="mesh sizes for the VC escape scenarios "
                            "(default: 3)")
    batch.add_argument("--torus-sizes", type=int, nargs="*", default=[],
                       help="torus sizes for the VC escape scenarios "
                            "(default: none)")
    batch.add_argument("--cross-check", action="store_true",
                       help="re-derive every verdict with the explicit "
                            "check and assert agreement")
    batch.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes; scenario groups are "
                            "scheduled group-affine across them and the "
                            "verdicts are identical to --jobs 1 "
                            "(0 = one per core; default 1)")
    batch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-group solve budget; a group exceeding it "
                            "yields deterministic 'timeout' verdicts for "
                            "its unfinished scenarios instead of hanging "
                            "the sweep")
    batch.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="whole-run wall-clock budget; groups not "
                            "finished when it expires yield 'timeout' "
                            "verdicts")
    batch.add_argument("--max-retries", type=int, default=2, metavar="N",
                       help="worker-crash retries before the run degrades "
                            "to in-process serial execution (default: 2)")
    batch.add_argument("--checkpoint", type=str, default=None,
                       metavar="PATH",
                       help="append-only JSONL journal of completed "
                            "groups; survives SIGKILL and feeds --resume")
    batch.add_argument("--resume", action="store_true",
                       help="replay completed groups from the --checkpoint "
                            "journal instead of re-solving them (verdicts "
                            "identical to a fresh run)")
    batch.add_argument("--store", type=str, default=None, metavar="DIR",
                       help="persistent content-addressed verdict store: "
                            "groups already proved there (same engine "
                            "fingerprint, run parameters, spec hashes) are "
                            "replayed with zero solver work; freshly solved "
                            "groups are durably recorded for later runs")
    batch.add_argument("--store-readonly", action="store_true",
                       help="consult the --store but never write to it "
                            "(e.g. a shared cache this runner must not "
                            "mutate)")
    batch.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="write the machine-readable report "
                            "(scenarios, verdicts, solver stats) to PATH")
    batch.add_argument("--trace", type=str, default=None, metavar="PATH",
                       help="record a structured JSONL event trace of the "
                            "run to PATH (solver/oracle/portfolio events; "
                            "analyse with 'repro trace'); requires "
                            "--jobs 1")

    fuzz = commands.add_parser(
        "fuzz",
        help="fuzz randomized topologies (faults, turn models, VC escapes) "
             "and cross-validate the CDCL, explicit, brute-force and "
             "simulation verdicts against each other")
    fuzz.add_argument("--seeds", type=int, default=200, metavar="N",
                      help="number of seeded random instances (default 200)")
    fuzz.add_argument("--max-size", type=str, default="3x3", metavar="WxH",
                      help="largest mesh/torus dimensions to draw "
                           "(default 3x3)")
    fuzz.add_argument("--campaign-seed", type=int, default=2010,
                      help="campaign seed; instance i of a seed is always "
                           "the same spec (default 2010)")
    fuzz.add_argument("--no-brute", action="store_true",
                      help="skip the brute-force self-reachability decider")
    fuzz.add_argument("--no-sim", action="store_true",
                      help="skip the GeNoC simulation cross-validation")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress per-instance progress lines")
    fuzz.add_argument("--json", type=str, default=None, metavar="PATH",
                      help="write the machine-readable campaign report to "
                           "PATH")

    bench = commands.add_parser(
        "bench",
        help="run the perf trajectory (solver microbench + portfolio "
             "serial/parallel) and export a schema-versioned report")
    bench.add_argument("--profile", default="smoke",
                       choices=["tiny", "smoke", "extended-8", "extended"],
                       help="portfolio size (default: smoke; extended "
                            "scales to 8x8/16x16 meshes)")
    bench.add_argument("--jobs", type=int, nargs="+", default=[1],
                       metavar="N",
                       help="job counts to run the portfolio at "
                            "(default: 1; e.g. --jobs 1 4)")
    bench.add_argument("--repeat", type=int, default=3,
                       help="microbench repetitions, best-of (default 3)")
    bench.add_argument("--reference", type=str, default=None, metavar="PATH",
                       help="previous BENCH_*.json to compute speedups "
                            "against")
    bench.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="write the BENCH report to PATH (default: "
                            "BENCH_<date>.json in the current directory)")
    bench.add_argument("--compare", type=str, nargs=2, default=None,
                       metavar=("OLD.json", "NEW.json"),
                       help="compare two committed BENCH reports instead of "
                            "running anything: print the per-benchmark "
                            "speedup table and exit non-zero on regressions "
                            "beyond --threshold")
    bench.add_argument("--threshold", type=float, default=0.95,
                       help="minimum acceptable speedup in --compare mode "
                            "(default 0.95: new may be at most 5%% slower)")
    bench.add_argument("--trace-dir", type=str, default=None, metavar="DIR",
                       help="also record a JSONL event trace per serial "
                            "portfolio lane into DIR (created if missing); "
                            "parallel lanes are never traced")
    bench.add_argument("--store", type=str, default=None, metavar="DIR",
                       help="attach a verdict store to the portfolio lanes; "
                            "warm lanes then measure the cache-replay path "
                            "instead of solver work, so leave this unset "
                            "when producing reference BENCH reports")

    store = commands.add_parser(
        "store",
        help="inspect a persistent verdict store directory "
             "(see 'repro batch --store' / 'repro serve')")
    store_commands = store.add_subparsers(dest="store_command",
                                          required=True)
    store_stats = store_commands.add_parser(
        "stats", help="offline inventory: record/damage/quarantine counts "
                      "per engine fingerprint (checksum-verifies every "
                      "record; read-only)")
    store_stats.add_argument("store_dir", metavar="DIR",
                             help="the store directory to scan")
    store_stats.add_argument("--json", type=str, default=None,
                             metavar="PATH",
                             help="write the stats JSON to PATH "
                                  "('-' for stdout)")

    serve = commands.add_parser(
        "serve",
        help="long-lived verification service: a job queue over a shared "
             "verdict store, accepting batch requests from concurrent "
             "submitters via a line-JSON Unix socket")
    serve.add_argument("--store", type=str, required=True, metavar="DIR",
                       help="the verdict store every job reads and warms")
    serve.add_argument("--socket", type=str, required=True, metavar="PATH",
                       help="Unix socket path to listen on")
    serve.add_argument("--work-dir", type=str, required=True, metavar="DIR",
                       help="serve journal + per-job checkpoints/reports; "
                            "restart with the same directory to resume "
                            "unfinished jobs")
    serve.add_argument("--max-retries", type=int, default=2, metavar="N",
                       help="crash retries per job before it is marked "
                            "failed (default: 2)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job deadline (a request's own "
                            "'deadline' field overrides); wedged workers "
                            "are reaped past 1.25x this budget")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       metavar="SECONDS",
                       help="on SIGTERM/shutdown: seconds the in-flight "
                            "job may use to finish before it is "
                            "interrupted and left checkpointed "
                            "(default: 5)")

    trace = commands.add_parser(
        "trace",
        help="offline analysis of a recorded JSONL event trace "
             "(see 'repro batch --trace' / 'repro bench --trace-dir')")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)
    for name, help_text in [
            ("summary", "whole-run breakdown: event counts, solver work "
                        "shares, per-group reconciliation"),
            ("lbd", "learned-clause LBD histogram over time"),
            ("restarts", "restart cadence table"),
            ("hot", "top-K scenarios by solver work")]:
        sub = trace_commands.add_parser(name, help=help_text)
        sub.add_argument("trace_file", metavar="TRACE",
                         help="JSONL trace file to analyse")
        sub.add_argument("--json", action="store_true",
                         help="print the analysis as JSON instead of a "
                              "table")
        if name == "lbd":
            sub.add_argument("--buckets", type=int, default=6,
                             help="LBD buckets before folding into the "
                                  "'>=' tail (default 6)")
        if name == "hot":
            sub.add_argument("--top", type=int, default=10,
                             help="number of scenarios to list (default 10)")

    return parser


# ---------------------------------------------------------------------------
# Sub-command implementations
# ---------------------------------------------------------------------------

def _cmd_verify(args: argparse.Namespace) -> int:
    instance = build_hermes_instance(args.width, args.height,
                                     buffer_capacity=args.buffers)
    workloads = [list(spec.travels)
                 for spec in standard_suite(instance, num_flits=3)[:3]]
    report = verify_instance(instance, workloads)
    print(report.summary())
    return 0 if report.verified else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    instance = build_hermes_instance(args.width, args.height,
                                     buffer_capacity=args.buffers)
    workload = uniform_random_traffic(instance, num_messages=args.messages,
                                      num_flits=args.flits, seed=args.seed)
    result = Simulator(instance).run(workload)
    print(result.summary())
    for key, value in result.metrics.as_dict().items():
        print(f"  {key}: {value}")
    print(f"  CorrThm: {'holds' if result.correctness_ok else 'VIOLATED'}")
    print(f"  EvacThm: {'holds' if result.evacuation_ok else 'VIOLATED'}")
    return 0 if result.genoc_result.evacuated else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    table = build_effort_table(args.width, args.height,
                               buffer_capacity=args.buffers)
    print(table.formatted())
    return 0


def _cmd_depgraph(args: argparse.Namespace) -> int:
    from repro.core import check_acyclicity, graph_statistics
    from repro.network.mesh import Mesh2D

    mesh = Mesh2D(args.width, args.height)
    if args.vcs > 0:
        from repro.core.dependency import (
            channel_dependency_graph,
            class_subgraph,
        )
        from repro.routing.escape import mesh_escape_routing

        relation = mesh_escape_routing(mesh, num_vcs=args.vcs)
        graph = channel_dependency_graph(relation)
        escape = class_subgraph(graph, relation.escape_vcs)
        print(f"channel dependency graph of a {args.width}x{args.height} "
              f"mesh with {args.vcs} VCs ({relation.name()}):")
        for key, value in graph_statistics(graph).items():
            print(f"  {key}: {value}")
        report = check_acyclicity(graph, methods=("dfs",))
        escape_report = check_acyclicity(escape,
                                         methods=("dfs", "scc", "toposort"))
        print(f"  full graph acyclic  : {report.acyclic}")
        print(f"  escape class acyclic: {escape_report.acyclic} "
              f"({escape.edge_count} escape edges)")
        if args.dot:
            from repro.reporting.dot import write_dot

            write_dot(graph, args.dot,
                      title=f"channel_dep {args.width}x{args.height} "
                            f"{args.vcs}vc",
                      escape_vcs=relation.escape_vcs)
            print(f"  DOT written to {args.dot}")
        return 0 if escape_report.acyclic else 1

    from repro.hermes import build_exy_graph

    graph = build_exy_graph(mesh)
    print(f"Exy_dep of a {args.width}x{args.height} mesh:")
    for key, value in graph_statistics(graph).items():
        print(f"  {key}: {value}")
    report = check_acyclicity(graph, methods=("dfs", "scc", "toposort"))
    print(f"  acyclic: {report.acyclic}")
    if args.dot:
        from repro.reporting.dot import write_dot

        write_dot(graph, args.dot,
                  title=f"Exy_dep {args.width}x{args.height}")
        print(f"  DOT written to {args.dot}")
    return 0 if report.acyclic else 1


def _build_vc_relation(design: str, size: int, escape: Optional[str],
                       num_vcs: int):
    """The escape-channel relation demonstrating a design's VC repair."""
    from repro.routing.escape import (
        EscapeChannelRouting,
        mesh_escape_routing,
        ring_escape_routing,
    )

    if design == "clockwise-ring":
        if escape == "xy":
            raise SystemExit(
                "the ring designs use the dateline escape style; "
                "drop --escape or pass --escape dateline")
        from repro.network.ring import Ring
        from repro.routing.ring import ClockwiseRingRouting

        # The dateline pair repairs the *clockwise* routing itself -- the
        # same function the non-VC demo exhibits the cycle for.
        ring = Ring(size, bidirectional=True)
        return ring_escape_routing(ring, num_vcs=num_vcs,
                                   base_routing=ClockwiseRingRouting(ring))
    if escape == "dateline":
        raise SystemExit(
            "the mesh designs use the xy escape style; "
            "drop --escape or pass --escape xy")
    from repro.network.mesh import Mesh2D
    from repro.network.vc import VCTopology

    mesh = Mesh2D(size, size)
    if design == "zigzag-mesh":
        from repro.routing.adaptive import ZigZagRouting
        from repro.routing.xy import XYRouting

        return EscapeChannelRouting(
            VCTopology(mesh, num_vcs),
            escape_routing=XYRouting(mesh),
            adaptive_routing=ZigZagRouting(mesh),
            escape_vc_count=1,
            style="xy")
    return mesh_escape_routing(mesh, num_vcs=num_vcs)


def _cmd_deadlock_vc(design: str, args: argparse.Namespace,
                     num_vcs: int) -> int:
    """The VC repair demo: deadlock-prone at 1 VC, proved free with escape."""
    from repro.core.theorems import (
        check_deadlock_freedom_vc,
        check_deadlock_freedom_vc_incremental,
    )

    size = args.size
    if size is None:
        size = 3 if design.endswith("-mesh") else 4
    baseline = _build_vc_relation(design, size, args.escape, num_vcs=1)
    base_thm = check_deadlock_freedom_vc(baseline)
    print(f"single-VC baseline {baseline.name()}: "
          f"{'free' if base_thm.holds else 'DEADLOCK-PRONE'}")
    for counterexample in base_thm.counterexamples[:1]:
        print(f"  {counterexample}")

    relation = _build_vc_relation(design, size, args.escape,
                                  num_vcs=num_vcs)
    print(f"\nVC repair {relation.name()}: escape class "
          f"{list(relation.escape_vcs)}, adaptive class "
          f"{list(relation.adaptive_vcs)}")
    # Enumerate the channel graph and the (V-1) coverage once; both the
    # explicit and the incremental check consume them.
    from repro.core.dependency import channel_dependency_graph
    from repro.core.obligations import check_v1_escape_coverage

    graph = channel_dependency_graph(relation)
    coverage = check_v1_escape_coverage(relation)
    explicit = check_deadlock_freedom_vc(relation, graph=graph,
                                         coverage=coverage)
    incremental = check_deadlock_freedom_vc_incremental(relation,
                                                        graph=graph,
                                                        coverage=coverage)
    if explicit.holds != incremental.holds:
        raise AssertionError(
            f"explicit and incremental VC verdicts disagree: "
            f"{explicit.holds} vs {incremental.holds}")
    for result in (explicit, incremental):
        status = "holds" if result.holds else "VIOLATED"
        print(f"  {result.name}: {status} ({result.checks} checks, "
              f"{result.elapsed_seconds:.3f}s)")
        for counterexample in result.counterexamples[:2]:
            print(f"    {counterexample}")
    if explicit.holds:
        print(f"\n=> the deadlock-prone design is proved deadlock-free "
              f"with {num_vcs} VCs ({len(relation.escape_vcs)} escape), "
              f"by both the explicit checker and the incremental CDCL "
              f"session ({incremental.details['incremental_queries']} "
              f"incremental queries).")
    return 0 if explicit.holds else 1


def _cmd_deadlock(args: argparse.Namespace) -> int:
    from repro.checking.bmc import explore_configuration_space
    from repro.checking.graphs import find_cycle_dfs
    from repro.core import (
        check_c3_routing_induced,
        routing_dependency_graph,
        verify_witness_roundtrip,
    )

    design = args.design or ("adaptive-mesh" if (args.vcs or 1) > 1
                             else "clockwise-ring")
    num_vcs = args.vcs
    if num_vcs is None:
        # The adaptive mesh only makes sense as the VC repair demo, so it
        # defaults to the repaired configuration.
        num_vcs = 2 if design == "adaptive-mesh" else 1
    if num_vcs < 1:
        raise SystemExit("--vcs must be at least 1")
    if num_vcs > 1 or design == "adaptive-mesh":
        return _cmd_deadlock_vc(design, args, num_vcs)
    if args.escape is not None:
        raise SystemExit(
            "--escape only applies to the virtual-channel demo; "
            "add --vcs 2 (or --design adaptive-mesh)")

    size = args.size if args.size is not None else 4
    if design == "clockwise-ring":
        from repro.ringnoc import (
            build_clockwise_ring_instance,
            ring_witness_destination,
        )

        instance = build_clockwise_ring_instance(size)
        witness_fn = ring_witness_destination(instance.topology)
        travels = [instance.make_travel((i, 0), ((i + 2) % size, 0),
                                        num_flits=3) for i in range(size)]
    else:
        from repro.hermes.ports import witness_destination
        from repro.network.mesh import Mesh2D
        from repro.routing.adaptive import ZigZagRouting

        mesh = Mesh2D(size, size)
        instance = build_hermes_instance(size, size,
                                         routing=ZigZagRouting(mesh))

        def witness_fn(source, target):
            return witness_destination(source, target, mesh)

        travels = []

    c3 = check_c3_routing_induced(instance.routing)
    print(f"(C-3) for {instance.routing.name()}: "
          f"{'holds' if c3.holds else 'VIOLATED'}")
    if c3.holds:
        print("design is deadlock-free; nothing to demonstrate")
        return 0
    cycle = find_cycle_dfs(routing_dependency_graph(instance.routing)).cycle
    print("dependency cycle: " + " -> ".join(str(p) for p in cycle))

    # Incremental escape analysis: one solver session, one solve per
    # candidate edge removal.
    from repro.core.deadlock import DeadlockQuerySession

    session = DeadlockQuerySession.for_routing(instance.routing)
    escapes = session.escape_edges()
    if escapes:
        print("escape fixes (single-edge removals restoring freedom):")
        for source, target in escapes:
            print(f"  remove {source} -> {target}")
    else:
        print("no single dependency-edge removal restores deadlock freedom")
    roundtrip = verify_witness_roundtrip(cycle, instance.routing,
                                         instance.switching, witness_fn,
                                         capacity=1)
    print(f"constructed configuration is a deadlock: {roundtrip.is_deadlock}")
    if travels:
        search = explore_configuration_space(instance, travels, capacity=1)
        print(f"state-space search: {search}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.core.spec import expand_matrix, spec_registry
    from repro.reporting.tables import format_table

    if args.scenarios_command == "list":
        rows = []
        for entry in spec_registry().entries():
            dims = "WxH" if entry.dim_count == 2 else "N"
            rows.append([
                entry.kind, dims,
                ", ".join(entry.routings) or "(fixed)",
                ", ".join(entry.switchings) or "(fixed)",
                "1..n" if entry.supports_vcs else "1",
                entry.escape_style or "-",
                entry.description,
            ])
        print(format_table(
            ["kind", "dims", "routings", "switchings", "vcs", "escape",
             "description"], rows))
        return 0

    from repro.core.errors import SpecificationError

    try:
        specs = expand_matrix(args.matrix)
    except SpecificationError as error:
        raise SystemExit(f"invalid scenario matrix: {error}")
    if args.json:
        import json

        print(json.dumps([spec.to_dict() for spec in specs], indent=2))
    else:
        rows = [[index, spec.scenario_name(), spec.group_key(), spec.kind,
                 spec.dims_text(), spec.routing or "-",
                 spec.switching or "-", spec.num_vcs, spec.buffers]
                for index, spec in enumerate(specs)]
        print(format_table(
            ["#", "scenario", "group", "kind", "dims", "routing",
             "switching", "vcs", "buffers"], rows))
        groups = {spec.group_key() for spec in specs}
        print(f"{len(specs)} scenarios in {len(groups)} session groups")
    return 0


def _parse_shard(text: Optional[str]):
    """``"0/2"`` -> ``(0, 2)`` (with friendly CLI errors)."""
    if text is None:
        return None
    import re

    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise SystemExit(f"--shard expects I/N (e.g. 0/2), got {text!r}")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or index >= count:
        raise SystemExit(f"--shard {text!r} out of range: need 0 <= I < N")
    return (index, count)


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.core.portfolio import (
        run_portfolio,
        scenarios_from_specs,
        standard_portfolio,
        vc_escape_portfolio,
    )

    if args.matrix:
        from repro.core.errors import SpecificationError
        from repro.core.spec import expand_matrix

        if args.buffers is not None:
            raise SystemExit(
                "--buffers does not apply to --matrix sweeps; set "
                "'buffers=N' inside the matrix term instead")
        try:
            scenarios = scenarios_from_specs(expand_matrix(args.matrix))
        except SpecificationError as error:
            raise SystemExit(f"invalid scenario matrix: {error}")
    else:
        buffers = 2 if args.buffers is None else args.buffers
        scenarios = standard_portfolio(mesh_sizes=args.mesh_sizes,
                                       ring_sizes=args.ring_sizes,
                                       buffer_capacity=buffers)
        if args.vcs:
            if any(count < 1 for count in args.vcs):
                raise SystemExit("--vcs counts must be at least 1")
            scenarios += vc_escape_portfolio(mesh_sizes=args.vc_mesh_sizes,
                                             torus_sizes=args.torus_sizes,
                                             vc_counts=args.vcs,
                                             buffer_capacity=buffers)
    shard = _parse_shard(args.shard)
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint PATH")
    if args.max_retries < 0:
        raise SystemExit("--max-retries must be >= 0")
    if args.store_readonly and not args.store:
        raise SystemExit("--store-readonly requires --store DIR")
    robustness = dict(group_timeout=args.timeout, run_deadline=args.deadline,
                      max_retries=args.max_retries,
                      checkpoint=args.checkpoint, resume=args.resume,
                      store=args.store, store_readonly=args.store_readonly)
    try:
        if args.trace is not None:
            if args.jobs != 1:
                raise SystemExit(
                    "--trace requires a serial run: use --jobs 1")
            from repro.core.trace import TraceWriter

            with TraceWriter(args.trace, label="repro batch") as trace:
                report = run_portfolio(scenarios,
                                       cross_check=args.cross_check,
                                       jobs=1, shard=shard,
                                       shard_balance=args.shard_balance,
                                       trace=trace, **robustness)
            print(f"trace written to {args.trace} "
                  f"(analyse with 'repro trace summary {args.trace}')")
        else:
            report = run_portfolio(scenarios, cross_check=args.cross_check,
                                   jobs=args.jobs, shard=shard,
                                   shard_balance=args.shard_balance,
                                   **robustness)
    except KeyboardInterrupt:
        return _batch_interrupted(args.checkpoint)
    print(report.formatted())
    print(report.summary())
    if shard is not None:
        print(f"  shard {shard[0]}/{shard[1]}: {len(report.verdicts)} of "
              f"{len(scenarios)} scenarios (group-stable partition)")
    if report.jobs > 1:
        print(f"  scheduled across {report.jobs} workers (group-affine); "
              f"verdicts identical to --jobs 1")
    for group, stats in report.session_stats.items():
        print(f"  session {group}: {stats['solves']} incremental solves, "
              f"{stats['learned']} clauses learned, "
              f"{stats['conflicts']} conflicts")
    cache = report.cache_stats
    print(f"  construction cache: {cache.get('hits', 0)} hits, "
          f"{cache.get('misses', 0)} misses")
    recovery = report.recovery
    if recovery.get("crash_retries"):
        print(f"  recovered from {recovery['crash_retries']} worker "
              f"crash(es)"
              + (" -- degraded to serial execution"
                 if recovery.get("degraded_serial") else ""))
    if recovery.get("replayed_groups"):
        replayed = recovery["replayed_groups"]
        print(f"  resumed {len(replayed)} group(s) from checkpoint: "
              f"{', '.join(replayed)}")
    store_stats = report.store_stats
    if store_stats:
        line = (f"  verdict store [{store_stats.get('mode')}]: "
                f"{store_stats.get('hits', 0)} hits, "
                f"{store_stats.get('misses', 0)} misses, "
                f"{store_stats.get('writes', 0)} writes")
        if store_stats.get("quarantined"):
            line += (f", {store_stats['quarantined']} corrupt record(s) "
                     f"quarantined + recomputed")
        if store_stats.get("evicted"):
            line += f", {store_stats['evicted']} stale record(s) evicted"
        print(line)
        if store_stats.get("degraded_reason"):
            print(f"    (degraded: {store_stats['degraded_reason']})")
        replayed_store = store_stats.get("replayed_groups") or []
        if replayed_store:
            print(f"    replayed {len(replayed_store)} group(s) from the "
                  f"store: {', '.join(replayed_store)}")
    if args.json:
        report.write_json(args.json)
        print(f"JSON report written to {args.json}")
    return 1 if report.failure_count else 0


def _batch_interrupted(checkpoint: "str | None") -> int:
    """SIGINT epilogue for ``repro batch``: salvage the journal, exit 130.

    ``run_portfolio`` closes (and fsyncs) the journal in its ``finally``
    block before the KeyboardInterrupt propagates here, so every group
    that completed before the interrupt is on disk and replayable.
    """
    print("\ninterrupted", flush=True)
    if checkpoint:
        from repro.core.checkpoint import CheckpointJournal
        from repro.core.portfolio import PortfolioReport, ScenarioVerdict

        try:
            records = CheckpointJournal(checkpoint).load_records()
        except OSError as error:
            print(f"checkpoint journal unreadable: {error}")
            return 130
        latest = {}
        for record in records:
            latest[record.get("group")] = record
        verdicts = []
        for record in latest.values():
            for entry in record.get("verdicts", []):
                verdicts.append(ScenarioVerdict.from_json_dict(
                    entry, index=int(entry["index"])))
        if verdicts:
            verdicts.sort(key=lambda verdict: verdict.index)
            partial = PortfolioReport(verdicts=verdicts, elapsed_seconds=0.0)
            print(f"partial results ({len(latest)} completed group(s) "
                  f"journalled in {checkpoint}):")
            print(partial.formatted())
        else:
            print(f"no completed groups journalled in {checkpoint} yet")
        print(f"resume with: repro batch ... "
              f"--checkpoint {checkpoint} --resume")
    return 130


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.core.fuzz import run_fuzz_campaign

    try:
        width_text, height_text = args.max_size.lower().split("x")
        max_size = (int(width_text), int(height_text))
    except ValueError:
        raise SystemExit(f"--max-size must look like '3x3', "
                         f"got {args.max_size!r}")
    progress = None if args.quiet else (lambda line: print(line))
    report = run_fuzz_campaign(count=args.seeds, max_size=max_size,
                               campaign_seed=args.campaign_seed,
                               brute_force=not args.no_brute,
                               simulate=not args.no_sim,
                               progress=progress)
    print(report.format_summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json_dict(), handle, indent=2, sort_keys=True)
        print(f"JSON report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.core.bench import (
        bench_report_path,
        compare_bench_reports,
        format_bench_comparison,
        format_bench_summary,
        run_benchmark,
        write_bench_report,
    )

    if args.compare:
        old_path, new_path = args.compare
        with open(old_path, encoding="utf-8") as handle:
            old_report = json.load(handle)
        with open(new_path, encoding="utf-8") as handle:
            new_report = json.load(handle)
        rows, regressions = compare_bench_reports(old_report, new_report,
                                                  threshold=args.threshold)
        if not rows:
            print("the two reports share no comparable benchmarks")
            return 1
        print(format_bench_comparison(rows, regressions,
                                      threshold=args.threshold))
        return 1 if regressions else 0

    reference = None
    if args.reference:
        with open(args.reference, encoding="utf-8") as handle:
            reference = json.load(handle)
    report = run_benchmark(profile=args.profile, jobs_list=args.jobs,
                           repeat=args.repeat, reference=reference,
                           trace_dir=args.trace_dir,
                           store_dir=args.store)
    path = args.json or bench_report_path()
    write_bench_report(report, path)
    print(format_bench_summary(report))
    print(f"bench report written to {path}")
    if args.trace_dir:
        print(f"serial-lane traces written to {args.trace_dir}/")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.core import trace_analysis
    from repro.core.trace import load_trace, validate_trace

    try:
        events = load_trace(args.trace_file)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read trace {args.trace_file!r}: {error}")
    errors = validate_trace(events)
    if errors:
        for error in errors[:10]:
            print(f"invalid trace: {error}", file=sys.stderr)
        raise SystemExit(f"trace {args.trace_file!r} failed schema "
                         f"validation ({len(errors)} violation(s))")

    if args.trace_command == "summary":
        analysis = trace_analysis.analyze_summary(events)
        formatted = trace_analysis.format_summary(analysis)
    elif args.trace_command == "lbd":
        analysis = trace_analysis.analyze_lbd(events, buckets=args.buckets)
        formatted = trace_analysis.format_lbd(analysis)
    elif args.trace_command == "restarts":
        analysis = trace_analysis.analyze_restarts(events)
        formatted = trace_analysis.format_restarts(analysis)
    else:
        analysis = trace_analysis.analyze_hot(events, top=args.top)
        formatted = trace_analysis.format_hot(analysis)

    if args.json:
        print(json.dumps(analysis, indent=2, sort_keys=False))
    else:
        print(formatted)
    if args.trace_command == "summary" and not analysis["reconciled"]:
        return 1
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.core.store import scan_store

    if not os.path.isdir(args.store_dir):
        raise SystemExit(f"no such store directory: {args.store_dir}")
    stats = scan_store(args.store_dir)
    print(f"verdict store {args.store_dir}: schema {stats['schema']}, "
          f"{stats['records']} record(s), {stats['damaged']} damaged, "
          f"{stats['quarantined']} quarantined")
    for fingerprint, count in sorted(stats["fingerprints"].items()):
        print(f"  {fingerprint}: {count} record(s)")
    if args.json:
        payload = json.dumps(stats, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"stats JSON written to {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.serve import serve_main

    if args.max_retries < 0:
        raise SystemExit("--max-retries must be >= 0")
    return serve_main(args.store, args.socket, args.work_dir,
                      max_retries=args.max_retries,
                      default_deadline=args.deadline,
                      drain_grace=args.drain_grace)


_COMMANDS = {
    "verify": _cmd_verify,
    "simulate": _cmd_simulate,
    "table1": _cmd_table1,
    "depgraph": _cmd_depgraph,
    "deadlock": _cmd_deadlock,
    "scenarios": _cmd_scenarios,
    "batch": _cmd_batch,
    "fuzz": _cmd_fuzz,
    "bench": _cmd_bench,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
