"""The simulator: run workloads on a GeNoC instance and collect metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.genoc import GeNoCResult
from repro.core.instance import NoCInstance
from repro.core.theorems import check_correctness, check_evacuation
from repro.simulation.metrics import RunMetrics, compute_metrics
from repro.simulation.trace import Trace, TraceRecorder
from repro.simulation.workloads import WorkloadSpec


@dataclass
class SimulationResult:
    """Result of simulating one workload."""

    workload: WorkloadSpec
    genoc_result: GeNoCResult
    metrics: RunMetrics
    trace: Optional[Trace] = None
    correctness_ok: Optional[bool] = None
    evacuation_ok: Optional[bool] = None

    def summary(self) -> str:
        status = "deadlock" if self.genoc_result.deadlocked else (
            "evacuated" if self.genoc_result.evacuated else "truncated")
        return (f"{self.workload.name}: {self.metrics.messages} messages, "
                f"{self.metrics.steps} steps, {status}")


class Simulator:
    """Runs workloads on a :class:`NoCInstance`."""

    def __init__(self, instance: NoCInstance,
                 capacity: Optional[int] = None,
                 max_steps: Optional[int] = None,
                 record_trace: bool = False,
                 verify: bool = True) -> None:
        self.instance = instance
        self.capacity = capacity
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.verify = verify

    def run(self, workload: WorkloadSpec) -> SimulationResult:
        """Simulate one workload to completion (evacuation or deadlock)."""
        original = self.instance.initial_configuration(
            list(workload.travels), capacity=self.capacity)
        engine = self.instance.engine(max_steps=self.max_steps)
        recorder = TraceRecorder() if self.record_trace else None
        result = engine.run(original.copy(),
                            on_step=recorder if recorder else None)
        metrics = compute_metrics(original, result)
        simulation = SimulationResult(
            workload=workload, genoc_result=result, metrics=metrics,
            trace=recorder.trace if recorder else None)
        if self.verify:
            simulation.correctness_ok = check_correctness(
                self.instance, original, result).holds
            if result.evacuated:
                simulation.evacuation_ok = check_evacuation(
                    self.instance, original, result).holds
            else:
                simulation.evacuation_ok = False
        return simulation

    def run_suite(self, workloads: Sequence[WorkloadSpec]
                  ) -> List[SimulationResult]:
        return [self.run(workload) for workload in workloads]

    def sweep(self, workloads: Sequence[WorkloadSpec]
              ) -> Dict[str, Dict[str, object]]:
        """Run a suite and return a name -> metrics-dict mapping."""
        table: Dict[str, Dict[str, object]] = {}
        for workload in workloads:
            result = self.run(workload)
            table[workload.name] = result.metrics.as_dict()
        return table
