"""Traffic generators.

The paper leaves the initial message list fully parametric ("an initial list
-- of arbitrary size -- of messages that are immediately injected").  These
generators produce the standard NoC traffic patterns used by the simulation
benchmarks (Fig. 1) and by the extensional obligations (C-4)/(C-5):

* uniform random, transpose, bit-complement, hotspot, nearest-neighbour,
  random permutation, all-to-all, plus single-message workloads for unit
  tests.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.instance import NoCInstance
from repro.core.travel import Travel, make_travel
from repro.network.mesh import Mesh2D

Coordinate = Tuple[int, int]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: the travels plus how they were generated."""

    name: str
    travels: Tuple[Travel, ...]
    parameters: Tuple[Tuple[str, object], ...] = ()

    def __len__(self) -> int:
        return len(self.travels)

    def describe(self) -> str:
        params = ", ".join(f"{key}={value}" for key, value in self.parameters)
        return f"{self.name}({params}) [{len(self.travels)} messages]"


def _nodes_of(instance: NoCInstance) -> List[Coordinate]:
    return [node.coordinates for node in instance.topology.nodes]


def _travel(instance: NoCInstance, source: Coordinate, target: Coordinate,
            num_flits: int) -> Travel:
    return instance.make_travel(source, target, num_flits=num_flits)


def single_message(instance: NoCInstance, source: Coordinate,
                   target: Coordinate, num_flits: int = 1) -> WorkloadSpec:
    """A single message from ``source`` to ``target``."""
    return WorkloadSpec(
        name="single",
        travels=(_travel(instance, source, target, num_flits),),
        parameters=(("source", source), ("target", target),
                    ("num_flits", num_flits)))


def uniform_random_traffic(instance: NoCInstance, num_messages: int,
                           num_flits: int = 4, seed: int = 0) -> WorkloadSpec:
    """``num_messages`` messages with independently random sources/targets."""
    rng = random.Random(seed)
    nodes = _nodes_of(instance)
    travels = []
    for _ in range(num_messages):
        source = rng.choice(nodes)
        target = rng.choice([node for node in nodes if node != source])
        travels.append(_travel(instance, source, target, num_flits))
    return WorkloadSpec(name="uniform_random", travels=tuple(travels),
                        parameters=(("num_messages", num_messages),
                                    ("num_flits", num_flits), ("seed", seed)))


def transpose_traffic(instance: NoCInstance,
                      num_flits: int = 4) -> WorkloadSpec:
    """Every node (x, y) sends to (y, x) (when that node exists)."""
    travels = []
    topology = instance.topology
    for x, y in _nodes_of(instance):
        if (y, x) != (x, y) and topology.has_node(y, x):
            travels.append(_travel(instance, (x, y), (y, x), num_flits))
    return WorkloadSpec(name="transpose", travels=tuple(travels),
                        parameters=(("num_flits", num_flits),))


def bit_complement_traffic(instance: NoCInstance,
                           num_flits: int = 4) -> WorkloadSpec:
    """Every node (x, y) sends to the mirrored node (W-1-x, H-1-y)."""
    topology = instance.topology
    if not isinstance(topology, Mesh2D):
        raise TypeError("bit-complement traffic is defined for 2D meshes")
    travels = []
    for x, y in _nodes_of(instance):
        target = (topology.width - 1 - x, topology.height - 1 - y)
        if target != (x, y):
            travels.append(_travel(instance, (x, y), target, num_flits))
    return WorkloadSpec(name="bit_complement", travels=tuple(travels),
                        parameters=(("num_flits", num_flits),))


def hotspot_traffic(instance: NoCInstance, hotspot: Coordinate,
                    num_flits: int = 4,
                    senders: Optional[Sequence[Coordinate]] = None,
                    ) -> WorkloadSpec:
    """Every (other) node sends one message to the hotspot node."""
    travels = []
    for node in (senders if senders is not None else _nodes_of(instance)):
        if tuple(node) != tuple(hotspot):
            travels.append(_travel(instance, tuple(node), tuple(hotspot),
                                   num_flits))
    return WorkloadSpec(name="hotspot", travels=tuple(travels),
                        parameters=(("hotspot", tuple(hotspot)),
                                    ("num_flits", num_flits)))


def neighbour_traffic(instance: NoCInstance, num_flits: int = 4) -> WorkloadSpec:
    """Every node sends one message to its East neighbour (wrapping rows)."""
    topology = instance.topology
    if not isinstance(topology, Mesh2D):
        raise TypeError("neighbour traffic is defined for 2D meshes")
    travels = []
    for x, y in _nodes_of(instance):
        target = ((x + 1) % topology.width, y)
        if target != (x, y):
            travels.append(_travel(instance, (x, y), target, num_flits))
    return WorkloadSpec(name="neighbour", travels=tuple(travels),
                        parameters=(("num_flits", num_flits),))


def permutation_traffic(instance: NoCInstance, num_flits: int = 4,
                        seed: int = 0) -> WorkloadSpec:
    """A random permutation: every node sends to exactly one other node."""
    rng = random.Random(seed)
    nodes = _nodes_of(instance)
    targets = list(nodes)
    # Derangement-ish shuffle: retry until no node maps to itself (bounded).
    for _ in range(100):
        rng.shuffle(targets)
        if all(source != target for source, target in zip(nodes, targets)):
            break
    travels = []
    for source, target in zip(nodes, targets):
        if source != target:
            travels.append(_travel(instance, source, target, num_flits))
    return WorkloadSpec(name="permutation", travels=tuple(travels),
                        parameters=(("num_flits", num_flits), ("seed", seed)))


def all_to_all(instance: NoCInstance, num_flits: int = 1) -> WorkloadSpec:
    """Every node sends one message to every other node."""
    nodes = _nodes_of(instance)
    travels = []
    for source in nodes:
        for target in nodes:
            if source != target:
                travels.append(_travel(instance, source, target, num_flits))
    return WorkloadSpec(name="all_to_all", travels=tuple(travels),
                        parameters=(("num_flits", num_flits),))


def standard_suite(instance: NoCInstance, num_flits: int = 4,
                   seed: int = 0) -> List[WorkloadSpec]:
    """The workload family used by the Fig. 1 benchmark and the examples."""
    suite = [
        transpose_traffic(instance, num_flits=num_flits),
        bit_complement_traffic(instance, num_flits=num_flits),
        neighbour_traffic(instance, num_flits=num_flits),
        permutation_traffic(instance, num_flits=num_flits, seed=seed),
        uniform_random_traffic(instance,
                               num_messages=2 * instance.topology.node_count,
                               num_flits=num_flits, seed=seed),
    ]
    return [spec for spec in suite if len(spec) > 0]
