"""Step-by-step traces of GeNoC runs.

A trace records, for every switching step, which port every in-flight flit
occupies.  Traces are used by the deadlock-demo example (to show the knot
forming) and by tests that assert fine-grained progress properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.configuration import Configuration, NOT_INJECTED
from repro.network.port import Port


@dataclass
class TraceStep:
    """Snapshot of one switching step."""

    step: int
    #: travel id -> route index of its header (-1 = not injected,
    #: len(route) = ejected).
    header_positions: Dict[int, int]
    #: port -> number of buffered flits.
    occupancy: Dict[Port, int]
    pending: int
    arrived: int


@dataclass
class Trace:
    """A full run trace."""

    steps: List[TraceStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def header_trajectory(self, travel_id: int) -> List[int]:
        """The header position of one travel across all recorded steps."""
        return [step.header_positions.get(travel_id, NOT_INJECTED)
                for step in self.steps]

    def max_occupancy(self) -> int:
        """The highest number of flits ever buffered at a single port."""
        peak = 0
        for step in self.steps:
            if step.occupancy:
                peak = max(peak, max(step.occupancy.values()))
        return peak

    def final_step(self) -> Optional[TraceStep]:
        return self.steps[-1] if self.steps else None


class TraceRecorder:
    """An ``on_step`` callback for :meth:`GeNoCEngine.run` that builds a trace."""

    def __init__(self) -> None:
        self.trace = Trace()

    def __call__(self, step: int, config: Configuration) -> None:
        header_positions = {}
        for travel in config.travels:
            record = config.progress.get(travel.travel_id)
            if record is not None:
                header_positions[travel.travel_id] = record.header_position
        occupancy = {port: count
                     for port, count in config.state.occupancy_map().items()
                     if count > 0}
        self.trace.steps.append(TraceStep(
            step=step,
            header_positions=header_positions,
            occupancy=occupancy,
            pending=len(config.travels),
            arrived=len(config.arrived)))
