"""Simulation harness on top of the executable GeNoC specification.

The paper stresses that GeNoC instances are executable: "The same model is
used for simulation and validation."  This package provides the simulation
side: traffic generators (:mod:`repro.simulation.workloads`), a simulator
that runs a :class:`~repro.core.instance.NoCInstance` on a workload and
collects metrics (:mod:`repro.simulation.simulator`), and per-run metrics
(:mod:`repro.simulation.metrics`).
"""

from repro.simulation.workloads import (
    WorkloadSpec,
    all_to_all,
    bit_complement_traffic,
    hotspot_traffic,
    neighbour_traffic,
    permutation_traffic,
    single_message,
    transpose_traffic,
    uniform_random_traffic,
)
from repro.simulation.metrics import RunMetrics, compute_metrics
from repro.simulation.simulator import SimulationResult, Simulator
from repro.simulation.trace import Trace, TraceRecorder

__all__ = [
    "WorkloadSpec",
    "all_to_all",
    "bit_complement_traffic",
    "hotspot_traffic",
    "neighbour_traffic",
    "permutation_traffic",
    "single_message",
    "transpose_traffic",
    "uniform_random_traffic",
    "RunMetrics",
    "compute_metrics",
    "SimulationResult",
    "Simulator",
    "Trace",
    "TraceRecorder",
]
