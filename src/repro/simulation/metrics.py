"""Per-run metrics computed from a GeNoC execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.configuration import Configuration
from repro.core.genoc import GeNoCResult


@dataclass
class RunMetrics:
    """Aggregate metrics of one simulation run."""

    #: Number of messages in the initial configuration.
    messages: int
    #: Total number of flits across all messages.
    flits: int
    #: Switching steps until evacuation (or until deadlock/truncation).
    steps: int
    #: Did every message evacuate?
    evacuated: bool
    #: Did the run end in deadlock?
    deadlocked: bool
    #: Sum of the route lengths of all messages (the paper's initial μxy).
    total_route_length: int
    #: Average route length per message.
    average_route_length: float
    #: Maximum number of flits simultaneously buffered in the network.
    peak_flits_in_network: int
    #: Average number of flits in the network per step.
    average_flits_in_network: float
    #: Throughput: arrived messages per switching step.
    throughput: float
    #: Wall-clock seconds of the run.
    elapsed_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "messages": self.messages,
            "flits": self.flits,
            "steps": self.steps,
            "evacuated": self.evacuated,
            "deadlocked": self.deadlocked,
            "total_route_length": self.total_route_length,
            "average_route_length": round(self.average_route_length, 3),
            "peak_flits_in_network": self.peak_flits_in_network,
            "average_flits_in_network": round(self.average_flits_in_network, 3),
            "throughput": round(self.throughput, 4),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


def compute_metrics(original: Configuration, result: GeNoCResult) -> RunMetrics:
    """Compute :class:`RunMetrics` for a finished run."""
    messages = len(original.travels)
    flits = sum(travel.num_flits for travel in original.travels)
    routed = list(result.final.arrived) + list(result.final.travels)
    route_lengths = [travel.route_length for travel in routed
                     if travel.has_route]
    total_route_length = sum(route_lengths)
    average_route_length = (total_route_length / len(route_lengths)
                            if route_lengths else 0.0)
    flits_per_step = [record.flits_in_network for record in result.history]
    peak = max(flits_per_step, default=0)
    average_in_network = (sum(flits_per_step) / len(flits_per_step)
                          if flits_per_step else 0.0)
    throughput = (len(result.final.arrived) / result.steps
                  if result.steps else 0.0)
    return RunMetrics(
        messages=messages,
        flits=flits,
        steps=result.steps,
        evacuated=result.evacuated,
        deadlocked=result.deadlocked,
        total_route_length=total_route_length,
        average_route_length=average_route_length,
        peak_flits_in_network=peak,
        average_flits_in_network=average_in_network,
        throughput=throughput,
        elapsed_seconds=result.elapsed_seconds,
    )
