"""Virtual-channel instantiations of GeNoC.

The packages :mod:`repro.hermes` and :mod:`repro.ringnoc` bundle the
paper's single-VC instantiations; this package bundles the virtual-channel
ones: a :class:`~repro.network.vc.VCTopology` over a mesh, torus or ring,
a Duato-style :class:`~repro.routing.escape.EscapeChannelRouting` relation
(adaptive class + escape class, the VC-selection function being part of the
relation) and :class:`~repro.switching.wormhole.VCWormholeSwitching`
(per-VC buffers and worm ownership, credit-based header allocation, shared
physical links).

The deadlock story the builders support end to end:

* ``build_vc_mesh_instance(3, 3, num_vcs=1)`` -- fully-adaptive minimal
  routing on a single channel: the deadlock-prone baseline
  (``repro deadlock`` finds the cycle);
* ``build_vc_mesh_instance(3, 3, num_vcs=2)`` -- the same adaptive routing
  plus one XY escape VC: *proved* deadlock-free by
  :func:`repro.core.theorems.check_deadlock_freedom_vc` (explicitly) and
  :func:`~repro.core.theorems.check_deadlock_freedom_vc_incremental` (one
  incremental solve on the CDCL session);
* ``build_vc_torus_instance(4, 4, num_vcs=2)`` -- the dateline escape pair
  that repairs torus dimension-order routing, plus adaptive VCs on top
  from ``num_vcs >= 3``;
* ``build_vc_ring_instance(4, num_vcs=2)`` -- the dateline repair of the
  ring instantiations of :mod:`repro.ringnoc`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.instance import NoCInstance
from repro.core.measure import flit_hop_measure
from repro.core.spec import (
    ScenarioSpec,
    fault_suffix,
    register_builder,
    resolve_measure,
)
from repro.core.travel import Travel, make_travel
from repro.hermes.injection import Iid
from repro.network.mesh import Mesh2D
from repro.network.ring import Ring
from repro.network.torus import Torus2D
from repro.network.vc import VCTopology, VirtualChannel
from repro.routing.escape import (
    EscapeChannelRouting,
    mesh_escape_routing,
    ring_escape_routing,
    torus_escape_routing,
)
from repro.switching.wormhole import VCWormholeSwitching


class VCNoCInstance(NoCInstance):
    """A :class:`NoCInstance` whose resources are virtual channels.

    The network state, routes and dependency graph are all keyed by
    :class:`~repro.network.vc.VirtualChannel`; travels consequently start
    and end at injection/ejection *channels*.
    """

    @property
    def vc_topology(self) -> VCTopology:
        assert isinstance(self.topology, VCTopology)
        return self.topology

    @property
    def num_vcs(self) -> int:
        return self.vc_topology.num_vcs

    @property
    def relation(self) -> EscapeChannelRouting:
        assert isinstance(self.routing, EscapeChannelRouting)
        return self.routing

    def make_travel(self, source_node, destination_node,
                    num_flits: int = 1) -> Travel:
        """A travel between two nodes, using the local injection channels."""
        source = VirtualChannel(
            self.topology.node_at(*source_node).local_in, 0)
        destination = VirtualChannel(
            self.topology.node_at(*destination_node).local_out, 0)
        return make_travel(source, destination, num_flits=num_flits)


def build_vc_mesh_instance(width: int, height: int, num_vcs: int = 2,
                           buffer_capacity: int = 2,
                           route_policy: str = "escape",
                           measure=None) -> VCNoCInstance:
    """Fully-adaptive minimal routing + one XY escape VC on a 2D mesh.

    ``num_vcs = 1`` is the degenerate deadlock-prone baseline (adaptive and
    escape share the single channel); ``num_vcs >= 2`` separates the
    classes and the design is deadlock-free by the (V-1)/(V-2) condition.
    ``route_policy`` picks how simulation routes are committed (see
    :class:`~repro.routing.escape.EscapeChannelRouting`).
    """
    mesh = Mesh2D(width, height)
    relation = mesh_escape_routing(mesh, num_vcs=num_vcs,
                                   route_policy=route_policy)
    return VCNoCInstance(
        name=f"VC-mesh-{width}x{height}-{num_vcs}vc",
        topology=relation.topology,
        injection=Iid(),
        routing=relation,
        switching=VCWormholeSwitching(),
        dependency_spec=None,
        witness_destination=None,
        measure=measure if measure is not None else flit_hop_measure,
        default_capacity=buffer_capacity,
    )


def build_vc_torus_instance(width: int, height: int, num_vcs: int = 2,
                            buffer_capacity: int = 2,
                            route_policy: str = "escape",
                            measure=None) -> VCNoCInstance:
    """Dateline escape pair (+ adaptive class from 3 VCs up) on a torus."""
    torus = Torus2D(width, height)
    relation = torus_escape_routing(torus, num_vcs=num_vcs,
                                    route_policy=route_policy)
    return VCNoCInstance(
        name=f"VC-torus-{width}x{height}-{num_vcs}vc",
        topology=relation.topology,
        injection=Iid(),
        routing=relation,
        switching=VCWormholeSwitching(),
        dependency_spec=None,
        witness_destination=None,
        measure=measure if measure is not None else flit_hop_measure,
        default_capacity=buffer_capacity,
    )


def build_vc_ring_instance(size: int, num_vcs: int = 2,
                           buffer_capacity: int = 2,
                           route_policy: str = "escape",
                           measure=None) -> VCNoCInstance:
    """Dateline escape pair on a bidirectional ring."""
    ring = Ring(size, bidirectional=True)
    relation = ring_escape_routing(ring, num_vcs=num_vcs,
                                   route_policy=route_policy)
    return VCNoCInstance(
        name=f"VC-ring-{size}-{num_vcs}vc",
        topology=relation.topology,
        injection=Iid(),
        routing=relation,
        switching=VCWormholeSwitching(),
        dependency_spec=None,
        witness_destination=None,
        measure=measure if measure is not None else flit_hop_measure,
        default_capacity=buffer_capacity,
    )


# ---------------------------------------------------------------------------
# The vc-* scenario kinds (declarative spec layer)
# ---------------------------------------------------------------------------

def _build_vc_faulty(spec: ScenarioSpec, label: str, topology,
                     style: str, with_adaptive: bool) -> VCNoCInstance:
    """A fault-injected VC instance over an already-built faulty topology."""
    from repro.routing.fault_aware import fault_aware_escape_routing

    relation = fault_aware_escape_routing(
        topology, spec.num_vcs, route_policy=spec.route_policy,
        style=style, with_adaptive=with_adaptive)
    return VCNoCInstance(
        name=f"VC-{label}-{topology}-{spec.num_vcs}vc",
        topology=relation.topology,
        injection=Iid(),
        routing=relation,
        switching=VCWormholeSwitching(),
        dependency_spec=None,
        witness_destination=None,
        measure=resolve_measure(spec.measure),
        default_capacity=spec.buffers,
    )


def build_vc_mesh_from_spec(spec: ScenarioSpec) -> VCNoCInstance:
    """:class:`InstanceBuilder` of the ``vc-mesh`` kind."""
    if spec.faults:
        from repro.network.faults import FaultyMesh2D, sample_fault_spec

        width, height = spec.dims
        fault_spec = sample_fault_spec(Mesh2D(width, height), spec.faults,
                                       spec.fault_seed)
        mesh = FaultyMesh2D(width, height, fault_spec)
        return _build_vc_faulty(spec, "mesh", mesh, style="xy",
                                with_adaptive=True)
    return build_vc_mesh_instance(
        spec.dims[0], spec.dims[1], num_vcs=spec.num_vcs,
        buffer_capacity=spec.buffers, route_policy=spec.route_policy,
        measure=resolve_measure(spec.measure))


def build_vc_torus_from_spec(spec: ScenarioSpec) -> VCNoCInstance:
    """:class:`InstanceBuilder` of the ``vc-torus`` kind."""
    if spec.faults:
        from repro.network.faults import FaultyTorus2D, sample_fault_spec

        width, height = spec.dims
        fault_spec = sample_fault_spec(Torus2D(width, height), spec.faults,
                                       spec.fault_seed)
        torus = FaultyTorus2D(width, height, fault_spec)
        # Like the healthy builder: an adaptive class exists from 3 VCs up.
        return _build_vc_faulty(spec, "torus", torus, style="dateline",
                                with_adaptive=spec.num_vcs > 2)
    return build_vc_torus_instance(
        spec.dims[0], spec.dims[1], num_vcs=spec.num_vcs,
        buffer_capacity=spec.buffers, route_policy=spec.route_policy,
        measure=resolve_measure(spec.measure))


def build_vc_ring_from_spec(spec: ScenarioSpec) -> VCNoCInstance:
    """:class:`InstanceBuilder` of the ``vc-ring`` kind."""
    if spec.faults:
        from repro.network.faults import FaultyRing, sample_fault_spec

        size = spec.dims[0]
        fault_spec = sample_fault_spec(Ring(size, bidirectional=True),
                                       spec.faults, spec.fault_seed,
                                       allow_routers=False)
        ring = FaultyRing(size, fault_spec)
        return _build_vc_faulty(spec, "ring", ring, style="dateline",
                                with_adaptive=False)
    return build_vc_ring_instance(
        spec.dims[0], num_vcs=spec.num_vcs,
        buffer_capacity=spec.buffers, route_policy=spec.route_policy,
        measure=resolve_measure(spec.measure))


def _vc_mesh_name(spec: ScenarioSpec) -> str:
    return (f"{spec.group_key()}/Radaptive+esc-xy/{spec.num_vcs}vc"
            f"{fault_suffix(spec)}")


def _vc_torus_name(spec: ScenarioSpec) -> str:
    return (f"{spec.group_key()}/Rxy-torus+esc-dateline/{spec.num_vcs}vc"
            f"{fault_suffix(spec)}")


def _vc_ring_name(spec: ScenarioSpec) -> str:
    return (f"{spec.group_key()}/Rshortest-ring+esc-dateline/{spec.num_vcs}vc"
            f"{fault_suffix(spec)}")


register_builder(
    "vc-mesh", build_vc_mesh_from_spec,
    description="2D mesh at VC granularity: fully-adaptive class + one XY "
                "escape VC",
    dim_count=2,
    supports_vcs=True,
    supports_faults=True,
    escape_style="xy",
    namer=_vc_mesh_name,
)

register_builder(
    "vc-torus", build_vc_torus_from_spec,
    description="2D torus at VC granularity: dimension-order routing with a "
                "dateline escape pair (+ adaptive class from 3 VCs)",
    dim_count=2,
    supports_vcs=True,
    supports_faults=True,
    escape_style="dateline",
    namer=_vc_torus_name,
)

register_builder(
    "vc-ring", build_vc_ring_from_spec,
    description="bidirectional ring at VC granularity: shortest-path routing "
                "with a dateline escape pair",
    dim_count=1,
    supports_vcs=True,
    supports_faults=True,
    escape_style="dateline",
    namer=_vc_ring_name,
)


__all__ = [
    "VCNoCInstance",
    "build_vc_mesh_instance",
    "build_vc_torus_instance",
    "build_vc_ring_instance",
    "build_vc_mesh_from_spec",
    "build_vc_torus_from_spec",
    "build_vc_ring_from_spec",
]
