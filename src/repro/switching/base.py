"""Shared infrastructure of the switching policies."""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.core.configuration import Configuration


class SingleTravelStepper(abc.ABC):
    """A switching policy that can advance a single chosen travel.

    The GeNoC switching step advances *every* message by at most one hop in a
    fixed order; for the exhaustive state-space exploration of
    :mod:`repro.checking.bmc` we additionally need the finer-grained
    transition "exactly one chosen message advances by one hop", so that all
    interleavings of message progress are explored.
    """

    @abc.abstractmethod
    def advance_travel(self, config: Configuration,
                       travel_id: int) -> Optional[Configuration]:
        """Advance only the given travel by one hop.

        Returns the successor configuration, or ``None`` when the travel
        cannot move in ``config``.  The input configuration is not modified.
        """

    def movable_travels(self, config: Configuration) -> List[int]:
        """Ids of the pending travels that could advance right now."""
        movable = []
        for travel in config.travels:
            if self.advance_travel(config, travel.travel_id) is not None:
                movable.append(travel.travel_id)
        return movable
