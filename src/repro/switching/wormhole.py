"""Wormhole switching: the ``Swh`` constituent of the HERMES instantiation.

The paper (Section V.4) re-uses the wormhole switching specification of
Borrione et al.: messages are decomposed into flits; a port accepts a flit if
it has at least one available buffer; a port can only accept flits of at most
one packet; for each message, the policy "moves or not the message depending
on the state of the handshake protocol and available buffer spaces at the
next hop".

The model implemented here is flit-accurate:

* every travel's message is a *worm* of flits spread over consecutive route
  ports;
* the header advances one hop per switching step when the next port accepts
  it (free buffer, not owned by another worm);
* body flits follow in a pipelined fashion: a flit advances only when its
  predecessor advanced, so the worm stays contiguous and a port is owned by
  the worm from the moment the header enters it until the tail leaves it;
* flits that reach the destination local out-port are ejected (consumed by
  the IP core); when every flit of a travel has been ejected the travel moves
  from ``T`` to ``A``.

The worm-contiguity invariant (consecutive flits are never more than one
route hop apart) is what makes the port-level deadlock analysis of Theorem 1
apply: a message waits only on its header's next hop.  The invariant is
checked by the property-based tests in ``tests/test_wormhole_properties.py``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.configuration import (
    Configuration,
    NOT_INJECTED,
    TravelProgress,
)
from repro.core.constituents import SwitchingPolicy
from repro.core.errors import SwitchingError
from repro.network.flit import Flit, FlitKind, make_flits
from repro.switching.base import SingleTravelStepper


class WormholeSwitching(SwitchingPolicy, SingleTravelStepper):
    """The wormhole switching policy ``Swh``."""

    def name(self) -> str:
        return "Swh"

    # -- SwitchingPolicy interface ------------------------------------------------
    def step(self, config: Configuration) -> Configuration:
        """Advance every message by at most one hop (in travel-id order)."""
        new_config = config.copy()
        for travel in list(new_config.travels):
            self._advance_worm(new_config, travel.travel_id)
        self._collect_arrivals(new_config)
        return new_config

    def can_progress(self, config: Configuration) -> bool:
        """``¬Ω(σ)``: at least one message can move this step."""
        return any(self._can_worm_advance(config, travel.travel_id)
                   for travel in config.travels)

    # -- SingleTravelStepper interface ----------------------------------------------
    def advance_travel(self, config: Configuration,
                       travel_id: int) -> Optional[Configuration]:
        if not self._can_worm_advance(config, travel_id):
            return None
        new_config = config.copy()
        moved = self._advance_worm(new_config, travel_id)
        if not moved:
            return None
        self._collect_arrivals(new_config)
        return new_config

    # -- internals ----------------------------------------------------------------------
    def _leader_index(self, record: TravelProgress) -> Optional[int]:
        """Index of the first flit that has not been ejected yet."""
        for index, position in enumerate(record.positions):
            if position != record.ejected_position:
                return index
        return None

    def _can_worm_advance(self, config: Configuration, travel_id: int) -> bool:
        record = config.progress.get(travel_id)
        if record is None:
            return False
        leader = self._leader_index(record)
        if leader is None:
            # Fully ejected but not yet collected: collecting counts as
            # progress (it empties T), though it normally happens in the same
            # step as the last ejection.
            return True
        position = record.positions[leader]
        route = record.route
        if position == len(route) - 1:
            # At the destination local out-port: ejection is always possible.
            return True
        target_index = 0 if position == NOT_INJECTED else position + 1
        return config.state.accepts(route[target_index], travel_id)

    def _advance_worm(self, config: Configuration, travel_id: int) -> bool:
        """Advance the worm of one travel by one pipelined shift.

        Returns True when at least one flit moved.
        """
        record = config.progress.get(travel_id)
        if record is None:
            return False
        route = record.route
        state = config.state
        flits = make_flits(travel_id, len(record.positions))
        predecessor_moved = True  # the "predecessor" of the leader is the sink
        any_moved = False

        for index, position in enumerate(record.positions):
            if position == record.ejected_position:
                predecessor_moved = True
                continue
            if not predecessor_moved:
                # Strict pipelining: a flit only follows a moving predecessor.
                predecessor_moved = False
                continue
            if position == len(route) - 1:
                # Ejection at the destination local out-port.
                self._remove_flit(config, route[position], travel_id, index)
                record.positions[index] = record.ejected_position
                predecessor_moved = True
                any_moved = True
                continue
            target_index = 0 if position == NOT_INJECTED else position + 1
            target_port = route[target_index]
            if not state.accepts(target_port, travel_id):
                predecessor_moved = False
                continue
            if position == NOT_INJECTED:
                flit = flits[index]
            else:
                flit = self._remove_flit(config, route[position], travel_id,
                                         index)
            state.accept_flit(target_port, flit)
            record.positions[index] = target_index
            predecessor_moved = True
            any_moved = True
        return any_moved

    @staticmethod
    def _remove_flit(config: Configuration, port, travel_id: int,
                     flit_index: int) -> Flit:
        """Pop the head flit of ``port`` and check it is the expected one."""
        flit = config.state.release_flit(port)
        if flit.travel_id != travel_id or flit.index != flit_index:
            raise SwitchingError(
                f"expected flit {flit_index} of travel {travel_id} at {port}, "
                f"found {flit}")
        return flit

    @staticmethod
    def _collect_arrivals(config: Configuration) -> None:
        """Move fully-ejected travels from ``T`` to ``A``."""
        still_pending = []
        for travel in config.travels:
            record = config.progress.get(travel.travel_id)
            if record is not None and record.is_arrived:
                config.arrived.append(travel)
            else:
                still_pending.append(travel)
        config.travels[:] = still_pending
