"""Wormhole switching: the ``Swh`` constituent of the HERMES instantiation.

The paper (Section V.4) re-uses the wormhole switching specification of
Borrione et al.: messages are decomposed into flits; a port accepts a flit if
it has at least one available buffer; a port can only accept flits of at most
one packet; for each message, the policy "moves or not the message depending
on the state of the handshake protocol and available buffer spaces at the
next hop".

The model implemented here is flit-accurate:

* every travel's message is a *worm* of flits spread over consecutive route
  ports;
* the header advances one hop per switching step when the next port accepts
  it (free buffer, not owned by another worm);
* body flits follow in a pipelined fashion: a flit advances only when its
  predecessor advanced, so the worm stays contiguous and a port is owned by
  the worm from the moment the header enters it until the tail leaves it;
* flits that reach the destination local out-port are ejected (consumed by
  the IP core); when every flit of a travel has been ejected the travel moves
  from ``T`` to ``A``.

The worm-contiguity invariant (consecutive flits are never more than one
route hop apart) is what makes the port-level deadlock analysis of Theorem 1
apply: a message waits only on its header's next hop.  The invariant is
checked by the property-based tests in ``tests/test_wormhole_properties.py``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.configuration import (
    Configuration,
    NOT_INJECTED,
    TravelProgress,
)
from repro.core.constituents import SwitchingPolicy
from repro.core.errors import SwitchingError
from repro.network.flit import Flit, FlitKind, make_flits
from repro.switching.base import SingleTravelStepper


class WormholeSwitching(SwitchingPolicy, SingleTravelStepper):
    """The wormhole switching policy ``Swh``."""

    def name(self) -> str:
        return "Swh"

    # -- SwitchingPolicy interface ------------------------------------------------
    def step(self, config: Configuration) -> Configuration:
        """Advance every message by at most one hop (in travel-id order)."""
        new_config = config.copy()
        for travel in list(new_config.travels):
            self._advance_worm(new_config, travel.travel_id)
        self._collect_arrivals(new_config)
        return new_config

    def can_progress(self, config: Configuration) -> bool:
        """``¬Ω(σ)``: at least one message can move this step."""
        return any(self._can_worm_advance(config, travel.travel_id)
                   for travel in config.travels)

    # -- SingleTravelStepper interface ----------------------------------------------
    def advance_travel(self, config: Configuration,
                       travel_id: int) -> Optional[Configuration]:
        if not self._can_worm_advance(config, travel_id):
            return None
        new_config = config.copy()
        moved = self._advance_worm(new_config, travel_id)
        if not moved:
            return None
        self._collect_arrivals(new_config)
        return new_config

    # -- internals ----------------------------------------------------------------------
    def _leader_index(self, record: TravelProgress) -> Optional[int]:
        """Index of the first flit that has not been ejected yet."""
        for index, position in enumerate(record.positions):
            if position != record.ejected_position:
                return index
        return None

    def _can_worm_advance(self, config: Configuration, travel_id: int) -> bool:
        record = config.progress.get(travel_id)
        if record is None:
            return False
        leader = self._leader_index(record)
        if leader is None:
            # Fully ejected but not yet collected: collecting counts as
            # progress (it empties T), though it normally happens in the same
            # step as the last ejection.
            return True
        position = record.positions[leader]
        route = record.route
        if position == len(route) - 1:
            # At the destination local out-port: ejection is always possible.
            return True
        target_index = 0 if position == NOT_INJECTED else position + 1
        return (config.state.accepts(route[target_index], travel_id)
                and self._leader_hop_allowed(config, route, position,
                                             target_index, travel_id))

    def _advance_worm(self, config: Configuration, travel_id: int) -> bool:
        """Advance the worm of one travel by one pipelined shift.

        Returns True when at least one flit moved.
        """
        record = config.progress.get(travel_id)
        if record is None:
            return False
        route = record.route
        state = config.state
        flits = make_flits(travel_id, len(record.positions))
        predecessor_moved = True  # the "predecessor" of the leader is the sink
        leader_pending = True
        any_moved = False

        for index, position in enumerate(record.positions):
            if position == record.ejected_position:
                predecessor_moved = True
                continue
            is_leader, leader_pending = leader_pending, False
            if not predecessor_moved:
                # Strict pipelining: a flit only follows a moving predecessor.
                predecessor_moved = False
                continue
            if position == len(route) - 1:
                # Ejection at the destination local out-port.
                self._remove_flit(config, route[position], travel_id, index)
                record.positions[index] = record.ejected_position
                predecessor_moved = True
                any_moved = True
                continue
            target_index = 0 if position == NOT_INJECTED else position + 1
            target_port = route[target_index]
            if not state.accepts(target_port, travel_id):
                predecessor_moved = False
                continue
            if is_leader and not self._leader_hop_allowed(
                    config, route, position, target_index, travel_id):
                predecessor_moved = False
                continue
            if not self._claim_hop(route, position, target_port):
                predecessor_moved = False
                continue
            if position == NOT_INJECTED:
                flit = flits[index]
            else:
                flit = self._remove_flit(config, route[position], travel_id,
                                         index)
            state.accept_flit(target_port, flit)
            record.positions[index] = target_index
            predecessor_moved = True
            any_moved = True
        return any_moved

    def _claim_hop(self, route, position: int, target) -> bool:
        """Arbitration hook: may this flit hop happen in the current step?

        The base policy has no shared-medium contention (each port is its
        own resource), so every hop that the buffer state accepts is
        granted.  :class:`VCWormholeSwitching` overrides this to arbitrate
        the physical links that its virtual channels multiplex.
        """
        return True

    def _leader_hop_allowed(self, config: Configuration, route,
                            position: int, target_index: int,
                            travel_id: int) -> bool:
        """Allocation hook: may the *header* take this hop right now?

        The base policy lets the header advance whenever the next port
        accepts it.  :class:`VCWormholeSwitching` overrides this with
        credit-based allocation: the header only enters a cardinal
        out-channel when the downstream in-channel also accepts it, so a
        header never ends up waiting inside an out-channel where the escape
        class can no longer be requested.
        """
        return True

    @staticmethod
    def _remove_flit(config: Configuration, port, travel_id: int,
                     flit_index: int) -> Flit:
        """Pop the head flit of ``port`` and check it is the expected one."""
        flit = config.state.release_flit(port)
        if flit.travel_id != travel_id or flit.index != flit_index:
            raise SwitchingError(
                f"expected flit {flit_index} of travel {travel_id} at {port}, "
                f"found {flit}")
        return flit

    @staticmethod
    def _collect_arrivals(config: Configuration) -> None:
        """Move fully-ejected travels from ``T`` to ``A``."""
        still_pending = []
        for travel in config.travels:
            record = config.progress.get(travel.travel_id)
            if record is not None and record.is_arrived:
                config.arrived.append(travel)
            else:
                still_pending.append(travel)
        config.travels[:] = still_pending


class VCWormholeSwitching(WormholeSwitching):
    """VC-aware wormhole switching: per-VC credits, shared physical links.

    Runs over a network state keyed by
    :class:`~repro.network.vc.VirtualChannel`, so buffering, credits (free
    buffer slots) and worm ownership are tracked **per virtual channel** --
    two worms on different VCs of the same physical port coexist, which
    plain :class:`WormholeSwitching` forbids.  What the VCs still share is
    the physical link bandwidth: per switching step, at most one flit
    crosses each physical link (an out-port -> in-port connection),
    whichever VC it travels on.  Link arbitration is granted in travel-id
    order within the step; a flit denied the link simply stalls for that
    step, which never affects the deadlock predicate (``can_progress``
    ignores link contention -- a shared link is always re-granted next
    step, so waiting for it cannot be part of a deadlock knot).

    Headers are advanced with **credit-based allocation**: the header only
    moves into a cardinal out-channel when the downstream in-channel (same
    VC -- physical links carry the VC index across) also accepts it.
    Because an in-port has exactly one physical feeder and link hops
    preserve the VC, the granted credit cannot be stolen by another worm,
    so a header never waits inside an out-channel.  This matches real VC
    routers (switch allocation requires a downstream credit) and is what
    makes the escape-class argument of
    :mod:`repro.routing.escape` apply: a blocked header always sits at a
    VC-allocation point where the escape class can still be requested.
    """

    def name(self) -> str:
        return "Svc-wh"

    def step(self, config: Configuration) -> Configuration:
        self._links_used = set()
        return super().step(config)

    def advance_travel(self, config: Configuration,
                       travel_id: int) -> Optional[Configuration]:
        self._links_used = set()
        return super().advance_travel(config, travel_id)

    def _claim_hop(self, route, position: int, target) -> bool:
        """Grant the hop unless its physical link was used this step."""
        from repro.network.vc import port_of

        if position == NOT_INJECTED:
            return True  # injection from the IP core uses no network link
        source_port = port_of(route[position])
        target_port = port_of(target)
        if not (source_port.is_output and target_port.is_input):
            return True  # an intra-switch hop, not a link traversal
        link = (source_port, target_port)
        if link in self._links_used:
            return False
        self._links_used.add(link)
        return True

    def _leader_hop_allowed(self, config: Configuration, route,
                            position: int, target_index: int,
                            travel_id: int) -> bool:
        """Credit-based allocation: entering a cardinal out-channel needs a
        free slot in the downstream in-channel it feeds."""
        from repro.network.vc import port_of

        target_port = port_of(route[target_index])
        if not target_port.is_output or target_port.is_local:
            return True
        next_index = target_index + 1
        if next_index >= len(route):
            return True
        return config.state.accepts(route[next_index], travel_id)
