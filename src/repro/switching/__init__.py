"""Switching policies.

* :mod:`repro.switching.wormhole` -- the wormhole switching policy ``Swh``
  used by the paper's HERMES instantiation (Section V.4), plus its
  virtual-channel variant ``Svc-wh`` (per-VC buffers/ownership,
  credit-based header allocation, one flit per physical link per step).
* :mod:`repro.switching.store_and_forward` -- store-and-forward packet
  switching (the whole packet occupies one port at a time).
* :mod:`repro.switching.virtual_cut_through` -- virtual cut-through: the
  header only advances when the next port can buffer the entire packet.

All three implement the generic :class:`repro.core.constituents.SwitchingPolicy`
interface plus :class:`SingleTravelStepper`, which the explicit-state model
checker (:mod:`repro.checking.bmc`) uses to explore all interleavings.
"""

from repro.switching.base import SingleTravelStepper
from repro.switching.wormhole import VCWormholeSwitching, WormholeSwitching
from repro.switching.store_and_forward import StoreAndForwardSwitching
from repro.switching.virtual_cut_through import VirtualCutThroughSwitching

__all__ = [
    "SingleTravelStepper",
    "WormholeSwitching",
    "VCWormholeSwitching",
    "StoreAndForwardSwitching",
    "VirtualCutThroughSwitching",
]
