"""Virtual cut-through switching.

Like wormhole switching, flits advance in a pipelined fashion, but the header
only advances into a port that has enough free buffers for the *entire*
remaining packet.  As a consequence a blocked packet always fits into the
port holding its header (plus the ports behind it it is draining from), which
removes the long multi-port worms that make wormhole switching particularly
deadlock-prone -- but the port-dependency condition of Theorem 1 is the same.

The implementation reuses the wormhole mechanics and only strengthens the
header-admission test.
"""

from __future__ import annotations

from typing import Optional

from repro.core.configuration import Configuration, NOT_INJECTED
from repro.switching.wormhole import WormholeSwitching


class VirtualCutThroughSwitching(WormholeSwitching):
    """Virtual cut-through: header admission requires room for the packet."""

    def name(self) -> str:
        return "Svct"

    def _can_worm_advance(self, config: Configuration, travel_id: int) -> bool:
        record = config.progress.get(travel_id)
        if record is None:
            return False
        leader = self._leader_index(record)
        if leader is None:
            return True
        position = record.positions[leader]
        route = record.route
        if position == len(route) - 1:
            return True
        target_index = 0 if position == NOT_INJECTED else position + 1
        target = route[target_index]
        state = config.state[target]
        if not state.accepts(travel_id):
            return False
        if leader == 0 and record.positions[0] != NOT_INJECTED:
            # Header admission: the next port must be able to buffer the whole
            # remaining packet (flits not yet ejected).
            remaining = sum(1 for pos in record.positions
                            if pos != record.ejected_position)
            if state.owner not in (None, travel_id):
                return False
            return state.buffer.free_slots >= min(remaining,
                                                  state.buffer.capacity)
        return True

    def _advance_worm(self, config: Configuration, travel_id: int) -> bool:
        # The header-admission rule is enforced by refusing to advance the
        # worm at all when the rule fails; body-follow behaviour is unchanged.
        if not self._can_worm_advance(config, travel_id):
            return False
        return super()._advance_worm(config, travel_id)
