"""Store-and-forward packet switching.

The whole packet is buffered in a single port and only advances to the next
port of its route when that port can hold *all* of its flits.  This is the
classical alternative to wormhole switching; it needs deeper buffers but its
messages never span several ports, so the deadlock analysis degenerates to
the node-level formulation of Dally & Seitz.

It is included as an ablation baseline: the same routing function and the
same dependency-graph condition apply, and the evacuation measure of
obligation (C-5) decreases for it as well (the paper notes C-5 is proven
"nearly generically").
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.configuration import (
    Configuration,
    NOT_INJECTED,
    TravelProgress,
)
from repro.core.constituents import SwitchingPolicy
from repro.core.errors import SwitchingError
from repro.network.flit import make_flits
from repro.switching.base import SingleTravelStepper


class StoreAndForwardSwitching(SwitchingPolicy, SingleTravelStepper):
    """Store-and-forward: packets move as indivisible units."""

    def name(self) -> str:
        return "Ssaf"

    # -- SwitchingPolicy --------------------------------------------------------
    def step(self, config: Configuration) -> Configuration:
        new_config = config.copy()
        for travel in list(new_config.travels):
            self._advance_packet(new_config, travel.travel_id)
        self._collect_arrivals(new_config)
        return new_config

    def can_progress(self, config: Configuration) -> bool:
        return any(self._can_packet_advance(config, travel.travel_id)
                   for travel in config.travels)

    # -- SingleTravelStepper -------------------------------------------------------
    def advance_travel(self, config: Configuration,
                       travel_id: int) -> Optional[Configuration]:
        if not self._can_packet_advance(config, travel_id):
            return None
        new_config = config.copy()
        if not self._advance_packet(new_config, travel_id):
            return None
        self._collect_arrivals(new_config)
        return new_config

    # -- internals ---------------------------------------------------------------------
    @staticmethod
    def _packet_position(record: TravelProgress) -> int:
        """The single position shared by every flit of the packet."""
        positions = set(record.positions)
        if len(positions) != 1:
            raise SwitchingError(
                "store-and-forward packets occupy exactly one position, "
                f"found {sorted(positions)}")
        return next(iter(positions))

    def _can_packet_advance(self, config: Configuration,
                            travel_id: int) -> bool:
        record = config.progress.get(travel_id)
        if record is None:
            return False
        position = self._packet_position(record)
        route = record.route
        if position == record.ejected_position:
            return True
        if position == len(route) - 1:
            return True
        target_index = 0 if position == NOT_INJECTED else position + 1
        target = route[target_index]
        state = config.state[target]
        if state.owner not in (None, travel_id):
            return False
        return state.buffer.free_slots >= len(record.positions)

    def _advance_packet(self, config: Configuration, travel_id: int) -> bool:
        record = config.progress.get(travel_id)
        if record is None or not self._can_packet_advance(config, travel_id):
            return False
        position = self._packet_position(record)
        route = record.route
        num_flits = len(record.positions)
        flits = make_flits(travel_id, num_flits)

        if position == record.ejected_position:
            return False
        if position == len(route) - 1:
            # Eject the whole packet.
            for _ in range(num_flits):
                config.state.release_flit(route[position])
            record.positions[:] = [record.ejected_position] * num_flits
            return True
        target_index = 0 if position == NOT_INJECTED else position + 1
        target = route[target_index]
        if position != NOT_INJECTED:
            for _ in range(num_flits):
                config.state.release_flit(route[position])
        for flit in flits:
            config.state.accept_flit(target, flit)
        record.positions[:] = [target_index] * num_flits
        return True

    @staticmethod
    def _collect_arrivals(config: Configuration) -> None:
        still_pending = []
        for travel in config.travels:
            record = config.progress.get(travel.travel_id)
            if record is not None and record.is_arrived:
                config.arrived.append(travel)
            else:
                still_pending.append(travel)
        config.travels[:] = still_pending

    def required_capacity(self, config: Configuration) -> int:
        """Minimum port capacity needed to carry the largest packet."""
        return max((travel.num_flits for travel in config.travels), default=1)
