"""The three global GeNoC theorems as executable checkers.

* **Correctness Theorem (CorrThm)** -- every message that reaches a
  destination ``d`` was emitted at a valid source, was destined to ``d`` and
  followed a valid path to ``d``.
* **Deadlock Theorem (DeadThm)** -- the routing function is deadlock-free;
  by Theorem 1 this follows from obligations (C-1)-(C-3).
* **Evacuation Theorem (EvacThm)** -- all injected messages eventually leave
  the network: ``GeNoC(σ).A = σ.T``; by Theorem 2 this follows from (C-4) and
  (C-5).

Each checker has two facets, mirroring the paper's "same model for validation
and simulation":

* a *derivation* facet that concludes the theorem from discharged proof
  obligations (what the ACL2 development does once the user obligations are
  proved), and
* a *runtime-verification* facet that checks the theorem's statement directly
  on concrete GeNoC executions (what simulation gives you).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.configuration import Configuration
from repro.core.genoc import GeNoCResult
from repro.core.instance import NoCInstance
from repro.core.measure import is_non_increasing, is_strictly_decreasing
from repro.core.obligations import (
    ObligationResult,
    check_c1,
    check_c2,
    check_c3,
    check_c4,
    check_c5,
)
from repro.core.travel import Travel
from repro.network.port import Port


@dataclass
class TheoremResult:
    """Outcome of checking one global theorem."""

    name: str
    holds: bool
    #: The obligations this verdict was derived from (derivation facet).
    obligations: List[ObligationResult] = field(default_factory=list)
    #: Number of runtime checks performed (runtime-verification facet).
    checks: int = 0
    counterexamples: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        return f"{self.name}: {status} ({self.checks} runtime checks)"


# ---------------------------------------------------------------------------
# Correctness theorem
# ---------------------------------------------------------------------------

def check_correctness(instance: NoCInstance, original: Configuration,
                      result: GeNoCResult) -> TheoremResult:
    """CorrThm: arrived messages were sent, to the right place, along a valid path.

    "Valid path" is checked against both the topology (consecutive route
    ports are either in the same node or joined by a physical link) and the
    routing function (each hop is one the routing function allows for that
    destination).
    """
    start = time.perf_counter()
    original_ids = {travel.travel_id: travel for travel in original.travels}
    counterexamples: List[str] = []
    checks = 0

    for travel in result.final.arrived:
        checks += 1
        # (1) emitted at a valid source: the travel was part of the original T.
        if travel.travel_id not in original_ids:
            counterexamples.append(
                f"arrived travel {travel.travel_id} was never sent")
            continue
        sent = original_ids[travel.travel_id]
        # (2) actually destined to the destination it arrived at.
        if travel.destination != sent.destination:
            counterexamples.append(
                f"travel {travel.travel_id} arrived at {travel.destination} "
                f"but was destined to {sent.destination}")
        if travel.source != sent.source:
            counterexamples.append(
                f"travel {travel.travel_id} source changed from "
                f"{sent.source} to {travel.source}")
        # (3) followed a valid path from source to destination.
        if travel.route is None:
            counterexamples.append(
                f"travel {travel.travel_id} arrived without a route")
            continue
        path_errors = _validate_route(instance, travel)
        counterexamples.extend(path_errors)
        checks += len(travel.route)

    elapsed = time.perf_counter() - start
    return TheoremResult(name="CorrThm", holds=not counterexamples,
                         checks=checks, counterexamples=counterexamples,
                         elapsed_seconds=elapsed,
                         details={"arrived": len(result.final.arrived)})


def _validate_route(instance: NoCInstance, travel: Travel) -> List[str]:
    """Check that a travel's route is a valid path of the instantiation."""
    errors: List[str] = []
    route = travel.route or ()
    topology = instance.topology
    routing = instance.routing
    if not route:
        return [f"travel {travel.travel_id} has an empty route"]
    if route[0] != travel.source:
        errors.append(
            f"travel {travel.travel_id}: route starts at {route[0]}, "
            f"not at its source {travel.source}")
    if route[-1] != travel.destination:
        errors.append(
            f"travel {travel.travel_id}: route ends at {route[-1]}, "
            f"not at its destination {travel.destination}")
    for current, following in zip(route, route[1:]):
        if not topology.has_port(current) or not topology.has_port(following):
            errors.append(
                f"travel {travel.travel_id}: route port outside the topology")
            continue
        # Physically adjacent: same node, or joined by a link.
        same_node = current.node == following.node
        linked = topology.link_target(current) == following
        if not (same_node or linked):
            errors.append(
                f"travel {travel.travel_id}: {current} -> {following} is not "
                f"a physical adjacency")
        # Allowed by the routing function.
        allowed = routing.next_hops(current, travel.destination)
        if following not in allowed:
            errors.append(
                f"travel {travel.travel_id}: hop {current} -> {following} is "
                f"not allowed by {routing.name()} for destination "
                f"{travel.destination}")
    return errors


# ---------------------------------------------------------------------------
# Deadlock theorem
# ---------------------------------------------------------------------------

def check_deadlock_freedom(instance: NoCInstance,
                           methods: Sequence[str] = ("dfs", "scc", "toposort"),
                           ) -> TheoremResult:
    """DeadThm: derive deadlock freedom from obligations (C-1)-(C-3)."""
    start = time.perf_counter()
    if instance.dependency_spec is None:
        raise ValueError(
            f"instance {instance.name!r} has no declared dependency graph; "
            f"cannot apply Theorem 1")
    c1 = check_c1(instance.routing, instance.dependency_spec)
    c2 = check_c2(instance.routing, instance.dependency_spec,
                  instance.witness_destination)
    c3 = check_c3(instance.dependency_spec, methods=methods)
    holds = c1.holds and c2.holds and c3.holds
    counterexamples = c1.counterexamples + c2.counterexamples + c3.counterexamples
    elapsed = time.perf_counter() - start
    return TheoremResult(
        name="DeadThm", holds=holds, obligations=[c1, c2, c3],
        checks=c1.checks + c2.checks + c3.checks,
        counterexamples=counterexamples, elapsed_seconds=elapsed,
        details={"methods": list(methods)})


def check_deadlock_freedom_incremental(
        instance: NoCInstance,
        session: Optional["DeadlockQuerySession"] = None,
        spot_check_subsets: int = 3) -> TheoremResult:
    """DeadThm via the incremental solver session (encode once, re-query).

    Discharges the Theorem 1 condition through a
    :class:`~repro.core.deadlock.DeadlockQuerySession`: the dependency-edge
    universe is SAT-encoded once and the condition -- plus a few restricted
    ``P' ⊆ P`` spot checks mirroring (C-3)'s quantifier, plus escape-edge
    analysis when the condition fails -- is answered by incremental solves
    on the same solver.  Pass a ``session`` to share the encoding across
    many checks (the portfolio driver does).
    """
    from repro.core.deadlock import DeadlockQuerySession
    from repro.core.dependency import routing_dependency_graph

    start = time.perf_counter()
    # The instance's own dependency edges: a shared session's universe may
    # contain other routings' edges too, so every query below is restricted
    # to this edge list (on a fresh session the two coincide).
    if instance.dependency_spec is not None:
        graph = instance.dependency_spec.to_graph()
    else:
        graph = routing_dependency_graph(instance.routing)
    edges = [tuple(edge) for edge in graph.edges()]
    if session is None:
        session = DeadlockQuerySession.for_instance(instance)
    else:
        for source, target in edges:
            session.add_edge(source, target)
    queries_before = session.queries
    holds = session.is_deadlock_free_edges(edges)
    counterexamples: List[str] = []
    details: Dict[str, object] = {
        "edges": len(edges),
        "session": session.name,
    }

    # Spot-check the subset quantifier of (C-3): by monotonicity the full
    # query subsumes every subset, but the restricted queries exercise the
    # assumptions machinery and are what a user asks about a region.
    if holds and spot_check_subsets > 0:
        ports = sorted({port for edge in edges for port in edge}, key=str)
        stride = spot_check_subsets
        for index in range(spot_check_subsets):
            subset = set(ports[index::stride])
            restricted = [edge for edge in edges
                          if edge[0] in subset and edge[1] in subset]
            if restricted and not session.is_deadlock_free_edges(restricted):
                counterexamples.append(
                    f"restricted subgraph P' (#{index}) has a cycle although "
                    f"the full graph does not -- solver inconsistency")
                holds = False

    if not holds and not counterexamples:
        core = session.cycle_core_for(edges) or []
        counterexamples.append(
            "dependency cycle within: "
            + " , ".join(f"{s} -> {t}" for s, t in core[:8])
            + (" ..." if len(core) > 8 else ""))
        edge_set = set(edges)
        escapes = [edge for edge in core
                   if session.is_deadlock_free_edges(edge_set - {edge})]
        details["cycle_core_edges"] = len(core)
        details["escape_edges"] = [f"{s} -> {t}" for s, t in escapes[:8]]

    elapsed = time.perf_counter() - start
    details["incremental_queries"] = session.queries - queries_before
    return TheoremResult(
        name="DeadThm(incremental)", holds=holds,
        checks=session.queries - queries_before,
        counterexamples=counterexamples, elapsed_seconds=elapsed,
        details=details)


def check_deadlock_freedom_vc(relation,
                              methods: Sequence[str] = ("dfs", "scc",
                                                        "toposort"),
                              graph=None,
                              coverage: Optional["ObligationResult"] = None,
                              ) -> TheoremResult:
    """DeadThm at VC granularity: the Duato-style escape-channel condition.

    For a routing relation over ``(port, vc)`` channels
    (:class:`~repro.routing.escape.EscapeChannelRouting`), deadlock freedom
    follows from

    * **(V-1)** escape coverage/closure -- every channel a header can wait
      at offers an escape-class hop, and escape channels never leave the
      escape class, and
    * **(V-2)** escape acyclicity -- the subgraph of the channel dependency
      graph induced by the escape-class channels is acyclic

    instead of whole-graph acyclicity: the adaptive class may contain
    cycles, a blocked packet escapes them.  With a single VC the two
    classes coincide, (V-2) degenerates to the paper's Theorem 1 condition
    on the full graph and the verdict is the classic single-channel one.
    """
    from repro.core.dependency import channel_dependency_graph
    from repro.core.obligations import (
        check_v1_escape_coverage,
        check_v2_escape_acyclicity,
    )

    start = time.perf_counter()
    if graph is None:
        graph = channel_dependency_graph(relation)
    v1 = coverage if coverage is not None \
        else check_v1_escape_coverage(relation)
    v2 = check_v2_escape_acyclicity(relation, methods=methods, graph=graph)
    holds = v1.holds and v2.holds
    elapsed = time.perf_counter() - start
    return TheoremResult(
        name="DeadThm(vc)", holds=holds, obligations=[v1, v2],
        checks=v1.checks + v2.checks,
        counterexamples=v1.counterexamples + v2.counterexamples,
        elapsed_seconds=elapsed,
        details={
            "num_vcs": relation.num_vcs,
            "escape_vcs": list(relation.escape_vcs),
            "adaptive_vcs": list(relation.adaptive_vcs),
            "classes_separated": relation.classes_separated,
            "channels": graph.vertex_count,
            "edges": graph.edge_count,
            "methods": list(methods),
        })


def check_deadlock_freedom_vc_incremental(
        relation,
        session: Optional["DeadlockQuerySession"] = None,
        graph=None,
        coverage: Optional["ObligationResult"] = None) -> TheoremResult:
    """DeadThm at VC granularity via the incremental solver session.

    The channel-edge universe is SAT-encoded once (or merged into a shared
    ``session``) and the escape-class restriction of (V-2) is answered by a
    solve under assumptions -- the per-VC-class analogue of the restricted
    ``P' ⊆ P`` query.  (V-1) is discharged by cheap explicit enumeration,
    exactly as in :func:`check_deadlock_freedom_vc`.  On failure the
    escape-class cycle core and the single-edge removals that would restore
    freedom are extracted from the same session.
    """
    from repro.core.dependency import channel_dependency_graph
    from repro.core.obligations import (
        check_v1_escape_coverage,
        check_v2_incremental,
    )

    start = time.perf_counter()
    fresh_session = session is None
    if graph is None:
        graph = channel_dependency_graph(relation)
    queries_before = session.queries if session is not None else 0

    v1 = coverage if coverage is not None \
        else check_v1_escape_coverage(relation)
    v2 = check_v2_incremental(relation, session=session, graph=graph)
    session = v2.details["session"]
    escape_acyclic = v2.holds
    holds = v1.holds and escape_acyclic

    counterexamples: List[str] = v1.counterexamples + v2.counterexamples
    details: Dict[str, object] = {
        "num_vcs": relation.num_vcs,
        "escape_vcs": sorted(relation.escape_vcs),
        "edges": graph.edge_count,
        "escape_edges": v2.details["escape_edges"],
        "session": session.name,
    }
    if fresh_session:
        # On a fresh session the universe is exactly this relation's edge
        # set, so the class-restriction query must agree with the explicit
        # edge-list restriction -- a solver self-check for free.
        by_class = session.is_deadlock_free_for_class(relation.escape_vcs)
        if by_class != escape_acyclic:
            raise AssertionError(
                f"class-restricted query disagrees with edge-restricted "
                f"query: {by_class} vs {escape_acyclic}")
    if not escape_acyclic:
        escape_edges = v2.details["escape_edge_list"]
        core = session.cycle_core_for(escape_edges) or []
        edge_set = set(escape_edges)
        escapes = [edge for edge in core
                   if session.is_deadlock_free_edges(edge_set - {edge})]
        details["cycle_core_edges"] = len(core)
        details["escape_edges_fixes"] = [f"{s} -> {t}" for s, t in escapes[:8]]

    elapsed = time.perf_counter() - start
    details["incremental_queries"] = session.queries - queries_before
    return TheoremResult(
        name="DeadThm(vc,incremental)", holds=holds, obligations=[v1, v2],
        checks=v1.checks + session.queries - queries_before,
        counterexamples=counterexamples, elapsed_seconds=elapsed,
        details=details)


def check_no_reachable_deadlock(instance: NoCInstance,
                                travels: Sequence[Travel],
                                capacity: int = 1,
                                max_states: int = 200_000) -> TheoremResult:
    """DeadThm, runtime facet: exhaustively explore all interleavings.

    Uses the explicit-state model checker to confirm that no reachable
    configuration of the given workload is a deadlock.  Exact for small
    workloads; the ``max_states`` bound keeps it tractable.
    """
    from repro.checking.bmc import explore_configuration_space

    start = time.perf_counter()
    search = explore_configuration_space(instance, travels, capacity=capacity,
                                         max_states=max_states)
    elapsed = time.perf_counter() - start
    counterexamples = []
    if search.deadlock_found:
        counterexamples.append(
            f"reachable deadlock after exploring {search.explored} states")
    return TheoremResult(
        name="DeadThm(state-space)", holds=not search.deadlock_found,
        checks=search.explored, counterexamples=counterexamples,
        elapsed_seconds=elapsed,
        details={"explored": search.explored, "complete": search.complete})


# ---------------------------------------------------------------------------
# Evacuation theorem
# ---------------------------------------------------------------------------

def check_evacuation(instance: NoCInstance, original: Configuration,
                     result: GeNoCResult) -> TheoremResult:
    """EvacThm, runtime facet: ``GeNoC(σ).A = σ.T`` for a concrete run.

    Additionally checks that the network state is empty at the end and that
    the termination measure evolved monotonically (strictly decreasing for
    the instance measure).
    """
    start = time.perf_counter()
    counterexamples: List[str] = []
    checks = 0

    sent_ids = sorted(travel.travel_id for travel in original.travels)
    arrived_ids = sorted(travel.travel_id for travel in result.final.arrived)
    checks += 1
    if result.deadlocked:
        counterexamples.append("the run ended in deadlock")
    if arrived_ids != sent_ids:
        missing = sorted(set(sent_ids) - set(arrived_ids))
        extra = sorted(set(arrived_ids) - set(sent_ids))
        counterexamples.append(
            f"GeNoC(σ).A ≠ σ.T: missing {missing}, unexpected {extra}")
    checks += 1
    if not result.final.state.is_empty():
        counterexamples.append(
            f"{result.final.state.total_flits()} flits remain buffered "
            f"after termination")
    checks += len(result.measures)
    if not is_strictly_decreasing(result.measures):
        counterexamples.append("the termination measure did not decrease "
                               "strictly on every step")

    elapsed = time.perf_counter() - start
    return TheoremResult(name="EvacThm", holds=not counterexamples,
                         checks=checks, counterexamples=counterexamples,
                         elapsed_seconds=elapsed,
                         details={"steps": result.steps,
                                  "sent": len(sent_ids),
                                  "arrived": len(arrived_ids)})


def derive_evacuation(instance: NoCInstance,
                      configurations: Sequence[Configuration]) -> TheoremResult:
    """EvacThm, derivation facet: conclude evacuation from (C-4) and (C-5)."""
    start = time.perf_counter()
    routed = [instance.routing.route_configuration(config)
              for config in configurations]
    c4 = check_c4(instance.injection, routed)
    c5 = check_c5(instance.switching, instance.measure, routed)
    holds = c4.holds and c5.holds
    elapsed = time.perf_counter() - start
    return TheoremResult(
        name="EvacThm(derived)", holds=holds, obligations=[c4, c5],
        checks=c4.checks + c5.checks,
        counterexamples=c4.counterexamples + c5.counterexamples,
        elapsed_seconds=elapsed)
